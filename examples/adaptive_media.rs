//! Domain scenario: a media pipeline (the paper's Mediabench
//! motivation). Runs the `djpeg`-analogue decode kernel under every
//! policy family and shows how each handles a workload whose 8×8
//! blocks carry distant ILP.
//!
//! ```sh
//! cargo run --release --example adaptive_media
//! ```

use clustered::policies::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered::sim::{FixedPolicy, Processor, ReconfigPolicy, SimConfig};
use clustered::workloads;

fn run(policy: Box<dyn ReconfigPolicy>) -> Result<(String, f64, f64), Box<dyn std::error::Error>> {
    let w = workloads::by_name("djpeg").expect("djpeg workload exists");
    let name = policy.name();
    let stream = w.trace().map(|r| r.expect("kernel is endless"));
    let mut cpu = Processor::new(SimConfig::default(), stream, policy)?;
    cpu.run(50_000)?; // warm up
    let before = *cpu.stats();
    cpu.run(300_000)?;
    let stats = cpu.stats().delta_since(&before);
    Ok((name, stats.ipc(), stats.avg_active_clusters()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("JPEG-decode analogue under each cluster-allocation policy:\n");
    println!("{:<28} {:>6} {:>14}", "policy", "IPC", "avg clusters");
    let policies: Vec<Box<dyn ReconfigPolicy>> = vec![
        Box::new(FixedPolicy::new(4)),
        Box::new(FixedPolicy::new(16)),
        Box::new(IntervalExplore::default()),
        Box::new(IntervalDistantIlp::with_interval(1_000)),
        Box::new(FineGrain::branch_policy()),
        Box::new(FineGrain::subroutine_policy()),
    ];
    let mut best: Option<(String, f64)> = None;
    for policy in policies {
        let (name, ipc, clusters) = run(policy)?;
        println!("{name:<28} {ipc:>6.2} {clusters:>14.1}");
        if best.as_ref().is_none_or(|(_, b)| ipc > *b) {
            best = Some((name, ipc));
        }
    }
    let (name, ipc) = best.expect("at least one policy ran");
    println!("\nBest: {name} at {ipc:.2} IPC — block-parallel media code wants the");
    println!("full 16-cluster window, and every dynamic policy should find that.");
    Ok(())
}
