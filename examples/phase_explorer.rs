//! Phase analysis of a workload: samples per-interval metrics with the
//! Table 4 recorder, prints the instability factor at a range of
//! interval lengths, and reports the interval length the Figure 4
//! algorithm would settle on.
//!
//! ```sh
//! cargo run --release --example phase_explorer -- gzip
//! ```

use clustered::policies::phase::{
    instability_factor, minimum_stable_interval, MetricsRecorder, StabilityThresholds,
};
use clustered::sim::{Processor, SimConfig};
use clustered::workloads;

const BASE_INTERVAL: u64 = 1_000;
const INSTRUCTIONS: u64 = 500_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gzip".to_string());
    let Some(w) = workloads::by_name(&name) else {
        eprintln!("unknown workload `{name}`; choose from {:?}", workloads::NAMES);
        std::process::exit(2);
    };
    println!("Phase behaviour of `{name}` ({INSTRUCTIONS} instructions, 16 clusters)\n");

    let (recorder, records) = MetricsRecorder::new(16, BASE_INTERVAL);
    let stream = w.trace().map(|r| r.expect("kernel is endless"));
    let mut cpu = Processor::new(SimConfig::default(), stream, Box::new(recorder))?;
    cpu.run(INSTRUCTIONS)?;
    let records = records.borrow();

    let thresholds = StabilityThresholds::default();
    println!("{:>16} {:>12}", "interval length", "instability");
    let mut group = 1;
    while records.len() / group >= 4 {
        if let Some(factor) = instability_factor(&records, group, &thresholds) {
            let marker = if factor < 5.0 { "  <- acceptable (<5%)" } else { "" };
            println!("{:>16} {factor:>11.1}%{marker}", BASE_INTERVAL * group as u64);
        }
        group *= 2;
    }
    match minimum_stable_interval(&records, &thresholds, 5.0) {
        Some((len, factor)) => {
            println!("\nThe interval algorithm would settle at {len}-instruction intervals");
            println!("({factor:.1}% instability). Paper Table 4 reports {} for {name}.",
                w.paper().min_stable_interval);
        }
        None => println!("\nRun too short to evaluate any interval length."),
    }
    Ok(())
}
