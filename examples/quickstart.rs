//! Quickstart: assemble a small program, run it through the clustered
//! simulator under the paper's dynamic interval policy, and print what
//! the hardware did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clustered::policies::IntervalExplore;
use clustered::sim::{FixedPolicy, Processor, SimConfig};
use clustered::{emu, isa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny kernel with two phases: a serial pointer-increment phase
    // (no distant ILP) and an independent-iteration FP phase (lots).
    let program = isa::assemble(
        r"
        .data
        buf: .space 8192
        .text
        start:
            li   r9, 200            # outer repetitions
        outer:
            # phase 1: serial integer chain
            li   r1, 400
        serial:
            mul  r2, r2, r1
            addi r2, r2, 7
            addi r1, r1, -1
            bnez r1, serial
            # phase 2: independent FP updates over a buffer
            la   r3, buf
            li   r4, 1024
        vector:
            fld  f1, 0(r3)
            fadd f1, f1, f2
            fsd  f1, 0(r3)
            addi r3, r3, 8
            addi r4, r4, -1
            bnez r4, vector
            addi r9, r9, -1
            bnez r9, outer
            halt
        ",
    )?;

    // Run it on the default 16-cluster machine, once statically wide
    // and once under the interval-based dynamic policy.
    for (label, policy) in [
        ("static 16 clusters", Box::new(FixedPolicy::new(16)) as Box<dyn clustered::sim::ReconfigPolicy>),
        ("dynamic (interval + exploration)", Box::new(IntervalExplore::default())),
    ] {
        let stream = emu::trace(program.clone()).map(|r| r.expect("program is well-formed"));
        let mut cpu = Processor::new(SimConfig::default(), stream, policy)?;
        let stats = cpu.run(400_000)?;
        println!("{label}:");
        println!("  IPC                {:.3}", stats.ipc());
        println!("  cycles             {}", stats.cycles);
        println!("  mean active clusters {:.1}", stats.avg_active_clusters());
        println!("  reconfigurations   {}", stats.reconfigurations);
        println!(
            "  register transfers {} (avg {:.1} hops)",
            stats.reg_transfers,
            stats.avg_transfer_hops()
        );
        println!();
    }
    println!("The dynamic policy shrinks the machine during the serial phase and");
    println!("widens it for the vector phase — watch the mean active clusters.");
    Ok(())
}
