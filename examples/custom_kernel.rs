//! Bring-your-own-kernel: write a program in the virtual ISA, inspect
//! its dynamic trace, then sweep cluster counts to find where *your*
//! code sits on the communication-parallelism curve.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use clustered::emu::{trace, Machine};
use clustered::isa::{assemble, disassemble};
use clustered::sim::{FixedPolicy, Processor, SimConfig};

const SOURCE: &str = r"
# Dot product with 2-way unrolling: moderate distant ILP.
.data
a:  .space 32768
b:  .space 32768
.text
start:
    li   r9, 500          # repetitions
outer:
    la   r1, a
    la   r2, b
    li   r3, 2048         # elements / 2
    fli  f1, 0.0
    fli  f2, 0.0
dot:
    fld  f3, 0(r1)
    fld  f4, 0(r2)
    fmul f5, f3, f4
    fadd f1, f1, f5
    fld  f3, 8(r1)
    fld  f4, 8(r2)
    fmul f5, f3, f4
    fadd f2, f2, f5
    addi r1, r1, 16
    addi r2, r2, 16
    addi r3, r3, -1
    bnez r3, dot
    fadd f1, f1, f2
    addi r9, r9, -1
    bnez r9, outer
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(SOURCE)?;

    println!("First instructions, disassembled back from the program:");
    for (i, inst) in program.text().iter().take(4).enumerate() {
        println!("  {i:>3}: {}", disassemble(inst));
    }

    // Architectural sanity check before measuring anything.
    let mut machine = Machine::new(program.clone());
    machine.run_to_halt(100_000)?;
    println!("\nFunctional run: {} instructions executed", machine.instructions_executed());

    // Peek at the dynamic trace the timing model will consume.
    let memrefs = trace(program.clone())
        .take(10_000)
        .filter_map(Result::ok)
        .filter(|d| d.mem.is_some())
        .count();
    println!("memory references in the first 10K instructions: {memrefs}");

    println!("\nCluster-count sweep (fixed configurations):");
    println!("{:>10} {:>8} {:>12} {:>16}", "clusters", "IPC", "reg xfers", "distant frac");
    for clusters in [1usize, 2, 4, 8, 16] {
        let stream = trace(program.clone()).map(|r| r.expect("well-formed"));
        let mut cpu =
            Processor::new(SimConfig::default(), stream, Box::new(FixedPolicy::new(clusters)))?;
        let stats = cpu.run(200_000)?;
        println!(
            "{clusters:>10} {:>8.2} {:>12} {:>16.3}",
            stats.ipc(),
            stats.reg_transfers,
            stats.distant_issues as f64 / stats.committed.max(1) as f64
        );
    }
    println!("\nIf IPC keeps rising with clusters, your kernel has distant ILP worth");
    println!("paying communication for; if it peaks early, a dynamic policy would");
    println!("hand the idle clusters to other threads (paper §1).");
    Ok(())
}
