//! Golden tests for the machine-readable exports: the key set of
//! `SimStats::to_json` is part of the tool contract (scripts and
//! notebooks parse it), so changing it must be a conscious, reviewed
//! decision — update the list below *and* the schema documented in
//! EXPERIMENTS.md together.

use clustered::policies::{chrome_trace, IntervalExplore};
use clustered::sim::{MetricsObserver, Processor, SimConfig, SimStats, SteeringKind};
use clustered::stats::Json;

/// Every key `SimStats::to_json` must emit, in order.
const STATS_KEYS: &[&str] = &[
    "cycles",
    "committed",
    "dispatched",
    "fetched",
    "ipc",
    "cond_branches",
    "branches",
    "mispredicts",
    "mispredict_rate",
    "mispredict_interval",
    "memrefs",
    "loads",
    "stores",
    "l1_hits",
    "l1_misses",
    "l1_hit_rate",
    "l2_misses",
    "l2_miss_rate",
    "lsq_forwards",
    "reg_transfers",
    "reg_transfer_hops",
    "avg_transfer_hops",
    "cache_transfers",
    "cache_transfer_hops",
    "distant_issues",
    "bank_predictions",
    "bank_mispredictions",
    "bank_accuracy",
    "reconfigurations",
    "flush_writebacks",
    "flush_stall_cycles",
    "active_cluster_cycles",
    "avg_active_clusters",
    "cycles_at_config",
    "dispatch_stalls",
    "rob_occupancy_sum",
    "quiescent_cluster_cycles",
    "cluster_busy_cycles",
];

#[test]
fn stats_json_key_set_is_pinned() {
    let j = SimStats::default().to_json();
    let keys = j.keys().expect("to_json returns an object");
    assert_eq!(
        keys, STATS_KEYS,
        "SimStats::to_json key set changed — update this golden list and \
         the results/*.json schema in EXPERIMENTS.md"
    );
    assert_eq!(
        j.get("dispatch_stalls").and_then(Json::keys).expect("stall attribution object"),
        vec!["fetch", "rob", "resources"]
    );
}

/// The default configuration's digest is part of the provenance
/// contract: ledgers and diff reports compare runs by it, so it may
/// only move when the timing configuration (or the digest scheme)
/// deliberately changes — update the literal *and* say why in the
/// commit message.
#[test]
fn default_config_digest_is_pinned() {
    assert_eq!(
        SimConfig::default().digest(),
        13362372836891616520,
        "SimConfig::default().digest() moved — a config field, default value, \
         or the digest scheme changed; ledger entries and diff baselines from \
         older builds will no longer align"
    );
    assert_ne!(SimConfig::default().digest(), SimConfig::monolithic().digest());
}

/// Every exported artifact shares the `{schema_version, provenance,
/// data}` envelope, and the provenance block's key set is pinned.
#[test]
fn artifact_envelope_and_provenance_key_sets_are_pinned() {
    let prov = clustered::stats::Provenance::new("gzip", Some(7), 11, "explore");
    let doc = clustered::stats::envelope(&prov, Json::object().set("x", 1u64));
    assert_eq!(doc.keys().expect("object"), vec!["schema_version", "provenance", "data"]);
    let pkeys = doc.get("provenance").and_then(Json::keys).expect("provenance object");
    assert_eq!(
        pkeys,
        vec![
            "schema_version",
            "crate_version",
            "git_describe",
            "trace",
            "config_digest",
            "policy",
            "seed",
            "host",
            "wall_seconds",
            "run_id",
        ],
        "provenance schema changed — update this golden list, EXPERIMENTS.md, \
         and bump PROVENANCE_SCHEMA_VERSION if the change is incompatible"
    );
    let round = clustered::stats::Provenance::from_json(doc.get("provenance").expect("block"))
        .expect("provenance round-trips");
    assert_eq!(round.trace_checksum, Some(7));
    assert_eq!(round.config_digest, 11);
}

#[test]
fn observed_explore_run_exports_all_three_documents() {
    let workload = clustered::workloads::by_name("gzip").expect("known workload");
    let stream = workload.trace().map(Result::unwrap);
    let mut cpu = Processor::with_observer(
        SimConfig::default(),
        stream,
        Box::new(IntervalExplore::default()),
        SteeringKind::default(),
        MetricsObserver::new(1_000),
    )
    .expect("valid config");
    let stats = cpu.run(40_000).expect("no stall");

    // Stats document: parseable, with the pinned key set.
    let stats_doc =
        clustered::stats::json::parse(&stats.to_json().to_string_pretty()).expect("valid JSON");
    assert_eq!(stats_doc.keys().expect("object"), STATS_KEYS);

    // Observer document: histograms populated by a real run.
    let m = cpu.observer();
    let observer_doc = m.to_json();
    let rob = observer_doc.get("rob_occupancy").expect("rob histogram");
    assert_eq!(rob.get("count").and_then(Json::as_f64), Some(stats.cycles as f64));

    // Chrome trace: events for every configuration the explore policy
    // visited, totals consistent with the statistics.
    let trace = chrome_trace(m);
    let events = trace.as_arr().expect("array");
    let spans: Vec<&Json> =
        events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
    let instants = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
        .count() as u64;
    assert_eq!(instants, stats.reconfigurations);
    assert_eq!(spans.len() as u64, stats.reconfigurations + 1, "one span per configuration era");
    let span_cycles: f64 =
        spans.iter().filter_map(|e| e.get("dur").and_then(Json::as_f64)).sum();
    assert_eq!(span_cycles, stats.cycles as f64, "spans tile the whole run");
}
