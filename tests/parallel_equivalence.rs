//! Parallel-equivalence suite: the intra-run thread pool
//! (`SimConfig::intra_jobs`) is a host-execution knob, not a model
//! knob — the simulated schedule must be bit-identical to the
//! sequential oracle at every thread count, and repeated runs at a
//! fixed thread count must agree with each other.
//!
//! Two pins:
//!
//! 1. The full workload × cache-model × policy-family × cluster-count
//!    matrix (the same 360 points `tests/shard_equivalence.rs` runs)
//!    against `tests/shard_oracle.json`, at 1, 2, and 4 intra-run
//!    threads. `intra_jobs = 1` exercises the batched round-based
//!    drain and split issue phases without spawning workers; 2 and 4
//!    add the pool and its strided domain partition.
//! 2. Run-twice determinism at a fixed thread count: thread
//!    interleaving must not leak into results, only into wall time.
//!
//! The oracle is shared with the shard suite on purpose: one file is
//! the single source of truth for "what the machine computes", and
//! every execution strategy pins against it.

use clustered_core::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered_sim::{
    CacheModel, FixedPolicy, Processor, ReconfigPolicy, SimConfig, SimStats,
};
use clustered_stats::{json, Json};
use clustered_workloads::CapturedTrace;
use std::path::PathBuf;

/// Warm-up / measured instructions per point — must match the shard
/// suite, since both pin the same oracle.
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 4_000;
const COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const FAMILIES: [&str; 4] = ["fixed", "explore", "distant", "finegrain"];
const MODELS: [(&str, CacheModel); 2] =
    [("cen", CacheModel::Centralized), ("dec", CacheModel::Decentralized)];
/// The thread-count axis. 1 runs the batched phases inline; ≥ 2 brings
/// up the worker pool.
const INTRA: [usize; 3] = [1, 2, 4];

fn oracle_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("shard_oracle.json")
}

/// One matrix point's configuration and policy — identical to the
/// shard suite's builder except for the `intra_jobs` override.
fn point(
    model: CacheModel,
    family: &str,
    n: usize,
    intra: usize,
) -> (SimConfig, Box<dyn ReconfigPolicy>) {
    let mut cfg = SimConfig::default();
    let policy: Box<dyn ReconfigPolicy> = match family {
        "fixed" => Box::new(FixedPolicy::new(n)),
        adaptive => {
            if n == 1 {
                cfg = SimConfig::monolithic();
            } else {
                cfg.clusters.count = n;
            }
            match adaptive {
                "explore" => Box::new(IntervalExplore::default()),
                "distant" => Box::new(IntervalDistantIlp::default()),
                "finegrain" => Box::new(FineGrain::branch_policy()),
                other => panic!("unknown policy family {other}"),
            }
        }
    };
    cfg.cache.model = model;
    cfg.intra_jobs = intra;
    (cfg, policy)
}

fn run_point(trace: &CapturedTrace, cfg: SimConfig, policy: Box<dyn ReconfigPolicy>) -> SimStats {
    let mut cpu = Processor::new(cfg, trace.replay(), policy).expect("valid matrix config");
    cpu.run(WARMUP).expect("no stall in warm-up");
    let before = *cpu.stats();
    cpu.run(MEASURE).expect("no stall");
    cpu.stats().delta_since(&before)
}

/// Runs the whole matrix at the given intra-run thread count, one
/// worker thread per workload, and returns `(label, serialized stats)`
/// in deterministic matrix order.
fn run_matrix(intra: usize) -> Vec<(String, Json)> {
    let workloads = clustered_workloads::all();
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    let trace = CapturedTrace::for_window(w, WARMUP, MEASURE);
                    let mut rows = Vec::new();
                    for (mname, model) in MODELS {
                        for family in FAMILIES {
                            for n in COUNTS {
                                let (cfg, policy) = point(model, family, n, intra);
                                let stats = run_point(&trace, cfg, policy);
                                // Same text round-trip as the oracle, so
                                // float formatting cannot produce
                                // spurious mismatches.
                                let doc = json::parse(&stats.to_json().to_string_compact())
                                    .expect("SimStats serializes to valid JSON");
                                rows.push((format!("{}/{mname}/{family}/{n}", w.name()), doc));
                            }
                        }
                    }
                    rows
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("matrix worker panicked"));
        }
    });
    out
}

/// The pin: at every supported thread count, every counter of every
/// matrix point must match the sequential oracle exactly.
#[test]
fn parallel_matrix_bit_identical_to_sequential_oracle() {
    let text = std::fs::read_to_string(oracle_path())
        .expect("tests/shard_oracle.json missing; regenerate via the shard suite");
    let oracle = json::parse(&text).expect("oracle parses");
    let points = oracle.get("points").and_then(Json::as_arr).expect("oracle has points");
    for intra in INTRA {
        let fresh = run_matrix(intra);
        assert_eq!(
            points.len(),
            fresh.len(),
            "matrix shape changed; keep this suite in lockstep with shard_equivalence"
        );
        let mut mismatches = Vec::new();
        for (expected, (label, got)) in points.iter().zip(&fresh) {
            let elabel = expected.get("label").and_then(Json::as_str).expect("point label");
            assert_eq!(elabel, label, "matrix order changed");
            let estats = expected.get("stats").expect("point stats");
            for key in estats.keys().expect("stats is an object") {
                let want = estats.get(key);
                let have = got.get(key);
                if want != have {
                    mismatches
                        .push(format!("{label}: {key}: oracle {want:?} != parallel {have:?}"));
                }
            }
        }
        assert!(
            mismatches.is_empty(),
            "intra_jobs={intra}: {} of {} points diverged from the sequential oracle:\n{}",
            mismatches.len(),
            fresh.len(),
            mismatches.join("\n")
        );
    }
}

/// Run-twice determinism at a fixed thread count: the pool's thread
/// interleaving must never reach the simulated schedule. One workload's
/// full inner matrix, twice, at 4 threads.
#[test]
fn repeated_parallel_runs_are_deterministic() {
    let workloads = clustered_workloads::all();
    let w = &workloads[0];
    let trace = CapturedTrace::for_window(w, WARMUP, MEASURE);
    let run_once = || {
        let mut rows = Vec::new();
        for (mname, model) in MODELS {
            for family in FAMILIES {
                for n in COUNTS {
                    let (cfg, policy) = point(model, family, n, 4);
                    let stats = run_point(&trace, cfg, policy);
                    rows.push((
                        format!("{}/{mname}/{family}/{n}", w.name()),
                        stats.to_json().to_string_compact(),
                    ));
                }
            }
        }
        rows
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first.len(), second.len());
    for ((label, a), (_, b)) in first.iter().zip(&second) {
        assert_eq!(a, b, "{label}: two runs at intra_jobs=4 disagree");
    }
}
