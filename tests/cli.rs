//! End-to-end tests of the `clustered` command-line binary.

use std::process::{Command, Output};

fn clustered(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_clustered"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    for args in [&["help"][..], &["--help"], &[]] {
        let out = clustered(args);
        assert!(out.status.success());
        assert!(stdout(&out).contains("USAGE"));
    }
}

#[test]
fn workloads_lists_the_suite() {
    let out = clustered(&["workloads"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in clustered::workloads::NAMES {
        assert!(text.contains(name), "missing workload {name}");
    }
}

#[test]
fn run_reports_statistics() {
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "fixed",
        "--clusters",
        "4",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("IPC"));
    assert!(text.contains("policy              fixed-4"));
    assert!(text.contains("mean active clusters 4.0"));
}

#[test]
fn run_is_deterministic() {
    let args = ["run", "--workload", "vpr", "--warmup", "2000", "--instructions", "8000"];
    let a = stdout(&clustered(&args));
    let b = stdout(&clustered(&args));
    assert_eq!(a, b, "same command must produce identical statistics");
}

#[test]
fn asm_round_trips_a_program() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ok.s");
    std::fs::write(&path, "li r1, 2\nmul r2, r1, r1\nhalt\n").expect("write");
    let out = clustered(&["asm", path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("3 instructions"));
    assert!(text.contains("halts after 3 instructions"));
    assert!(text.contains("mul r2, r1, r1"));
}

#[test]
fn errors_use_exit_code_two_and_name_the_problem() {
    let cases: &[(&[&str], &str)] = &[
        (&["run", "--workload", "nosuch"], "unknown workload"),
        (&["run", "--workload", "gzip", "--clusters", "99"], "--clusters"),
        (&["run", "--workload", "gzip", "--instructions", "abc"], "--instructions"),
        (&["run", "--policy", "bogus"], "unknown policy"),
        (&["asm", "/nonexistent/path.s"], "cannot read"),
        (&["frobnicate"], "unknown command"),
    ];
    for (args, needle) in cases {
        let out = clustered(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains(needle),
            "args {args:?}: stderr {:?} should mention {needle}",
            stderr(&out)
        );
    }
}

#[test]
fn monolithic_runs_without_explicit_clusters() {
    let out = clustered(&[
        "run",
        "--monolithic",
        "--workload",
        "swim",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("mean active clusters 1.0"));
}

#[test]
fn unknown_flags_are_rejected() {
    let out = clustered(&["run", "--workload", "gzip", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));
}

#[test]
fn csv_timeline_excludes_warmup_intervals() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("timeline.csv");
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "fixed",
        "--clusters",
        "8",
        "--warmup",
        "5000",
        "--instructions",
        "10000",
        "--csv",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let csv = std::fs::read_to_string(&path).expect("csv written");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("committed,cycles,ipc,branches,memrefs,clusters")
    );
    let first: u64 = lines
        .next()
        .expect("at least one interval")
        .split(',')
        .next()
        .expect("committed column")
        .parse()
        .expect("number");
    assert!(first > 5_000, "warm-up intervals must be excluded, got {first}");
    assert!(csv.trim_end().ends_with(",8"), "clusters column records the fixed policy");
}

#[test]
fn bad_assembly_reports_the_line() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.s");
    std::fs::write(&path, "nop\nfrob r1, r2\n").expect("write");
    let out = clustered(&["asm", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("line 2"));
}

#[test]
fn program_ending_in_warmup_is_a_clear_error() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("short.s");
    std::fs::write(&path, "nop\nhalt\n").expect("write");
    let out = clustered(&["run", "--program", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("warm-up"));
}

#[test]
fn phases_reports_interval_stability() {
    let out = clustered(&["phases", "--workload", "swim", "--instructions", "60000"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("base intervals"));
    assert!(text.contains("unstable"));
}
