//! End-to-end tests of the `clustered` command-line binary.

use std::process::{Command, Output};

fn clustered(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_clustered"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    for args in [&["help"][..], &["--help"], &[]] {
        let out = clustered(args);
        assert!(out.status.success());
        assert!(stdout(&out).contains("USAGE"));
    }
}

#[test]
fn workloads_lists_the_suite() {
    let out = clustered(&["workloads"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in clustered::workloads::NAMES {
        assert!(text.contains(name), "missing workload {name}");
    }
}

#[test]
fn run_reports_statistics() {
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "fixed",
        "--clusters",
        "4",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("IPC"));
    assert!(text.contains("policy              fixed-4"));
    assert!(text.contains("mean active clusters 4.0"));
}

#[test]
fn run_is_deterministic() {
    let args = ["run", "--workload", "vpr", "--warmup", "2000", "--instructions", "8000"];
    let a = stdout(&clustered(&args));
    let b = stdout(&clustered(&args));
    assert_eq!(a, b, "same command must produce identical statistics");
}

#[test]
fn asm_round_trips_a_program() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ok.s");
    std::fs::write(&path, "li r1, 2\nmul r2, r1, r1\nhalt\n").expect("write");
    let out = clustered(&["asm", path.to_str().expect("utf-8 path")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("3 instructions"));
    assert!(text.contains("halts after 3 instructions"));
    assert!(text.contains("mul r2, r1, r1"));
}

#[test]
fn errors_use_exit_code_two_and_name_the_problem() {
    let cases: &[(&[&str], &str)] = &[
        (&["run", "--workload", "nosuch"], "unknown workload"),
        (&["run", "--workload", "gzip", "--clusters", "99"], "--clusters"),
        (&["run", "--workload", "gzip", "--instructions", "abc"], "--instructions"),
        (&["run", "--policy", "bogus"], "unknown policy"),
        (&["asm", "/nonexistent/path.s"], "cannot read"),
        (&["frobnicate"], "unknown command"),
    ];
    for (args, needle) in cases {
        let out = clustered(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(
            stderr(&out).contains(needle),
            "args {args:?}: stderr {:?} should mention {needle}",
            stderr(&out)
        );
    }
}

#[test]
fn monolithic_runs_without_explicit_clusters() {
    let out = clustered(&[
        "run",
        "--monolithic",
        "--workload",
        "swim",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("mean active clusters 1.0"));
}

#[test]
fn unknown_flags_are_rejected() {
    let out = clustered(&["run", "--workload", "gzip", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));
}

#[test]
fn csv_timeline_excludes_warmup_intervals() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("timeline.csv");
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "fixed",
        "--clusters",
        "8",
        "--warmup",
        "5000",
        "--instructions",
        "10000",
        "--csv",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let csv = std::fs::read_to_string(&path).expect("csv written");
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("committed,cycles,ipc,branches,memrefs,clusters")
    );
    let first: u64 = lines
        .next()
        .expect("at least one interval")
        .split(',')
        .next()
        .expect("committed column")
        .parse()
        .expect("number");
    assert!(first > 5_000, "warm-up intervals must be excluded, got {first}");
    assert!(csv.trim_end().ends_with(",8"), "clusters column records the fixed policy");
}

#[test]
fn bad_assembly_reports_the_line() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.s");
    std::fs::write(&path, "nop\nfrob r1, r2\n").expect("write");
    let out = clustered(&["asm", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("line 2"));
}

#[test]
fn program_ending_in_warmup_is_a_clear_error() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("short.s");
    std::fs::write(&path, "nop\nhalt\n").expect("write");
    let out = clustered(&["run", "--program", path.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("warm-up"));
}

#[test]
fn run_json_emits_a_parseable_document() {
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "explore",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let envelope = clustered::stats::json::parse(&stdout(&out))
        .expect("stdout must be exactly one valid JSON document");
    use clustered::stats::Json;
    assert_eq!(envelope.get("schema_version").and_then(Json::as_u64), Some(1));
    let prov = envelope.get("provenance").expect("provenance block");
    let prov = clustered::stats::Provenance::from_json(prov).expect("provenance parses");
    assert_eq!(prov.trace_name, "gzip");
    assert!(prov.trace_checksum.is_some(), "run provenance pins the trace checksum");
    assert!(prov.config_digest != 0, "run provenance pins the config digest");
    let doc = envelope.get("data").expect("payload under `data`");
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("gzip"));
    let ipc = doc.get("ipc").and_then(Json::as_f64).expect("ipc present");
    assert!(ipc > 0.0);
    let cycles = doc.get("cycles").and_then(Json::as_f64).expect("cycles present");
    assert!(cycles > 0.0);
    let configs = doc
        .get("cycles_at_config")
        .and_then(Json::as_arr)
        .expect("per-config cycle histogram present");
    assert_eq!(configs.len(), 16);
    let config_sum: f64 = configs.iter().filter_map(Json::as_f64).sum();
    assert_eq!(config_sum, cycles, "config cycles partition total cycles");
    let stalls = doc.get("dispatch_stalls").expect("stall attribution present");
    for key in ["fetch", "rob", "resources"] {
        assert!(stalls.get(key).and_then(Json::as_f64).is_some(), "missing stall bucket {key}");
    }
}

#[test]
fn trace_writes_chrome_trace_and_jsonl_events() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.json");
    let events_path = dir.join("events.jsonl");
    let out = clustered(&[
        "trace",
        "--workload",
        "gzip",
        "--policy",
        "explore",
        "--warmup",
        "2000",
        "--instructions",
        "30000",
        "--out",
        trace_path.to_str().expect("utf-8 path"),
        "--events",
        events_path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    use clustered::stats::Json;
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let trace = clustered::stats::json::parse(&trace_text).expect("trace is valid JSON");
    let events = trace.as_arr().expect("Chrome trace is a JSON array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("ph").and_then(Json::as_str).is_some(), "every event has ph");
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "every event has ts");
        assert!(e.get("name").and_then(Json::as_str).is_some(), "every event has name");
    }
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("X")),
        "at least one configuration span"
    );

    let jsonl = std::fs::read_to_string(&events_path).expect("events written");
    assert!(jsonl.lines().count() >= 10, "30k instructions yield many 1k intervals");
    for line in jsonl.lines() {
        let entry = clustered::stats::json::parse(line).expect("each line is valid JSON");
        assert!(entry.get("ipc").and_then(Json::as_f64).is_some());
        assert!(entry.get("clusters").and_then(Json::as_f64).is_some());
    }
}

#[test]
fn explain_renders_a_timeline_for_every_policy_family() {
    // 25k instructions cross the 10k-commit checkpoint cadence of the
    // fixed and fine-grain policies, so every family has decisions.
    for policy in ["fixed", "explore", "distant", "branch", "subroutine"] {
        let mut args = vec![
            "explain",
            "--workload",
            "gzip",
            "--policy",
            policy,
            "--warmup",
            "2000",
            "--instructions",
            "25000",
        ];
        if policy == "fixed" {
            args.extend(["--clusters", "4"]);
        }
        let out = clustered(&args);
        assert!(out.status.success(), "policy {policy}: stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("decision timeline ("), "policy {policy} must render a timeline");
        assert!(text.contains("summary:"), "policy {policy} must render the summary");
        assert!(text.contains("reconfigurations"), "policy {policy}: {text}");
        assert!(text.contains("interval lengths"), "policy {policy}: {text}");
    }
}

#[test]
fn explain_limit_truncates_and_decisions_flag_dumps_parseable_jsonl() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("decisions.jsonl");
    let out = clustered(&[
        "explain",
        "--workload",
        "swim",
        "--policy",
        "distant",
        "--warmup",
        "2000",
        "--instructions",
        "30000",
        "--limit",
        "5",
        "--decisions",
        path.to_str().expect("utf-8 path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("decision timeline (5 of "), "limit caps the rows: {text}");
    assert!(text.contains("more decisions (raise --limit)"), "{text}");

    use clustered::stats::Json;
    let jsonl = std::fs::read_to_string(&path).expect("decision trace written");
    let mut lines = jsonl.lines();
    let header = clustered::stats::json::parse(lines.next().expect("header line"))
        .expect("header is valid JSON");
    assert_eq!(header.get("event").and_then(Json::as_str), Some("provenance"));
    assert!(
        clustered::stats::Provenance::from_json(header.get("provenance").expect("block"))
            .is_some(),
        "header carries a parseable provenance record"
    );
    assert!(lines.clone().count() > 5, "the dump holds every decision, not just shown rows");
    for line in lines {
        let d = clustered::stats::json::parse(line).expect("each line is valid JSON");
        for key in ["interval", "commit", "cycle", "state", "ipc", "clusters", "reason"] {
            assert!(d.get(key).is_some(), "decision line missing `{key}`: {line}");
        }
        let state = d.get("state").and_then(Json::as_str).expect("state is a string");
        assert!(
            ["exploring", "stable", "discontinued", "cooldown"].contains(&state),
            "unexpected state `{state}`"
        );
    }
}

#[test]
fn explain_warns_when_decision_records_drop() {
    let args = |cap: &'static str| {
        vec![
            "explain",
            "--workload",
            "swim",
            "--policy",
            "distant",
            "--warmup",
            "2000",
            "--instructions",
            "30000",
            "--decision-cap",
            cap,
        ]
    };
    let out = clustered(&args("2"));
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("warning:") && text.contains("dropped past the 2-record cap"),
        "a cap of 2 must force drops and a warning: {text}"
    );
    assert!(text.contains("raise --decision-cap"), "{text}");

    let out = clustered(&args("100000"));
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        !stdout(&out).contains("warning:"),
        "no warning when every record fits the cap"
    );
}

#[test]
fn perf_writes_host_profile_and_chrome_trace() {
    let dir = std::env::temp_dir().join("clustered_cli_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("host_trace.json");
    let base = [
        "perf",
        "--workload",
        "gzip",
        "--policy",
        "explore",
        "--warmup",
        "2000",
        "--instructions",
        "30000",
        "--sample-interval",
        "5000",
    ];

    let mut args = base.to_vec();
    args.extend(["--out", trace_path.to_str().expect("utf-8 path")]);
    let out = clustered(&args);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sim cycles/sec"), "{text}");
    assert!(text.contains("event_drain"), "{text}");

    use clustered::stats::Json;
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let trace = clustered::stats::json::parse(&trace_text).expect("trace is valid JSON");
    let events = trace.as_arr().expect("Chrome trace is a JSON array");
    assert!(!events.is_empty());
    for e in events {
        assert!(e.get("ph").and_then(Json::as_str).is_some(), "every event has ph");
        assert!(e.get("name").and_then(Json::as_str).is_some(), "every event has name");
    }
    let ph =
        |kind| events.iter().filter(move |e| e.get("ph").and_then(Json::as_str) == Some(kind));
    assert!(
        ph("X").any(|e| e.get("name").and_then(Json::as_str) == Some("host event_drain")),
        "stage spans present"
    );
    assert!(
        ph("C").any(|e| e.get("name").and_then(Json::as_str) == Some("host calendar events")),
        "queue-depth counter track present"
    );
    assert!(ph("M").next().is_some(), "metadata names the host tracks");

    let mut args = base.to_vec();
    args.push("--json");
    let out = clustered(&args);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let envelope = clustered::stats::json::parse(&stdout(&out))
        .expect("stdout must be exactly one valid JSON document");
    assert!(
        clustered::stats::Provenance::from_json(
            envelope.get("provenance").expect("provenance block")
        )
        .is_some(),
        "host profiles carry provenance"
    );
    let doc = envelope.get("data").expect("payload under `data`");
    assert!(doc.get("sim_cycles").and_then(Json::as_u64).expect("sim_cycles") > 0);
    assert!(doc.get("sim_cycles_per_sec").and_then(Json::as_f64).expect("throughput") > 0.0);
    let stages = doc.get("profile").and_then(|p| p.get("stages")).expect("stage buckets");
    let share_sum: f64 = ["event_drain", "commit", "issue", "dispatch", "fetch", "other"]
        .iter()
        .map(|s| {
            stages
                .get(s)
                .and_then(|b| b.get("share"))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing stage bucket {s}"))
        })
        .sum();
    assert!(
        (share_sum - 1.0).abs() < 1e-9,
        "stage shares partition the loop time, got {share_sum}"
    );
}

#[test]
fn run_audit_strict_is_clean_and_surfaces_the_report() {
    let out = clustered(&[
        "run",
        "--workload",
        "gzip",
        "--policy",
        "explore",
        "--warmup",
        "2000",
        "--instructions",
        "10000",
        "--audit",
        "strict",
        "--json",
    ]);
    assert!(out.status.success(), "strict audit must pass: {}", stderr(&out));
    use clustered::stats::Json;
    let envelope = clustered::stats::json::parse(&stdout(&out)).expect("valid JSON");
    let audit = envelope.get("data").and_then(|d| d.get("audit")).expect("audit block");
    assert_eq!(audit.get("clean").and_then(Json::as_bool), Some(true));
    assert!(audit.get("checks_run").and_then(Json::as_u64).expect("checks_run") > 0);
    assert_eq!(
        audit.get("violations").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0)
    );

    // Text mode prints the one-line verdict.
    let out = clustered(&[
        "run", "--workload", "gzip", "--warmup", "2000", "--instructions", "10000", "--audit",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("audit               clean"), "{}", stdout(&out));
}

#[test]
fn run_audit_rejects_unknown_modes() {
    let out = clustered(&[
        "run", "--workload", "gzip", "--instructions", "5000", "--audit", "bogus",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--audit"), "{}", stderr(&out));
}

/// `clustered diff` on two runs of the same trace + config returns
/// verdict `identical`; against a different policy it reports
/// structured per-counter deltas and verdict `drifted`.
#[test]
fn diff_verdicts_identical_same_config_and_drifted_across_policies() {
    let dir = std::env::temp_dir().join("clustered_cli_diff_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run = |policy: &[&str], file: &str| {
        let mut args =
            vec!["run", "--workload", "gzip", "--warmup", "2000", "--instructions", "10000"];
        args.extend_from_slice(policy);
        args.push("--json");
        let out = clustered(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let path = dir.join(file);
        std::fs::write(&path, stdout(&out)).expect("write artifact");
        path
    };
    let a = run(&["--policy", "explore"], "a.json");
    let b = run(&["--policy", "explore"], "b.json");
    let c = run(&["--policy", "fixed", "--clusters", "8"], "c.json");

    use clustered::stats::Json;
    let out = clustered(&["diff", a.to_str().expect("utf-8"), b.to_str().expect("utf-8")]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("verdict: identical"), "{}", stdout(&out));
    assert!(stdout(&out).contains("same experiment"), "{}", stdout(&out));

    let out = clustered(&[
        "diff",
        a.to_str().expect("utf-8"),
        c.to_str().expect("utf-8"),
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let doc = clustered::stats::json::parse(&stdout(&out)).expect("valid JSON");
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("drifted"));
    let changed = doc.get("changed").and_then(Json::as_arr).expect("changed counters");
    assert!(!changed.is_empty(), "different policies must drift");
    for delta in changed {
        for key in ["path", "a", "b", "abs_delta", "rel_delta"] {
            assert!(delta.get(key).is_some(), "delta missing `{key}`");
        }
    }
    // Both sides' provenance rides in the report.
    let alignment = doc.get("provenance").expect("provenance alignment");
    for side in ["a", "b"] {
        assert!(
            clustered::stats::Provenance::from_json(alignment.get(side).expect("side")).is_some(),
            "side {side} provenance parses"
        );
    }
}

#[test]
fn diff_requires_two_readable_artifacts() {
    let out = clustered(&["diff", "/nonexistent/a.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage: clustered diff"), "{}", stderr(&out));
    let out = clustered(&["diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

/// `run --ledger` appends provenance + headline metrics; `report`
/// aggregates them per workload × policy.
#[test]
fn ledger_registers_runs_and_report_aggregates_them() {
    let dir = std::env::temp_dir().join("clustered_cli_ledger_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ledger = dir.join("ledger.jsonl");
    let ledger_str = ledger.to_str().expect("utf-8");
    for policy in [&["--policy", "explore"][..], &["--policy", "fixed", "--clusters", "4"]] {
        let mut args =
            vec!["run", "--workload", "gzip", "--warmup", "2000", "--instructions", "10000"];
        args.extend_from_slice(policy);
        args.extend(["--ledger", ledger_str]);
        let out = clustered(&args);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        assert!(stdout(&out).contains("ledger              "), "{}", stdout(&out));
    }

    use clustered::stats::Json;
    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    assert_eq!(text.lines().count(), 2, "one line per registered run");
    for line in text.lines() {
        let entry = clustered::stats::json::parse(line).expect("each line is valid JSON");
        assert!(entry.get("provenance").is_some() && entry.get("metrics").is_some());
    }

    let out = clustered(&["report", "--ledger", ledger_str]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("gzip"), "{text}");
    assert!(text.contains("fixed-4"), "{text}");

    let out = clustered(&["report", "--ledger", ledger_str, "--json"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let doc = clustered::stats::json::parse(&stdout(&out)).expect("valid JSON");
    assert_eq!(doc.get("entries").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("skipped_lines").and_then(Json::as_u64), Some(0));
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 2, "two distinct workload × policy groups");
}

#[test]
fn report_without_a_ledger_is_a_clear_error() {
    let out = clustered(&["report", "--ledger", "/nonexistent/ledger.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("no ledger at"), "{}", stderr(&out));
}

#[test]
fn phases_reports_interval_stability() {
    let out = clustered(&["phases", "--workload", "swim", "--instructions", "60000"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("base intervals"));
    assert!(text.contains("unstable"));
}
