//! Conservation-law auditor integration suite.
//!
//! Runs the same workload × cluster-count × policy-family × cache-model
//! matrix as the shard-equivalence suite (360 points) with an
//! [`AuditObserver`] attached and requires every point to come back
//! clean: the invariants are supposed to hold on *every* healthy
//! schedule, not just the configurations the unit tests happen to
//! construct. Each audited point is also compared counter-for-counter
//! against an unaudited run — auditing only reads machine state, so
//! its presence must not perturb a single statistic.

use clustered_core::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered_sim::{
    AuditInvariant, AuditObserver, CacheModel, FixedPolicy, Processor, ReconfigPolicy, SimConfig,
    SimStats, SteeringKind,
};
use clustered_workloads::CapturedTrace;

/// Warm-up and measured instructions per point; matches the
/// shard-equivalence suite so the two grids exercise identical
/// schedules.
const WARMUP: u64 = 1_000;
const MEASURE: u64 = 4_000;
const COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const FAMILIES: [&str; 4] = ["fixed", "explore", "distant", "finegrain"];
const MODELS: [(&str, CacheModel); 2] =
    [("cen", CacheModel::Centralized), ("dec", CacheModel::Decentralized)];

/// One matrix point's configuration and policy (same shape as the
/// shard-equivalence suite: `fixed` pins active clusters on a full
/// die, adaptive families roam inside an `n`-cluster die).
fn point(model: CacheModel, family: &str, n: usize) -> (SimConfig, Box<dyn ReconfigPolicy>) {
    let mut cfg = SimConfig::default();
    let policy: Box<dyn ReconfigPolicy> = match family {
        "fixed" => Box::new(FixedPolicy::new(n)),
        adaptive => {
            if n == 1 {
                cfg = SimConfig::monolithic();
            } else {
                cfg.clusters.count = n;
            }
            match adaptive {
                "explore" => Box::new(IntervalExplore::default()),
                "distant" => Box::new(IntervalDistantIlp::default()),
                "finegrain" => Box::new(FineGrain::branch_policy()),
                other => panic!("unknown policy family {other}"),
            }
        }
    };
    cfg.cache.model = model;
    (cfg, policy)
}

fn run_audited(
    trace: &CapturedTrace,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
) -> (SimStats, AuditObserver) {
    let mut cpu =
        Processor::with_observer(cfg, trace.replay(), policy, SteeringKind::default(), AuditObserver::new())
            .expect("valid matrix config");
    cpu.run(WARMUP).expect("no stall in warm-up");
    let before = *cpu.stats();
    cpu.run(MEASURE).expect("no stall");
    let stats = cpu.stats().delta_since(&before);
    let auditor = cpu.observer().clone();
    (stats, auditor)
}

fn run_plain(trace: &CapturedTrace, cfg: SimConfig, policy: Box<dyn ReconfigPolicy>) -> SimStats {
    let mut cpu = Processor::new(cfg, trace.replay(), policy).expect("valid matrix config");
    cpu.run(WARMUP).expect("no stall in warm-up");
    let before = *cpu.stats();
    cpu.run(MEASURE).expect("no stall");
    cpu.stats().delta_since(&before)
}

/// The headline guarantee: zero violations across the full 360-point
/// grid, and bit-identical statistics with and without the auditor.
#[test]
fn full_grid_is_audit_clean_and_stats_are_unperturbed() {
    let workloads = clustered_workloads::all();
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    let trace = CapturedTrace::for_window(w, WARMUP, MEASURE);
                    let mut bad = Vec::new();
                    for (mname, model) in MODELS {
                        for family in FAMILIES {
                            for n in COUNTS {
                                let label = format!("{}/{mname}/{family}/{n}", w.name());
                                let (cfg, policy) = point(model, family, n);
                                let (stats, auditor) = run_audited(&trace, cfg, policy);
                                assert!(
                                    auditor.checks_run() > 0,
                                    "{label}: the auditor must actually run"
                                );
                                for v in auditor.violations() {
                                    bad.push(format!("{label}: {v}"));
                                }
                                let (cfg, policy) = point(model, family, n);
                                let plain = run_plain(&trace, cfg, policy);
                                if stats.to_json().to_string_compact()
                                    != plain.to_json().to_string_compact()
                                {
                                    bad.push(format!("{label}: audited stats diverge"));
                                }
                            }
                        }
                    }
                    bad
                })
            })
            .collect();
        for h in handles {
            failures.extend(h.join().expect("grid worker panicked"));
        }
    });
    assert!(failures.is_empty(), "audit failures:\n{}", failures.join("\n"));
}

/// Fault injection end-to-end: a skewed fetch counter must trip
/// exactly the fetch-conservation law — on a real schedule, not a
/// synthetic snapshot — and nothing else.
#[test]
fn injected_fetch_skew_is_caught_on_a_real_run() {
    let w = clustered_workloads::by_name("gzip").expect("gzip exists");
    let trace = CapturedTrace::for_window(&w, WARMUP, MEASURE);
    let mut cpu = Processor::with_observer(
        SimConfig::default(),
        trace.replay(),
        Box::new(FixedPolicy::new(4)),
        SteeringKind::default(),
        AuditObserver::new(),
    )
    .expect("valid config");
    cpu.observer_mut().inject_fetched_skew(3);
    cpu.run(WARMUP + MEASURE).expect("no stall");
    let auditor = cpu.observer();
    assert!(!auditor.is_clean(), "the skew must be detected");
    assert!(
        auditor
            .violations()
            .iter()
            .all(|v| v.invariant == AuditInvariant::FetchConservation),
        "only fetch-conservation may fire: {:?}",
        auditor.violations()
    );
}
