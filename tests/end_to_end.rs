//! Cross-crate integration tests exercising the full public API:
//! assembler → emulator → workloads → simulator → policies.

use clustered::policies::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered::sim::{
    CacheModel, FixedPolicy, Processor, ReconfigPolicy, SimConfig, SimStats,
};
use clustered::{emu, isa, workloads};

fn run_policy_warm(
    workload: &str,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    warmup: u64,
    instructions: u64,
) -> SimStats {
    let w = workloads::by_name(workload).expect("known workload");
    let stream = w.trace().map(|r| r.expect("kernel cannot fault"));
    let mut cpu = Processor::new(cfg, stream, policy).expect("valid config");
    cpu.run(warmup).expect("warm-up");
    let before = *cpu.stats();
    cpu.run(instructions).expect("no stall");
    cpu.stats().delta_since(&before)
}

fn run_policy(
    workload: &str,
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    instructions: u64,
) -> SimStats {
    run_policy_warm(workload, cfg, policy, 10_000, instructions)
}

#[test]
fn assembled_program_runs_through_the_whole_stack() {
    let program = isa::assemble(
        "start: li r1, 64\n loop: addi r1, r1, -1\n bnez r1, loop\n halt",
    )
    .expect("valid program");
    let stream = emu::trace(program).map(|r| r.expect("well-formed"));
    let mut cpu = Processor::new(
        SimConfig::default(),
        stream,
        Box::new(FixedPolicy::new(4)),
    )
    .expect("valid config");
    let stats = cpu.run(u64::MAX).expect("no stall");
    assert_eq!(stats.committed, 129, "li + 64×(addi+bnez)");
    assert!(cpu.finished());
}

#[test]
fn every_policy_family_runs_every_workload() {
    for name in workloads::NAMES {
        let policies: Vec<Box<dyn ReconfigPolicy>> = vec![
            Box::new(FixedPolicy::new(8)),
            Box::new(IntervalExplore::default()),
            Box::new(IntervalDistantIlp::with_interval(1_000)),
            Box::new(FineGrain::branch_policy()),
            Box::new(FineGrain::subroutine_policy()),
        ];
        for policy in policies {
            let pname = policy.name();
            let s = run_policy(name, SimConfig::default(), policy, 15_000);
            assert!(s.committed >= 15_000, "{name}/{pname}: too few committed");
            assert!(s.ipc() > 0.03, "{name}/{pname}: IPC collapsed: {}", s.ipc());
        }
    }
}

#[test]
fn dynamic_policy_tracks_the_better_static_choice() {
    // djpeg strongly prefers 16 clusters, vpr prefers few: the same
    // untouched policy must land near the right configuration on both.
    for (name, wide_better) in [("djpeg", true), ("vpr", false)] {
        // Generous warm-up: the 10K-instruction exploration intervals
        // must finish before measuring which machine was chosen.
        let s = run_policy_warm(
            name,
            SimConfig::default(),
            Box::new(IntervalExplore::default()),
            100_000,
            50_000,
        );
        let avg = s.avg_active_clusters();
        if wide_better {
            assert!(avg > 9.0, "{name}: expected a wide machine, got {avg:.1}");
        } else {
            assert!(avg < 9.0, "{name}: expected a narrow machine, got {avg:.1}");
        }
    }
}

#[test]
fn committed_work_is_policy_independent() {
    // Reconfiguration changes timing, never the architectural work: the
    // same number of branches/memrefs commit under any policy.
    let fixed = run_policy("gzip", SimConfig::default(), Box::new(FixedPolicy::new(16)), 30_000);
    let dynamic = run_policy(
        "gzip",
        SimConfig::default(),
        Box::new(IntervalDistantIlp::with_interval(1_000)),
        30_000,
    );
    // Windows differ by up to a commit-width overshoot; compare rates.
    let fb = fixed.branches as f64 / fixed.committed as f64;
    let db = dynamic.branches as f64 / dynamic.committed as f64;
    assert!((fb - db).abs() < 0.01, "branch rates diverged: {fb} vs {db}");
    let fm = fixed.memrefs as f64 / fixed.committed as f64;
    let dm = dynamic.memrefs as f64 / dynamic.committed as f64;
    assert!((fm - dm).abs() < 0.01, "memref rates diverged: {fm} vs {dm}");
}

#[test]
fn decentralized_reconfiguration_flushes_the_cache() {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    let s = run_policy(
        "swim",
        cfg,
        Box::new(IntervalDistantIlp::with_interval(2_000)),
        60_000,
    );
    if s.reconfigurations > 0 {
        assert!(
            s.flush_writebacks > 0 || s.flush_stall_cycles > 0,
            "reconfigured {} times with no flush evidence",
            s.reconfigurations
        );
    }
    // The centralized model must never flush.
    let s = run_policy(
        "swim",
        SimConfig::default(),
        Box::new(IntervalDistantIlp::with_interval(2_000)),
        60_000,
    );
    assert_eq!(s.flush_writebacks, 0);
    assert_eq!(s.flush_stall_cycles, 0);
}

#[test]
fn runs_are_deterministic() {
    let a = run_policy("crafty", SimConfig::default(), Box::new(IntervalExplore::default()), 25_000);
    let b = run_policy("crafty", SimConfig::default(), Box::new(IntervalExplore::default()), 25_000);
    assert_eq!(a, b, "identical runs must produce identical statistics");
}

#[test]
fn fine_grain_policy_reconfigures_more_often_than_interval() {
    // crafty is the paper's most reconfiguration-happy program under
    // the fine-grained scheme (1.5M changes); at any scale the branch
    // policy must switch at least as often as the interval policy.
    // Count total changes from the start of the run (the fine-grained
    // policy's flurry happens while the table is still being sampled).
    let interval = run_policy_warm(
        "crafty",
        SimConfig::default(),
        Box::new(IntervalExplore::default()),
        0,
        60_000,
    );
    let fine = run_policy_warm(
        "crafty",
        SimConfig::default(),
        Box::new(FineGrain::branch_policy()),
        0,
        60_000,
    );
    assert!(
        fine.reconfigurations >= interval.reconfigurations,
        "fine-grain {} < interval {}",
        fine.reconfigurations,
        interval.reconfigurations
    );
}

#[test]
fn monolithic_baseline_has_no_communication() {
    let s = run_policy("galgel", SimConfig::monolithic(), Box::new(FixedPolicy::new(1)), 25_000);
    assert_eq!(s.reg_transfers, 0);
    assert_eq!(s.cache_transfers, 0);
    assert_eq!(s.avg_active_clusters(), 1.0);
}

#[test]
fn disabled_clusters_drain_naturally() {
    // Shrink from 16 to 2 clusters mid-run; the pipeline must keep
    // committing (in-flight instructions in disabled clusters finish).
    struct ShrinkOnce {
        fired: bool,
    }
    impl ReconfigPolicy for ShrinkOnce {
        fn name(&self) -> String {
            "shrink-once".into()
        }
        fn initial_clusters(&self) -> usize {
            16
        }
        fn on_commit(&mut self, event: &clustered::sim::CommitEvent) -> Option<usize> {
            if !self.fired && event.seq > 15_000 {
                self.fired = true;
                Some(2)
            } else {
                None
            }
        }
    }
    let s = run_policy("swim", SimConfig::default(), Box::new(ShrinkOnce { fired: false }), 30_000);
    assert_eq!(s.reconfigurations, 1);
    assert!(s.committed >= 30_000);
    assert!(s.cycles_at_config[1] > 0, "must spend cycles at 2 clusters");
    assert!(s.ipc() > 0.05);
}
