//! Policy ground-truth tests: synthetic workloads with *known* phase
//! structure must drive the policies to the configurations the phases
//! call for.

use clustered::policies::IntervalDistantIlp;
use clustered::sim::{Processor, ReconfigPolicy, SimConfig, SimStats};
use clustered::workloads::synthetic::{phased, PhaseKind, PhaseSpec};
use clustered::workloads::Workload;

fn run(w: &Workload, policy: Box<dyn ReconfigPolicy>, instructions: u64) -> SimStats {
    let stream = w.trace().map(|r| r.expect("synthetic kernel cannot fault"));
    let mut cpu = Processor::new(SimConfig::default(), stream, policy).expect("valid config");
    cpu.run(20_000).expect("warm-up");
    let before = *cpu.stats();
    cpu.run(instructions).expect("no stall");
    cpu.stats().delta_since(&before)
}

fn cycles_fraction_at(stats: &SimStats, clusters: usize) -> f64 {
    stats.cycles_at_config[clusters - 1] as f64 / stats.cycles.max(1) as f64
}

#[test]
fn pure_parallel_phase_keeps_the_machine_wide() {
    let w = phased("all-parallel", &[PhaseSpec::lasting(PhaseKind::Parallel, 50_000)]);
    let s = run(&w, Box::new(IntervalDistantIlp::with_interval(10_000)), 60_000);
    assert!(
        cycles_fraction_at(&s, 16) > 0.8,
        "parallel code should run wide; config distribution {:?}",
        &s.cycles_at_config[..]
    );
}

#[test]
fn pure_serial_phase_narrows_the_machine() {
    let w = phased("all-serial", &[PhaseSpec::lasting(PhaseKind::Serial, 50_000)]);
    let s = run(&w, Box::new(IntervalDistantIlp::with_interval(10_000)), 60_000);
    assert!(
        cycles_fraction_at(&s, 4) > 0.5,
        "serial code should run narrow; config distribution {:?}",
        &s.cycles_at_config[..]
    );
}

#[test]
fn alternating_phases_use_both_configurations() {
    let w = phased(
        "alternating",
        &[
            PhaseSpec::lasting(PhaseKind::Serial, 30_000),
            PhaseSpec::lasting(PhaseKind::Parallel, 30_000),
        ],
    );
    let s = run(&w, Box::new(IntervalDistantIlp::with_interval(10_000)), 150_000);
    let narrow = cycles_fraction_at(&s, 4);
    let wide = cycles_fraction_at(&s, 16);
    assert!(
        narrow > 0.10 && wide > 0.10,
        "policy should track both phases: narrow {narrow:.2}, wide {wide:.2}"
    );
    assert!(s.reconfigurations >= 2, "must switch at least once per phase pair");
}

#[test]
fn short_intervals_flap_as_the_paper_observed() {
    // Paper §4.3: "the smaller the interval length ... the noisier the
    // measurements, resulting in some incorrect decisions" — 1K-probe
    // decisions oscillate on code a 10K probe handles cleanly.
    let w = phased("steady", &[PhaseSpec::lasting(PhaseKind::Parallel, 50_000)]);
    let fine = run(&w, Box::new(IntervalDistantIlp::with_interval(1_000)), 120_000);
    let coarse = run(&w, Box::new(IntervalDistantIlp::with_interval(10_000)), 120_000);
    assert!(
        fine.reconfigurations >= coarse.reconfigurations,
        "1K probes should reconfigure at least as often: 1K={}, 10K={}",
        fine.reconfigurations,
        coarse.reconfigurations
    );
}

#[test]
fn serial_phase_shows_no_distant_ilp() {
    let serial = phased("s", &[PhaseSpec::lasting(PhaseKind::Serial, 50_000)]);
    let parallel = phased("p", &[PhaseSpec::lasting(PhaseKind::Parallel, 50_000)]);
    let fixed = |w: &Workload| {
        run(w, Box::new(clustered::sim::FixedPolicy::new(16)), 40_000)
    };
    let s = fixed(&serial);
    let p = fixed(&parallel);
    let s_frac = s.distant_issues as f64 / s.committed as f64;
    let p_frac = p.distant_issues as f64 / p.committed as f64;
    assert!(
        p_frac > s_frac + 0.2,
        "distant-ILP metric must separate the phases: serial {s_frac:.3}, parallel {p_frac:.3}"
    );
}

#[test]
fn parallel_phase_gains_from_width_serial_does_not() {
    let serial = phased("s2", &[PhaseSpec::lasting(PhaseKind::Serial, 50_000)]);
    let parallel = phased("p2", &[PhaseSpec::lasting(PhaseKind::Parallel, 50_000)]);
    let at = |w: &Workload, n: usize| {
        run(w, Box::new(clustered::sim::FixedPolicy::new(n)), 40_000).ipc()
    };
    assert!(
        at(&parallel, 16) > at(&parallel, 2) * 1.2,
        "parallel synthetic phase must scale with clusters"
    );
    let serial_wide = at(&serial, 16);
    let serial_narrow = at(&serial, 2);
    assert!(
        serial_narrow >= serial_wide * 0.9,
        "serial phase must not need the wide machine: 2→{serial_narrow:.3}, 16→{serial_wide:.3}"
    );
}
