// Property tests depend on the external `proptest` crate, which the
// offline build environment cannot fetch. Compiled only with
// `--features slow-tests` (re-add proptest to [dev-dependencies] first).
#![cfg(feature = "slow-tests")]

//! Property-based tests of the reconfiguration policies as state
//! machines: whatever the commit stream looks like, a policy's
//! requests stay within its configured set and its bookkeeping never
//! panics.

use clustered::policies::{
    FineGrain, FineGrainConfig, IntervalDistantIlp, IntervalExplore, IntervalExploreConfig,
    Trigger,
};
use clustered::sim::{CommitEvent, ReconfigPolicy};
use proptest::prelude::*;

/// A compact encoding of a synthetic commit event.
#[derive(Debug, Clone)]
struct Step {
    pc: u32,
    cycles: u64,
    is_branch: bool,
    is_call: bool,
    is_memref: bool,
    distant: bool,
}

fn step() -> impl Strategy<Value = Step> {
    (0u32..200, 1u64..6, any::<bool>(), 0u8..8, any::<bool>(), any::<bool>()).prop_map(
        |(pc, cycles, is_branch, call_die, is_memref, distant)| Step {
            pc,
            cycles,
            is_branch,
            is_call: call_die == 0,
            is_memref,
            distant,
        },
    )
}

fn drive(policy: &mut dyn ReconfigPolicy, steps: &[Step], repeats: usize) -> Vec<usize> {
    let mut requests = Vec::new();
    let mut seq = 0u64;
    let mut cycle = 0u64;
    for _ in 0..repeats {
        for s in steps {
            seq += 1;
            cycle += s.cycles;
            let event = CommitEvent {
                seq,
                pc: s.pc,
                cycle,
                is_branch: s.is_branch || s.is_call,
                is_cond_branch: s.is_branch,
                is_call: s.is_call,
                is_return: false,
                is_memref: s.is_memref,
                distant: s.distant,
                mispredicted: false,
            };
            if let Some(r) = policy.on_commit(&event) {
                requests.push(r);
            }
        }
    }
    requests
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exploration policy only ever requests configurations from
    /// its explore set.
    #[test]
    fn explore_requests_stay_in_configured_set(
        steps in prop::collection::vec(step(), 50..200),
        repeats in 1usize..60,
    ) {
        let mut policy = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 100,
            max_interval: 10_000,
            ..IntervalExploreConfig::default()
        });
        let requests = drive(&mut policy, &steps, repeats);
        for r in requests {
            prop_assert!([2usize, 4, 8, 16].contains(&r), "unexpected request {r}");
        }
    }

    /// Once discontinued, the exploration policy never requests again.
    #[test]
    fn explore_discontinuation_is_final(
        steps in prop::collection::vec(step(), 50..200),
    ) {
        let mut policy = IntervalExplore::new(IntervalExploreConfig {
            initial_interval: 100,
            max_interval: 200,
            ..IntervalExploreConfig::default()
        });
        let _ = drive(&mut policy, &steps, 100);
        if policy.is_discontinued() {
            let late = drive(&mut policy, &steps, 20);
            prop_assert!(late.is_empty(), "discontinued policy reconfigured: {late:?}");
        }
    }

    /// The no-exploration policy only picks its two configurations,
    /// and consecutive requests never repeat a value (requests are
    /// changes).
    #[test]
    fn distant_ilp_requests_alternate_between_configs(
        steps in prop::collection::vec(step(), 50..200),
        repeats in 1usize..40,
    ) {
        let mut policy = IntervalDistantIlp::with_interval(100);
        let requests = drive(&mut policy, &steps, repeats);
        for pair in requests.windows(2) {
            prop_assert_ne!(pair[0], pair[1], "request repeated a configuration");
        }
        for r in requests {
            prop_assert!(r == 4 || r == 16, "unexpected request {r}");
        }
    }

    /// Fine-grained policies request only narrow/wide and their
    /// internal distant-window bookkeeping stays consistent under any
    /// stream.
    #[test]
    fn finegrain_requests_stay_in_bounds(
        steps in prop::collection::vec(step(), 30..150),
        repeats in 1usize..40,
        trigger_branch in any::<bool>(),
    ) {
        let trigger = if trigger_branch { Trigger::Branch } else { Trigger::CallReturn };
        let mut policy = FineGrain::new(
            trigger,
            FineGrainConfig { samples: 2, every_nth: 2, ..FineGrainConfig::default() },
        );
        let requests = drive(&mut policy, &steps, repeats);
        for r in &requests {
            prop_assert!(*r == 4 || *r == 16, "unexpected request {r}");
        }
        prop_assert_eq!(requests.len() as u64, policy.requests());
        for pair in requests.windows(2) {
            prop_assert_ne!(pair[0], pair[1]);
        }
    }
}
