//! Shard-equivalence suite: the per-cluster event-queue sharding is a
//! pure restructuring of *how* the schedule is computed, so measured
//! [`SimStats`] must stay bit-identical across it. This suite runs the
//! full workload × cluster-count × policy-family × cache-model matrix
//! and pins every counter against `tests/shard_oracle.json`, captured
//! from the pre-refactor simulator.
//!
//! The oracle intentionally stores the *serialized* statistics
//! (`SimStats::to_json`), so the comparison also covers the derived
//! rates. New counters added after the oracle was captured (e.g. the
//! quiescence counters) are permitted: the pin asserts equality on
//! every key the oracle has, not key-set equality.
//!
//! Regenerating the oracle (only when the simulated schedule is
//! *meant* to change, which defeats the point of this suite — say why
//! in the commit message):
//!
//! ```text
//! cargo test --test shard_equivalence -- --ignored regenerate_oracle
//! ```

use clustered_core::{FineGrain, IntervalDistantIlp, IntervalExplore};
use clustered_sim::{
    CacheModel, FixedPolicy, Processor, ReconfigPolicy, SimConfig, SimStats,
};
use clustered_stats::{json, Json};
use clustered_workloads::CapturedTrace;
use std::path::PathBuf;

/// Warm-up instructions discarded per point.
const WARMUP: u64 = 1_000;
/// Measured instructions per point.
const MEASURE: u64 = 4_000;
/// The cluster-count axis (all powers of two, so the decentralized
/// model's interleaving accepts every point).
const COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// The four policy families.
const FAMILIES: [&str; 4] = ["fixed", "explore", "distant", "finegrain"];
const MODELS: [(&str, CacheModel); 2] =
    [("cen", CacheModel::Centralized), ("dec", CacheModel::Decentralized)];

fn oracle_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("shard_oracle.json")
}

/// Builds one matrix point's configuration and policy.
///
/// The `fixed` family keeps the full 16-cluster die configured and
/// pins `n` *active* clusters — the wide-but-idle shape the sharded
/// cycle loop exists to make cheap. The adaptive families instead
/// configure an `n`-cluster die and let the policy roam inside it, so
/// the matrix covers both "configured narrow" and "wide but idle".
fn point(model: CacheModel, family: &str, n: usize) -> (SimConfig, Box<dyn ReconfigPolicy>) {
    let mut cfg = SimConfig::default();
    let policy: Box<dyn ReconfigPolicy> = match family {
        "fixed" => Box::new(FixedPolicy::new(n)),
        adaptive => {
            // A 1-cluster die needs the monolithic resource pool: the
            // default per-cluster register file cannot hold the whole
            // architectural state in one cluster.
            if n == 1 {
                cfg = SimConfig::monolithic();
            } else {
                cfg.clusters.count = n;
            }
            match adaptive {
                "explore" => Box::new(IntervalExplore::default()),
                "distant" => Box::new(IntervalDistantIlp::default()),
                "finegrain" => Box::new(FineGrain::branch_policy()),
                other => panic!("unknown policy family {other}"),
            }
        }
    };
    cfg.cache.model = model;
    (cfg, policy)
}

fn run_point(trace: &CapturedTrace, cfg: SimConfig, policy: Box<dyn ReconfigPolicy>) -> SimStats {
    let mut cpu = Processor::new(cfg, trace.replay(), policy).expect("valid matrix config");
    cpu.run(WARMUP).expect("no stall in warm-up");
    let before = *cpu.stats();
    cpu.run(MEASURE).expect("no stall");
    cpu.stats().delta_since(&before)
}

/// Runs the whole matrix, one worker thread per workload, and returns
/// `(label, serialized stats)` in deterministic matrix order.
fn run_matrix() -> Vec<(String, Json)> {
    let workloads = clustered_workloads::all();
    let mut out = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    let trace = CapturedTrace::for_window(w, WARMUP, MEASURE);
                    let mut rows = Vec::new();
                    for (mname, model) in MODELS {
                        for family in FAMILIES {
                            for n in COUNTS {
                                let (cfg, policy) = point(model, family, n);
                                let stats = run_point(&trace, cfg, policy);
                                // Through the same text round-trip the
                                // oracle went through, so float
                                // formatting cannot produce spurious
                                // mismatches.
                                let doc = json::parse(&stats.to_json().to_string_compact())
                                    .expect("SimStats serializes to valid JSON");
                                rows.push((format!("{}/{mname}/{family}/{n}", w.name()), doc));
                            }
                        }
                    }
                    rows
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("matrix worker panicked"));
        }
    });
    out
}

fn matrix_to_json(rows: &[(String, Json)]) -> Json {
    let points: Vec<Json> = rows
        .iter()
        .map(|(label, stats)| {
            Json::object().set("label", label.as_str()).set("stats", stats.clone())
        })
        .collect();
    Json::object()
        .set("version", 1u64)
        .set("warmup", WARMUP)
        .set("measure", MEASURE)
        .set("points", Json::Arr(points))
}

/// Captures the oracle. Ignored by default: it exists to be run ONCE,
/// on the pre-refactor tree, and whenever a deliberate schedule change
/// needs a new baseline.
#[test]
#[ignore = "rewrites the oracle; run explicitly on a known-good tree"]
fn regenerate_oracle() {
    let doc = matrix_to_json(&run_matrix());
    std::fs::write(oracle_path(), doc.to_string_pretty()).expect("write oracle");
}

/// The pin: every counter of every matrix point must match the
/// pre-refactor oracle exactly.
#[test]
fn stats_bit_identical_to_pre_refactor_oracle() {
    let text = std::fs::read_to_string(oracle_path())
        .expect("tests/shard_oracle.json missing; run `cargo test --test shard_equivalence -- --ignored regenerate_oracle` on a known-good tree");
    let oracle = json::parse(&text).expect("oracle parses");
    let points = oracle.get("points").and_then(Json::as_arr).expect("oracle has points");
    let fresh = run_matrix();
    assert_eq!(
        points.len(),
        fresh.len(),
        "matrix shape changed; regenerate the oracle deliberately"
    );
    let mut mismatches = Vec::new();
    for (expected, (label, got)) in points.iter().zip(&fresh) {
        let elabel = expected.get("label").and_then(Json::as_str).expect("point label");
        assert_eq!(elabel, label, "matrix order changed");
        let estats = expected.get("stats").expect("point stats");
        for key in estats.keys().expect("stats is an object") {
            let want = estats.get(key);
            let have = got.get(key);
            if want != have {
                mismatches.push(format!("{label}: {key}: oracle {want:?} != fresh {have:?}"));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} of {} points diverged from the pre-refactor oracle:\n{}",
        mismatches.len(),
        fresh.len(),
        mismatches.join("\n")
    );
}
