// Property tests depend on the external `proptest` crate, which the
// offline build environment cannot fetch. Compiled only with
// `--features slow-tests` (re-add proptest to [dev-dependencies] first).
#![cfg(feature = "slow-tests")]

//! Property-based tests over the core data structures and invariants.

use clustered::emu::Memory;
use clustered::isa::{
    assemble, disassemble, AluOp, ArchReg, BranchCond, FpCmpOp, FpOp, FpReg, FpUnOp, Inst,
    IntReg, MemWidth, MulDivOp, Operand,
};
use clustered::sim::{
    CacheArray, Interconnect, InterconnectParams, SlotReservations, SteerRequest, Steering,
    SteeringKind, Topology,
};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(|i| IntReg::new(i).expect("in range"))
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(|i| FpReg::new(i).expect("in range"))
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        int_reg().prop_map(Operand::Reg),
        (-1_000_000i64..1_000_000).prop_map(Operand::Imm),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Word), Just(MemWidth::Double)]
}

fn branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

/// Any single instruction (branch targets are small indices, which the
/// assembler accepts numerically).
fn inst() -> impl Strategy<Value = Inst> {
    let offset = -4096i64..4096;
    prop_oneof![
        (alu_op(), int_reg(), int_reg(), operand())
            .prop_map(|(op, rd, rs1, src2)| Inst::Alu { op, rd, rs1, src2 }),
        (int_reg(), any::<i64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (
            prop_oneof![Just(MulDivOp::Mul), Just(MulDivOp::Div), Just(MulDivOp::Rem)],
            int_reg(),
            int_reg(),
            int_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(FpOp::Add),
                Just(FpOp::Sub),
                Just(FpOp::Mul),
                Just(FpOp::Div),
                Just(FpOp::Min),
                Just(FpOp::Max)
            ],
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fd, fs1, fs2)| Inst::Fp { op, fd, fs1, fs2 }),
        (
            prop_oneof![
                Just(FpUnOp::Neg),
                Just(FpUnOp::Abs),
                Just(FpUnOp::Mov),
                Just(FpUnOp::Sqrt)
            ],
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fd, fs)| Inst::FpUn { op, fd, fs }),
        (
            prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)],
            int_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, rd, fs1, fs2)| Inst::FpCmp { op, rd, fs1, fs2 }),
        (fp_reg(), int_reg()).prop_map(|(fd, rs)| Inst::IntToFp { fd, rs }),
        (int_reg(), fp_reg()).prop_map(|(rd, fs)| Inst::FpToInt { rd, fs }),
        (mem_width(), int_reg(), int_reg(), offset.clone())
            .prop_map(|(width, rd, base, offset)| Inst::Load { width, rd, base, offset }),
        (mem_width(), int_reg(), int_reg(), offset.clone())
            .prop_map(|(width, rs, base, offset)| Inst::Store { width, rs, base, offset }),
        (fp_reg(), int_reg(), offset.clone())
            .prop_map(|(fd, base, offset)| Inst::FpLoad { fd, base, offset }),
        (fp_reg(), int_reg(), offset)
            .prop_map(|(fs, base, offset)| Inst::FpStore { fs, base, offset }),
        (branch_cond(), int_reg(), int_reg(), 0u32..10_000)
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch { cond, rs1, rs2, target }),
        (0u32..10_000).prop_map(|target| Inst::Jump { target }),
        int_reg().prop_map(|rs| Inst::JumpReg { rs }),
        (0u32..10_000).prop_map(|target| Inst::Call { target }),
        int_reg().prop_map(|rs| Inst::CallReg { rs }),
        Just(Inst::Ret),
        Just(Inst::Halt),
    ]
}

proptest! {
    /// Disassembling any instruction and re-assembling it yields the
    /// same instruction.
    #[test]
    fn disassembly_round_trips(instructions in prop::collection::vec(inst(), 1..40)) {
        let source: String =
            instructions.iter().map(disassemble).collect::<Vec<_>>().join("\n");
        let program = assemble(&source).expect("disassembly must be valid assembly");
        prop_assert_eq!(program.text(), &instructions[..]);
    }

    /// Source/destination classification: the zero register never
    /// appears as a dependence, and every reported register is valid.
    #[test]
    fn dependence_classification(i in inst()) {
        for src in i.sources().into_iter().flatten() {
            if let ArchReg::Int(r) = src {
                prop_assert!(!r.is_zero());
            }
            prop_assert!(src.unified_index() < 64);
        }
        if let Some(ArchReg::Int(r)) = i.dest() {
            prop_assert!(!r.is_zero());
        }
    }

    /// Sparse memory behaves exactly like a byte map.
    #[test]
    fn memory_matches_reference_model(
        ops in prop::collection::vec(
            (any::<u64>(), any::<u64>(), 0u8..3, any::<bool>()),
            1..200,
        )
    ) {
        let mut mem = Memory::new();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for (addr, value, width, is_read) in ops {
            let size = match width { 0 => 1u64, 1 => 4, _ => 8 };
            if is_read {
                let expected: u64 = (0..size)
                    .map(|i| {
                        let b = reference.get(&addr.wrapping_add(i)).copied().unwrap_or(0);
                        (b as u64) << (8 * i)
                    })
                    .sum();
                let got = match size {
                    1 => mem.read_u8(addr) as u64,
                    4 => mem.read_u32(addr) as u64,
                    _ => mem.read_u64(addr),
                };
                prop_assert_eq!(got, expected);
            } else {
                match size {
                    1 => mem.write_u8(addr, value as u8),
                    4 => mem.write_u32(addr, value as u32),
                    _ => mem.write_u64(addr, value),
                }
                for i in 0..size {
                    reference.insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
                }
            }
        }
    }

    /// A resource never grants the same cycle twice, and grants never
    /// precede the request.
    #[test]
    fn slot_reservations_never_double_book(
        requests in prop::collection::vec((0usize..4, 0u64..500), 1..300)
    ) {
        let mut slots = SlotReservations::new(4);
        let mut granted: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
        for (idx, earliest) in requests {
            let t = slots.reserve(idx, earliest);
            prop_assert!(t >= earliest);
            prop_assert!(granted[idx].insert(t), "cycle {t} granted twice on {idx}");
        }
    }

    /// Ring and grid distances are symmetric, zero on the diagonal,
    /// within the documented bounds, and transfers respect them.
    #[test]
    fn interconnect_distance_laws(
        topology in prop_oneof![Just(Topology::Ring), Just(Topology::Grid)],
        log_n in 0u32..5,
        a in 0usize..16,
        b in 0usize..16,
        earliest in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let (a, b) = (a % n, b % n);
        let params = InterconnectParams { topology, hop_latency: 1 };
        let mut net = Interconnect::new(&params, n);
        prop_assert_eq!(net.distance(a, b), net.distance(b, a));
        prop_assert_eq!(net.distance(a, a), 0);
        let bound = match topology {
            Topology::Ring => (n / 2) as u64,
            Topology::Grid => n as u64, // loose; exact checked in unit tests
        };
        prop_assert!(net.distance(a, b) <= bound.max(1));
        let arrival = net.transfer(a, b, earliest);
        prop_assert!(arrival >= earliest + net.latency(a, b));
        // An uncontended fabric achieves exactly the minimum.
        let mut fresh = Interconnect::new(&params, n);
        prop_assert_eq!(fresh.transfer(a, b, earliest), earliest + fresh.latency(a, b));
    }
}

fn steering_kind() -> impl Strategy<Value = SteeringKind> {
    prop_oneof![
        (0usize..16).prop_map(|t| SteeringKind::Producer { imbalance_threshold: t }),
        (1usize..8).prop_map(SteeringKind::ModN),
        Just(SteeringKind::FirstFit),
    ]
}

proptest! {
    /// Steering's contract: a returned cluster is always active, has
    /// queue space, and (when a register is needed) a free register —
    /// and `None` is returned only when no active cluster qualifies.
    #[test]
    fn steering_always_returns_a_feasible_cluster(
        kind in steering_kind(),
        decisions in prop::collection::vec(
            (
                1usize..=16,                                  // active
                prop::collection::vec(0usize..=15, 16),       // occupancy
                prop::collection::vec(any::<bool>(), 16),     // free regs
                any::<bool>(),                                // needs_reg
                prop::option::of(0usize..16),                 // critical producer
                prop::option::of(0usize..16),                 // bank cluster
            ),
            1..60,
        ),
    ) {
        let mut steering = Steering::new(kind);
        for (active, occupancy, has_free_reg, needs_reg, critical, bank) in decisions {
            let request = SteerRequest {
                active,
                occupancy: &occupancy,
                capacity: 15,
                has_free_reg: &has_free_reg,
                needs_reg,
                critical_producer: critical,
                other_producer: None,
                bank_cluster: bank.filter(|&b| b < active),
            };
            let feasible = |c: usize| {
                occupancy[c] < 15 && (!needs_reg || has_free_reg[c])
            };
            match steering.choose(&request) {
                Some(c) => {
                    prop_assert!(c < active, "chose inactive cluster {c} of {active}");
                    prop_assert!(feasible(c), "chose infeasible cluster {c}");
                }
                None => {
                    prop_assert!(
                        (0..active).all(|c| !feasible(c)),
                        "stalled although a feasible cluster exists"
                    );
                }
            }
        }
    }

    /// The set-associative tag array agrees with a brute-force LRU
    /// reference model on every hit/miss and writeback decision.
    #[test]
    fn cache_array_matches_lru_reference(
        ways in 1usize..4,
        accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..200),
    ) {
        // One set: size = ways × line, 32-byte lines, 6-bit line space.
        let mut cache = CacheArray::new(ways * 32, ways, 32);
        // Reference: an LRU queue of (line, dirty), most recent at back.
        let mut reference: VecDeque<(u64, bool)> = VecDeque::new();
        for (line, is_write) in accesses {
            let addr = line * 32 + 7;
            let result = cache.access(addr, is_write);
            let hit = reference.iter().any(|&(l, _)| l == line);
            prop_assert_eq!(result.hit, hit, "hit/miss mismatch for line {}", line);
            if hit {
                let pos = reference.iter().position(|&(l, _)| l == line).expect("hit");
                let (l, dirty) = reference.remove(pos).expect("in range");
                reference.push_back((l, dirty || is_write));
                prop_assert_eq!(result.writeback, None);
            } else {
                let expected_writeback = if reference.len() == ways {
                    let (victim, dirty) = reference.pop_front().expect("full set");
                    dirty.then_some(victim * 32)
                } else {
                    None
                };
                prop_assert_eq!(result.writeback, expected_writeback);
                reference.push_back((line, is_write));
            }
        }
    }
}
