//! Compiled-replay equivalence suite: a [`CompiledTrace`] is a pure
//! re-encoding of a [`CapturedTrace`], so its decoded stream must be
//! bit-identical to decode-on-the-fly replay and to live emulation for
//! every kernel, its block index must exactly partition the record
//! range, and a simulator fed the compiled form must compute the same
//! statistics as one fed the plain replay.
//!
//! Together with `tests/shard_equivalence.rs` (whose oracle pins the
//! schedule the pipeline computes from the decoded stream), this makes
//! the compiled path a no-op for results and a win for wall-clock only.

use clustered_core::{IntervalDistantIlp, IntervalExplore};
use clustered_emu::{DecodedInst, TraceSource};
use clustered_sim::{CacheModel, FixedPolicy, Processor, ReconfigPolicy, SimConfig};
use clustered_workloads::CapturedTrace;

const RECORDS: u64 = 5_000;

fn drain(mut src: impl TraceSource) -> Vec<DecodedInst> {
    let mut out = Vec::new();
    while let Some(d) = src.next_decoded() {
        out.push(d);
    }
    out
}

/// The satellite pin: for all nine kernels, the compiled stream equals
/// plain trace replay equals live emulation, record for record.
#[test]
fn compiled_stream_matches_replay_and_live_for_all_nine_kernels() {
    for w in clustered_workloads::all() {
        let captured = CapturedTrace::capture(&w, RECORDS);
        let compiled = captured.compile();
        let live = drain(w.trace().take(captured.len()).map(Result::unwrap));
        let replayed = drain(captured.replay());
        let from_table = drain(compiled.replay());
        assert_eq!(replayed, live, "{}: replay diverged from live emulation", w.name());
        assert_eq!(from_table, live, "{}: compiled stream diverged from live", w.name());
    }
}

/// Block-index invariants, for all nine kernels: spans partition the
/// record range (contiguous from 0, non-empty, summing to the length),
/// block bodies are branch-free, and every block ends at a control
/// transfer or the trace tail.
#[test]
fn block_index_invariants_hold_for_all_nine_kernels() {
    for w in clustered_workloads::all() {
        let compiled = CapturedTrace::capture(&w, RECORDS).compile();
        let stream = drain(compiled.replay());
        let mut next_start = 0u64;
        for b in compiled.blocks() {
            assert_eq!(b.start, next_start, "{}: block index has a gap or overlap", w.name());
            assert!(b.len > 0, "{}: empty block", w.name());
            next_start += b.len;
            let last = (b.start + b.len - 1) as usize;
            for d in &stream[b.start as usize..last] {
                assert!(d.branch.is_none(), "{}: control transfer inside a block body", w.name());
            }
            assert!(
                stream[last].branch.is_some() || last + 1 == stream.len(),
                "{}: block ends at neither a branch nor the trace tail",
                w.name()
            );
        }
        assert_eq!(next_start, compiled.len() as u64, "{}: blocks must cover the range", w.name());
        assert_eq!(compiled.block_count(), compiled.blocks().len());
        assert_eq!(compiled.table_len(), w.program().text().len());
    }
}

/// Feeding the simulator the compiled form computes bit-identical
/// statistics to feeding it the plain replay, across both cache
/// models, fixed and adaptive policies, and narrow/wide cluster
/// counts (a sample of the shard-oracle matrix; the full 360-point
/// oracle pin in `tests/shard_equivalence.rs` covers the pipeline
/// itself).
#[test]
fn simulator_stats_identical_on_compiled_and_plain_replay() {
    const WARMUP: u64 = 1_000;
    const MEASURE: u64 = 4_000;
    type PolicyCtor = fn() -> Box<dyn ReconfigPolicy>;
    let policies: [(&str, PolicyCtor); 3] = [
        ("fixed4", || Box::new(FixedPolicy::new(4))),
        ("explore", || Box::new(IntervalExplore::default())),
        ("distant", || Box::new(IntervalDistantIlp::default())),
    ];
    for name in ["gzip", "djpeg", "swim"] {
        let w = clustered_workloads::by_name(name).unwrap();
        let trace = CapturedTrace::for_window(&w, WARMUP, MEASURE);
        let compiled = trace.compile();
        for model in [CacheModel::Centralized, CacheModel::Decentralized] {
            for (pname, policy) in policies {
                let mut cfg = SimConfig::default();
                cfg.cache.model = model;
                let mut via_replay =
                    Processor::new(cfg, trace.replay(), policy()).expect("valid config");
                let mut via_compiled =
                    Processor::new(cfg, compiled.replay(), policy()).expect("valid config");
                via_replay.run(WARMUP).expect("warmup");
                via_compiled.run(WARMUP).expect("warmup");
                let a0 = *via_replay.stats();
                let b0 = *via_compiled.stats();
                via_replay.run(MEASURE).expect("measure");
                via_compiled.run(MEASURE).expect("measure");
                let a = via_replay.stats().delta_since(&a0);
                let b = via_compiled.stats().delta_since(&b0);
                assert_eq!(
                    a.to_json().to_string_compact(),
                    b.to_json().to_string_compact(),
                    "{name}/{model:?}/{pname}: compiled path diverged from plain replay"
                );
            }
        }
    }
}
