//! Trace capture and replay: run the functional emulator once, keep
//! the dynamic stream in a compact shared buffer, and replay it any
//! number of times.
//!
//! Every point of an experiment grid simulates the same dynamic
//! instruction stream — only the timing model's configuration and
//! policy vary — so re-running the emulator for every point is pure
//! redundancy. A [`CapturedTrace`] records each executed instruction
//! in 24 bytes (the static [`Inst`](clustered_isa::Inst) is recovered
//! from the program text at replay, and the sequence number from the
//! buffer position), shares the buffer behind an [`Arc`], and hands
//! out cheap cloneable [`TraceReplay`] iterators satisfying the
//! simulator's `TraceSource` stream seam (every `Iterator<Item =
//! DynInst>` is one). Replayed records are bit-identical to live
//! emulation — pinned by the tests here and by the golden statistics
//! test in `clustered-bench`.
//!
//! For the hot replay paths, [`CapturedTrace::compile`] goes one step
//! further and pre-decodes the whole trace into a
//! [`CompiledTrace`] — see the
//! [`compiled`](crate::compiled) module.
//!
//! # Examples
//!
//! ```
//! use clustered_workloads::{by_name, CapturedTrace};
//!
//! let gzip = by_name("gzip").unwrap();
//! let trace = CapturedTrace::capture(&gzip, 10_000);
//! assert_eq!(trace.len(), 10_000);
//!
//! // Two replays of one capture: zero re-emulation, identical streams.
//! let a: Vec<_> = trace.replay().take(100).collect();
//! let b: Vec<_> = trace.replay().take(100).collect();
//! assert_eq!(a, b);
//! ```

use crate::compiled::CompiledTrace;
use crate::Workload;
use clustered_emu::{BranchKind, BranchOutcome, DynInst, MemAccess};
use clustered_isa::Program;
use std::sync::{Arc, OnceLock};

/// Extra records captured beyond a `warmup + measure` simulation
/// window by [`CapturedTrace::for_window`].
///
/// A trace-driven run fetches ahead of commit by at most the in-flight
/// capacity of the machine (fetch queue + ROB, 544 entries for every
/// configuration in this repository); 8192 leaves an order-of-magnitude
/// margin so replayed runs never exhaust the buffer mid-measurement.
/// [The sweep executor](../clustered_bench/sweep/index.html) asserts
/// this invariant after every point.
pub const CAPTURE_MARGIN: u64 = 8_192;

pub(crate) const MEM_BIT: u16 = 1 << 0;
pub(crate) const STORE_BIT: u16 = 1 << 1;
pub(crate) const SIZE_SHIFT: u16 = 2; // two bits: 0 → 1 byte, 1 → 4, 2 → 8
pub(crate) const BRANCH_BIT: u16 = 1 << 4;
pub(crate) const KIND_SHIFT: u16 = 5; // three bits, `kind_code` order
pub(crate) const TAKEN_BIT: u16 = 1 << 8;

/// One dynamic instruction in 24 bytes: effective address, fetch PC,
/// branch target, and a flag word. The static instruction is implied
/// by the PC and the sequence number by the buffer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedInst {
    pub(crate) addr: u64,
    pub(crate) pc: u32,
    pub(crate) next_pc: u32,
    pub(crate) flags: u16,
}

/// The highest flag bit [`pack`] emits; records with bits above this
/// set did not come from this encoder (used by the trace-file loader to
/// reject corrupt records).
pub(crate) const FLAGS_MASK: u16 = (TAKEN_BIT << 1) - 1;

fn kind_code(kind: BranchKind) -> u16 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Indirect => 2,
        BranchKind::Call => 3,
        BranchKind::IndirectCall => 4,
        BranchKind::Return => 5,
    }
}

fn code_kind(code: u16) -> BranchKind {
    match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Indirect,
        3 => BranchKind::Call,
        4 => BranchKind::IndirectCall,
        _ => BranchKind::Return,
    }
}

fn pack(d: &DynInst) -> PackedInst {
    let mut flags = 0u16;
    let mut addr = 0u64;
    let mut next_pc = 0u32;
    if let Some(m) = d.mem {
        flags |= MEM_BIT;
        if m.is_store {
            flags |= STORE_BIT;
        }
        let code = match m.size {
            1 => 0u16,
            4 => 1,
            8 => 2,
            s => panic!("unsupported access size {s}"),
        };
        flags |= code << SIZE_SHIFT;
        addr = m.addr;
    }
    if let Some(b) = d.branch {
        flags |= BRANCH_BIT;
        flags |= kind_code(b.kind) << KIND_SHIFT;
        if b.taken {
            flags |= TAKEN_BIT;
        }
        next_pc = b.next_pc;
    }
    PackedInst { addr, pc: d.pc, next_pc, flags }
}

/// Checks a record's flag word against the static instruction at its
/// PC: the emulator emits a memory access exactly for loads and stores
/// (with the matching direction and width) and a branch outcome
/// exactly for control transfers (with the kind the opcode implies).
/// A record violating this did not come from the encoder, and
/// replaying it would hand the timing model impossible state — e.g. a
/// store with no address. Returns what disagreed, for the loader's
/// error message.
pub(crate) fn record_flags_match(
    inst: &clustered_isa::Inst,
    flags: u16,
) -> Result<(), &'static str> {
    use clustered_isa::OpClass;
    let class = inst.op_class();
    let is_memref = matches!(class, OpClass::Load | OpClass::Store);
    if (flags & MEM_BIT != 0) != is_memref {
        return Err(if is_memref {
            "a load/store instruction without a memory record"
        } else {
            "a memory record on a non-memref instruction"
        });
    }
    if is_memref {
        if (flags & STORE_BIT != 0) != (class == OpClass::Store) {
            return Err("record store direction disagrees with the instruction");
        }
        let width = match inst {
            clustered_isa::Inst::Load { width, .. } | clustered_isa::Inst::Store { width, .. } => {
                width.bytes() as u16
            }
            _ => 8, // FP loads/stores are doubles
        };
        let coded = match (flags >> SIZE_SHIFT) & 0b11 {
            0 => 1,
            1 => 4,
            _ => 8,
        };
        if coded != width {
            return Err("record access size disagrees with the instruction");
        }
    }
    if (flags & BRANCH_BIT != 0) != inst.is_control() {
        return Err(if inst.is_control() {
            "a control transfer without a branch record"
        } else {
            "a branch record on a non-control instruction"
        });
    }
    if inst.is_control() {
        let expected = kind_code(match inst {
            clustered_isa::Inst::Branch { .. } => BranchKind::Conditional,
            clustered_isa::Inst::Jump { .. } => BranchKind::Jump,
            clustered_isa::Inst::JumpReg { .. } => BranchKind::Indirect,
            clustered_isa::Inst::Call { .. } => BranchKind::Call,
            clustered_isa::Inst::CallReg { .. } => BranchKind::IndirectCall,
            _ => BranchKind::Return,
        });
        if (flags >> KIND_SHIFT) & 0b111 != expected {
            return Err("record branch kind disagrees with the instruction");
        }
    }
    Ok(())
}

fn unpack(seq: u64, p: PackedInst, program: &Program) -> DynInst {
    let mem = (p.flags & MEM_BIT != 0).then_some(MemAccess {
        addr: p.addr,
        size: match (p.flags >> SIZE_SHIFT) & 0b11 {
            0 => 1,
            1 => 4,
            _ => 8,
        },
        is_store: p.flags & STORE_BIT != 0,
    });
    let branch = (p.flags & BRANCH_BIT != 0).then(|| BranchOutcome {
        kind: code_kind((p.flags >> KIND_SHIFT) & 0b111),
        taken: p.flags & TAKEN_BIT != 0,
        next_pc: p.next_pc,
    });
    let inst = *program
        .fetch(p.pc)
        .unwrap_or_else(|| panic!("captured pc {} outside program text", p.pc));
    DynInst { seq, pc: p.pc, inst, mem, branch }
}

/// A workload's dynamic instruction stream, emulated once and held in
/// a compact contiguous buffer shared behind [`Arc`].
///
/// Cloning a `CapturedTrace` (or calling [`CapturedTrace::replay`])
/// only bumps reference counts, so one capture can feed every point of
/// an experiment grid — including points running concurrently on other
/// threads.
#[derive(Debug, Clone)]
pub struct CapturedTrace {
    pub(crate) name: String,
    pub(crate) program: Arc<Program>,
    pub(crate) records: Arc<[PackedInst]>,
    pub(crate) ended_at_halt: bool,
    /// Lazily built pre-decoded form, shared by every clone of this
    /// capture: a sweep's worth of points compiles the trace once.
    pub(crate) compiled: Arc<OnceLock<CompiledTrace>>,
}

impl CapturedTrace {
    /// Emulates `workload` from its initial state, capturing up to
    /// `max_records` dynamic instructions (fewer if the program
    /// halts first — see [`CapturedTrace::ended_at_halt`]).
    ///
    /// # Panics
    ///
    /// Panics if the workload faults during emulation; workload
    /// kernels are part of the program, not user input.
    pub fn capture(workload: &Workload, max_records: u64) -> CapturedTrace {
        // Pre-size for the requested window: record counts are known up
        // front, so growth-by-doubling only wastes copies. The cap keeps
        // a huge `max_records` request on a program that halts early
        // from reserving absurd memory before the first record lands.
        const PREALLOC_CAP: usize = 1 << 22; // 4 Mi records = 96 MiB
        let mut records: Vec<PackedInst> =
            Vec::with_capacity((max_records.min(PREALLOC_CAP as u64)) as usize);
        let mut trace = workload.trace();
        let mut ended_at_halt = false;
        while (records.len() as u64) < max_records {
            match trace.next() {
                Some(Ok(d)) => {
                    debug_assert_eq!(d.seq, records.len() as u64);
                    records.push(pack(&d));
                }
                Some(Err(e)) => {
                    panic!("workload `{}` faulted during capture: {e}", workload.name())
                }
                None => {
                    ended_at_halt = true;
                    break;
                }
            }
        }
        CapturedTrace {
            name: workload.name().to_string(),
            program: Arc::new(workload.program().clone()),
            records: records.into(),
            ended_at_halt,
            compiled: Arc::new(OnceLock::new()),
        }
    }

    /// Captures enough records for a `warmup + measure` simulation
    /// window plus [`CAPTURE_MARGIN`] slack for the fetch front end.
    pub fn for_window(workload: &Workload, warmup: u64, measure: u64) -> CapturedTrace {
        CapturedTrace::capture(workload, warmup + measure + CAPTURE_MARGIN)
    }

    /// The captured workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program the records were captured from. For traces loaded
    /// from a `.ctrace` file this is the program *text* only — the
    /// data segment and symbol table are not persisted, and replay
    /// needs neither (memory effects are in the records).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of captured dynamic instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the program halted before the requested record count —
    /// i.e. the capture covers the *complete* execution and a replay
    /// that drains it is legitimate rather than truncated.
    pub fn ended_at_halt(&self) -> bool {
        self.ended_at_halt
    }

    /// Size of the shared record buffer in bytes.
    pub fn buffer_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<PackedInst>()
    }

    /// FNV-1a 64-bit checksum over the captured record stream — the
    /// trace identity stamped into run provenance, so two artifacts can
    /// be compared knowing they simulated the same dynamic instructions.
    /// Covers exactly the record fields (`addr`, `pc`, `next_pc`,
    /// `flags`) in sequence order, serialized little-endian exactly as
    /// the `.ctrace` record section — the same bytes for the same
    /// capture regardless of host. Unlike the `.ctrace` whole-file
    /// checksum it excludes the header and program text, so it is
    /// stable across renames of the same dynamic stream.
    pub fn checksum(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for r in self.records.iter() {
            eat(&r.addr.to_le_bytes());
            eat(&r.pc.to_le_bytes());
            eat(&r.next_pc.to_le_bytes());
            eat(&r.flags.to_le_bytes());
        }
        hash
    }

    /// A fresh iterator over the captured stream, starting at the
    /// first record. Cheap: clones two `Arc`s.
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            program: Arc::clone(&self.program),
            records: Arc::clone(&self.records),
            pos: 0,
        }
    }

    /// The pre-decoded form of this capture (see
    /// [`CompiledTrace`]), built on first call
    /// and memoized: every clone of this capture — including clones on
    /// other threads — shares the one compiled table, so an experiment
    /// grid pays the compile cost once per workload. The returned
    /// handle itself is cheap to clone (three `Arc`s).
    pub fn compile(&self) -> CompiledTrace {
        self.compiled.get_or_init(|| CompiledTrace::build(self)).clone()
    }
}

/// A cheap cloneable iterator replaying a [`CapturedTrace`] as
/// [`DynInst`] records bit-identical to live emulation.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    program: Arc<Program>,
    records: Arc<[PackedInst]>,
    pos: usize,
}

impl TraceReplay {
    /// Records remaining to be replayed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }

    /// Repositions the replay at absolute record index `pos` (clamped
    /// to the end of the buffer): pure position arithmetic, no
    /// per-record unpacking. The next record returned is `pos`'s.
    pub fn skip_to(&mut self, pos: usize) {
        self.pos = pos.min(self.records.len());
    }
}

impl Iterator for TraceReplay {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let p = *self.records.get(self.pos)?;
        let d = unpack(self.pos as u64, p, &self.program);
        self.pos += 1;
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }

    /// O(1): skipping is position arithmetic — only the returned
    /// record is unpacked, not the `n` skipped ones.
    fn nth(&mut self, n: usize) -> Option<DynInst> {
        self.pos = self.pos.saturating_add(n).min(self.records.len());
        self.next()
    }
}

impl ExactSizeIterator for TraceReplay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, PaperProfile, WorkloadClass};

    fn profile() -> PaperProfile {
        PaperProfile {
            class: WorkloadClass::SpecInt,
            base_ipc: 0.0,
            mispredict_interval: 0,
            min_stable_interval: 0,
            instability_at_10k: 0.0,
            distant_ilp: false,
        }
    }

    /// The checksum is a function of the dynamic stream alone: stable
    /// across re-captures, distinct across workloads and window sizes.
    #[test]
    fn checksum_identifies_the_dynamic_stream() {
        let w = by_name("gzip").unwrap();
        let a = CapturedTrace::capture(&w, 2_000);
        let b = CapturedTrace::capture(&w, 2_000);
        assert_eq!(a.checksum(), b.checksum(), "same capture, same checksum");
        let shorter = CapturedTrace::capture(&w, 1_999);
        assert_ne!(a.checksum(), shorter.checksum(), "window size changes the stream");
        let other = CapturedTrace::capture(&by_name("swim").unwrap(), 2_000);
        assert_ne!(a.checksum(), other.checksum(), "different workload, different stream");
        assert_eq!(CapturedTrace::capture(&w, 0).checksum(), 0xcbf2_9ce4_8422_2325);
    }

    /// The core guarantee: replayed records equal live emulation
    /// bit-for-bit, covering ALU, memory, and branch records.
    #[test]
    fn replay_is_bit_identical_to_live_emulation() {
        for name in ["gzip", "swim", "crafty"] {
            let w = by_name(name).unwrap();
            let captured = CapturedTrace::capture(&w, 5_000);
            assert_eq!(captured.len(), 5_000);
            assert!(!captured.ended_at_halt());
            let live: Vec<DynInst> = w.trace().take(5_000).map(Result::unwrap).collect();
            let replayed: Vec<DynInst> = captured.replay().collect();
            assert_eq!(live, replayed, "{name}: replay diverged from live emulation");
        }
    }

    #[test]
    fn replays_are_independent_and_cheap() {
        let w = by_name("gzip").unwrap();
        let captured = CapturedTrace::capture(&w, 1_000);
        let mut a = captured.replay();
        let mut b = captured.replay();
        a.nth(499);
        assert_eq!(a.remaining(), 500);
        assert_eq!(b.remaining(), 1_000);
        assert_eq!(b.next().unwrap().seq, 0, "clone must start at the beginning");
        assert_eq!(captured.buffer_bytes(), 1_000 * 24);
    }

    /// `nth`/`skip_to` are position arithmetic, matching the default
    /// advance-by-`next` semantics exactly — including past the end.
    #[test]
    fn nth_and_skip_to_match_sequential_replay() {
        let w = by_name("gzip").unwrap();
        let captured = CapturedTrace::capture(&w, 1_000);
        let mut fast = captured.replay();
        let mut slow = captured.replay();
        assert_eq!(fast.nth(123), (0..124).map(|_| slow.next()).last().unwrap());
        assert_eq!(fast.remaining(), slow.remaining());
        let mut r = captured.replay();
        r.skip_to(997);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.next().unwrap().seq, 997);
        r.skip_to(usize::MAX); // clamped to the end
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.next(), None);
        assert_eq!(captured.replay().nth(1_000), None, "nth past the end");
        assert_eq!(captured.replay().nth(999).unwrap().seq, 999);
    }

    #[test]
    fn halting_program_captures_completely() {
        let w = Workload::from_source(
            "tiny",
            "halts after a short loop",
            profile(),
            "li r1, 4\nloop: addi r1, r1, -1\n bnez r1, loop\n halt",
            Vec::new(),
        );
        let captured = CapturedTrace::capture(&w, 1_000);
        assert!(captured.ended_at_halt());
        assert_eq!(captured.len(), 9); // li + 4 × (addi + bnez)
        let live: Vec<DynInst> = w.trace().map(Result::unwrap).collect();
        let replayed: Vec<DynInst> = captured.replay().collect();
        assert_eq!(live, replayed);
    }

    #[test]
    fn for_window_adds_margin() {
        let w = by_name("gzip").unwrap();
        let captured = CapturedTrace::for_window(&w, 100, 400);
        assert_eq!(captured.len() as u64, 500 + CAPTURE_MARGIN);
    }
}
