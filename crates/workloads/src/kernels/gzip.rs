//! `gzip` analogue: LZ77-style hash matching over input whose
//! compressibility alternates in long regions.
//!
//! Profile targeted (paper §4.2): prolonged program *phases* — in
//! compressible regions long matches are found and the match/checksum
//! loops expose distant ILP; in incompressible regions the kernel
//! degenerates into a serial hash-probe-miss loop with frequent
//! data-dependent mispredictions. The paper highlights `gzip` as the
//! program where a dynamic scheme beats even the best static
//! configuration, because different phases want different cluster
//! counts.

use super::{REGION_A, REGION_TAB};
use crate::data::{random_bytes, repetitive_bytes, rng_for};

/// Total input size in bytes.
const INPUT: usize = 256 * 1024;
/// Length of each alternating compressible/incompressible region.
const REGION: usize = 16 * 1024;
/// Hash-head table entries.
const HEADS: usize = 4096;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("gzip");
    let mut input = Vec::with_capacity(INPUT);
    let mut compressible = true;
    while input.len() < INPUT {
        if compressible {
            input.extend(repetitive_bytes(&mut rng, REGION, 24, 400));
        } else {
            input.extend(random_bytes(&mut rng, REGION));
        }
        compressible = !compressible;
    }
    let segments = vec![(REGION_A, input), (REGION_TAB, vec![0u8; HEADS * 8])];
    let source = format!(
        r"
# gzip analogue: hash-head LZ match with checksum over matched bytes.
start:
    li r9, {heads}
outer:
    li r1, 0                # position in input
gz_loop:
    li r2, {input}
    add r3, r2, r1          # &input[pos]
    lbu r4, 0(r3)           # hash 3 bytes
    lbu r5, 1(r3)
    lbu r6, 2(r3)
    slli r5, r5, 5
    slli r6, r6, 10
    xor r4, r4, r5
    xor r4, r4, r6
    andi r4, r4, {hmask}
    slli r4, r4, 3
    add r4, r9, r4          # &head[h]
    ld r7, 0(r4)            # previous position + 1 (0 = empty)
    addi r8, r1, 1
    sd r8, 0(r4)
    beqz r7, gz_nomatch
    addi r7, r7, -1
    add r10, r2, r7         # candidate
    li r11, 0               # match length
cmp_loop:
    add r12, r10, r11
    lbu r13, 0(r12)
    add r12, r3, r11
    lbu r14, 0(r12)
    bne r13, r14, cmp_done
    addi r11, r11, 1
    slti r12, r11, 32
    bnez r12, cmp_loop
cmp_done:
    slti r12, r11, 3
    bnez r12, gz_nomatch
    # a match: checksum the matched bytes 4 at a time (independent chains)
    mov r12, r10
    srli r15, r11, 2
    beqz r15, gz_adv
crc_loop:
    lbu r13, 0(r12)
    add r20, r20, r13
    lbu r13, 1(r12)
    add r21, r21, r13
    lbu r13, 2(r12)
    add r22, r22, r13
    lbu r13, 3(r12)
    add r23, r23, r13
    addi r12, r12, 4
    addi r15, r15, -1
    bnez r15, crc_loop
gz_adv:
    add r1, r1, r11         # advance past the match
    addi r16, r16, 1        # match census
    j gz_next
gz_nomatch:
    addi r1, r1, 1
    addi r17, r17, 1        # literal census
gz_next:
    li r12, {limit}
    blt r1, r12, gz_loop
    j outer
",
        input = REGION_A,
        heads = REGION_TAB,
        hmask = HEADS - 1,
        limit = INPUT - 64,
    );
    (source, segments)
}
