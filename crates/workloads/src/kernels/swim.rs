//! `swim` analogue: streaming shallow-water-style stencil.
//!
//! Profile targeted (paper Table 3): memory-bound FP code, IPC 1.67,
//! a branch misprediction only every ~22600 instructions, abundant
//! distant ILP (independent loop iterations), working set well beyond
//! the L1.

use super::{REGION_A, REGION_B, REGION_C};
use crate::data::{f64_block, rng_for};

/// Doubles per array (512 KB each — three arrays stream through L2).
const N: usize = 65_536;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("swim");
    let segments = vec![
        (REGION_A, f64_block(&mut rng, N, -1.0, 1.0)),
        (REGION_B, f64_block(&mut rng, N, -1.0, 1.0)),
        (REGION_C, vec![0u8; N * 8]),
    ];
    let iters = N - 2;
    let source = format!(
        r"
# swim analogue: two streaming stencil passes per outer iteration.
start:
    fli f0, 0.25            # stencil weight
    fli f10, 0.5            # velocity weight
    fli f12, 0.0009765625   # relaxation (2^-10)
outer:
    li r1, {u}              # U
    li r2, {v}              # V
    li r3, {p}              # P (output)
    li r4, {iters}
pass1:                      # P[i+1] = 0.25*(U[i]+U[i+2]-2U[i+1]) + 0.5*(V[i]+V[i+1])
    fld f1, 0(r1)
    fld f2, 8(r1)
    fld f3, 16(r1)
    fld f4, 0(r2)
    fld f5, 8(r2)
    fadd f6, f1, f3
    fsub f6, f6, f2
    fsub f6, f6, f2
    fmul f7, f6, f0
    fadd f8, f4, f5
    fmul f9, f8, f10
    fadd f11, f7, f9
    fsd f11, 8(r3)
    addi r1, r1, 8
    addi r2, r2, 8
    addi r3, r3, 8
    addi r4, r4, -1
    bnez r4, pass1
    li r1, {u}
    li r3, {p}
    li r4, {n}
pass2:                      # U[i] += eps * P[i]
    fld f1, 0(r1)
    fld f2, 0(r3)
    fmul f3, f2, f12
    fadd f4, f1, f3
    fsd f4, 0(r1)
    addi r1, r1, 8
    addi r3, r3, 8
    addi r4, r4, -1
    bnez r4, pass2
    j outer
",
        u = REGION_A,
        v = REGION_B,
        p = REGION_C,
        iters = iters,
        n = N,
    );
    (source, segments)
}
