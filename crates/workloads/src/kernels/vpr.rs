//! `vpr` analogue: annealing-style random cell swaps over a placement
//! grid.
//!
//! Profile targeted (paper Table 3): the lowest-IPC code in the suite
//! (1.20) — a serial LCG dependence chain, scattered loads over a large
//! grid, and a biased but unpredictable accept/reject branch
//! (misprediction interval ~171).

use super::REGION_A;
use crate::data::{rng_for, u64_block};

/// Cells in the placement grid (64 KB: twice the L1).
const CELLS: usize = 8_192;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("vpr");
    let segments = vec![(REGION_A, u64_block(&mut rng, CELLS, 1 << 20))];
    let source = format!(
        r"
# vpr analogue: pick two random cells, evaluate, maybe swap.
start:
    li r21, 2862933555777941757     # LCG state
    li r26, {cells_base}
outer:
    li r20, 8192                    # moves per pass
move:
    li r22, 6364136223846793005
    mul r21, r21, r22
    li r22, 1442695040888963407
    add r21, r21, r22
    srli r23, r21, 24
    andi r1, r23, {cmask}           # cell index 1
    srli r23, r23, 20
    andi r2, r23, {cmask}           # cell index 2
    slli r1, r1, 3
    slli r2, r2, 3
    add r1, r1, r26
    add r2, r2, r26
    ld r3, 0(r1)                    # cost fields
    ld r4, 0(r2)
    xor r21, r21, r4                # placement state feeds the next move
    xor r5, r3, r4                  # crude cost delta
    andi r5, r5, 255
    slti r6, r5, 218                # accept ~85% of moves
    beqz r6, reject
    sd r4, 0(r1)                    # swap the cells
    sd r3, 0(r2)
    addi r17, r17, 1                # accept census
    j next
reject:
    addi r18, r18, 1                # reject census
next:
    addi r20, r20, -1
    bnez r20, move
    j outer
",
        cells_base = REGION_A,
        cmask = CELLS - 1,
    );
    (source, segments)
}
