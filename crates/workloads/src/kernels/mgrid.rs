//! `mgrid` analogue: 7-point stencil relaxation over a 3-D grid.
//!
//! Profile targeted (paper Table 3): loop-based FP code, IPC 2.28,
//! extremely predictable control (one misprediction per ~9000
//! instructions), distant ILP across independent grid points.

use super::{REGION_A, REGION_B};
use crate::data::{f64_block, rng_for};

/// Grid edge (32³ doubles = 256 KB per array).
const NX: usize = 32;
const N: usize = NX * NX * NX;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("mgrid");
    let segments = vec![
        (REGION_A, f64_block(&mut rng, N, -1.0, 1.0)),
        (REGION_B, vec![0u8; N * 8]),
    ];
    // Interior points of the flattened grid, skipping one plane + one
    // row + one element at each end.
    let margin = NX * NX + NX + 1;
    let iters = N - 2 * margin;
    // Two ping-pong Jacobi sweeps per outer pass (A→B then B→A): the
    // sweeps are metric-identical, so — like the original mgrid, which
    // the paper's Table 4 reports as 0% unstable — the program has no
    // detectable coarse phase structure, while iterations stay
    // independent (distant ILP).
    let sweep = |label: &str, src: u64, dst: u64| {
        format!(
            r"
    li r1, {src}
    li r2, {dst}
    addi r1, r1, {skip}
    addi r2, r2, {skip}
    li r4, {iters}
{label}:
    fld f1, -8(r1)
    fld f2, 8(r1)
    fld f3, -{row}(r1)
    fld f4, {row}(r1)
    fld f5, -{plane}(r1)
    fld f6, {plane}(r1)
    fld f7, 0(r1)
    fadd f8, f1, f2
    fadd f9, f3, f4
    fadd f10, f5, f6
    fadd f8, f8, f9
    fadd f8, f8, f10
    fmul f11, f7, f12
    fsub f8, f8, f11
    fmul f8, f8, f13
    fadd f8, f8, f7
    fsd f8, 0(r2)
    addi r1, r1, 8
    addi r2, r2, 8
    addi r4, r4, -1
    bnez r4, {label}
",
            skip = margin * 8,
            row = NX * 8,
            plane = NX * NX * 8,
            iters = iters,
        )
    };
    let source = format!(
        "# mgrid analogue: ping-pong 7-point Jacobi relaxation.\n\
         start:\n    fli f12, 6.0\n    fli f13, 0.166015625\nouter:\n{}{}    j outer\n",
        sweep("relax_ab", REGION_A, REGION_B),
        sweep("relax_ba", REGION_B, REGION_A),
    );
    (source, segments)
}
