//! The nine benchmark-analogue kernels.
//!
//! Each kernel module exposes `build() -> (String, Vec<(u64, Vec<u8>)>)`:
//! the assembly source of an *endless* kernel loop (the simulator, not
//! the program, decides how many instructions to run) plus the memory
//! segments holding its deterministically generated input data.
//!
//! Large inputs live at fixed virtual bases rather than in `.data` so
//! that hundreds of kilobytes of input need not round-trip through the
//! assembler.

pub(crate) mod cjpeg;
pub(crate) mod crafty;
pub(crate) mod djpeg;
pub(crate) mod galgel;
pub(crate) mod gzip;
pub(crate) mod mgrid;
pub(crate) mod parser;
pub(crate) mod swim;
pub(crate) mod vpr;

/// Base of the first large input region (per kernel: array A / input).
pub(crate) const REGION_A: u64 = 0x2000_0000;
/// Base of the second large input region.
pub(crate) const REGION_B: u64 = 0x2100_0000;
/// Base of the third large input region.
pub(crate) const REGION_C: u64 = 0x2200_0000;
/// Base of lookup-table regions.
pub(crate) const REGION_TAB: u64 = 0x2300_0000;
