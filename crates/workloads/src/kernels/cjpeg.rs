//! `cjpeg` analogue: forward-DCT-style butterflies plus quantisation
//! with per-coefficient zero tests.
//!
//! Profile targeted (paper Table 3): medium IPC (2.06) and a fairly
//! short misprediction interval (~82) — the quantiser's "is this
//! coefficient zero?" branch depends on the data and fires for most
//! coefficients.

use super::{REGION_A, REGION_B, REGION_C};
use crate::data::{f64_block, rng_for};

/// Number of 8×8 blocks (512 KB of coefficients).
const BLOCKS: usize = 1024;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("cjpeg");
    let samples = f64_block(&mut rng, BLOCKS * 64, -4.0, 4.0);
    // Reciprocal quantisation table: scaling chosen so roughly 60% of
    // quantised coefficients truncate to zero.
    let qtable = f64_block(&mut rng, 64, 0.05, 0.4);
    let segments = vec![
        (REGION_A, samples),
        (REGION_B, qtable),
        (REGION_C, vec![0u8; BLOCKS * 64 * 4]),
    ];
    let source = format!(
        r"
# cjpeg analogue: 4-point butterfly sweep then quantise with zero tests.
start:
    fli f20, 0.70710678
    fli f21, 0.5            # keeps values bounded across outer passes
outer:
    li r1, {blocks_base}
    li r14, {out_base}
    li r4, {blocks}
block:
    li r7, 16               # 16 butterfly groups of 4 doubles
    mov r10, r1
fdct:
    fld f1, 0(r10)
    fld f2, 8(r10)
    fld f3, 16(r10)
    fld f4, 24(r10)
    fadd f5, f1, f4
    fsub f6, f1, f4
    fadd f7, f2, f3
    fsub f8, f2, f3
    fadd f9, f5, f7
    fsub f10, f5, f7
    fmul f9, f9, f21
    fmul f10, f10, f21
    fmul f11, f6, f20
    fmul f12, f8, f20
    fadd f11, f11, f12
    fmul f11, f11, f21
    fsd f9, 0(r10)
    fsd f10, 8(r10)
    fsd f11, 16(r10)
    fsd f6, 24(r10)
    addi r10, r10, 32
    addi r7, r7, -1
    bnez r7, fdct
    # quantise the 64 coefficients of the block
    mov r10, r1
    li r11, {qtable}
    li r15, 64
quant:
    fld f1, 0(r10)
    fld f2, 0(r11)
    fmul f3, f1, f2
    fcvti r12, f3
    beqz r12, qzero         # data-dependent: coefficient quantised away
    addi r13, r13, 1        # nonzero census
    sw r12, 0(r14)
qzero:
    addi r10, r10, 8
    addi r11, r11, 8
    addi r14, r14, 4
    addi r15, r15, -1
    bnez r15, quant
    addi r1, r1, 512
    addi r4, r4, -1
    bnez r4, block
    j outer
",
        blocks_base = REGION_A,
        qtable = REGION_B,
        out_base = REGION_C,
        blocks = BLOCKS,
    );
    (source, segments)
}
