//! `parser` analogue: hash-bucket dictionary lookups over linked lists.
//!
//! Profile targeted (paper Table 3): the lowest-ILP integer code in the
//! suite (IPC 1.42) — every lookup is a serial pointer chase whose exit
//! branch depends on where in the chain the key sits (uniformly random
//! depth 1–4), giving a short misprediction interval (~88).

use super::{REGION_A, REGION_TAB};
use crate::data::rng_for;

/// Number of hash buckets.
const BUCKETS: usize = 512;
/// Chain length per bucket.
const DEPTH: usize = 4;
/// Bytes per node: key, value, next.
const NODE: usize = 24;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("parser");
    let total = BUCKETS * DEPTH;
    // Scatter the nodes of every chain across the arena so pointer
    // chasing has no spatial locality.
    let mut slots: Vec<usize> = (0..total).collect();
    rng.shuffle(&mut slots);
    let mut arena = vec![0u8; total * NODE];
    let mut heads = vec![0u8; BUCKETS * 8];
    for bucket in 0..BUCKETS {
        let mut next_addr = 0u64; // chain terminator
        for link in (0..DEPTH).rev() {
            let slot = slots[bucket * DEPTH + link];
            let addr = REGION_A + (slot * NODE) as u64;
            let key = (bucket + link * BUCKETS) as u64;
            let value = (bucket * 7 + link) as u64;
            let off = slot * NODE;
            arena[off..off + 8].copy_from_slice(&key.to_le_bytes());
            arena[off + 8..off + 16].copy_from_slice(&value.to_le_bytes());
            arena[off + 16..off + 24].copy_from_slice(&next_addr.to_le_bytes());
            next_addr = addr;
        }
        heads[bucket * 8..bucket * 8 + 8].copy_from_slice(&next_addr.to_le_bytes());
    }
    let segments = vec![(REGION_A, arena), (REGION_TAB, heads)];
    let source = format!(
        r"
# parser analogue: LCG key stream -> bucket -> linked-list search.
start:
    li r21, 88172645463325252   # LCG state
    li r26, {heads}
outer:
    li r20, 4096                # lookups per pass
lookup:
    li r22, 6364136223846793005
    mul r21, r21, r22
    li r22, 1442695040888963407
    add r21, r21, r22
    srli r23, r21, 33
    andi r24, r23, {bmask}      # bucket index
    slli r25, r24, 3
    add r25, r25, r26
    ld r1, 0(r25)               # chain head
    srli r27, r23, 10
    andi r27, r27, {dmask}      # random chain depth...
    srli r29, r23, 12
    andi r29, r29, {dmask}
    and r27, r27, r29           # ...skewed toward shallow entries
    srli r29, r23, 14
    andi r29, r29, {dmask}
    and r27, r27, r29
    slli r27, r27, {bshift}
    add r28, r24, r27           # target key = bucket + depth*BUCKETS
walk:
    ld r2, 0(r1)                # node key
    beq r2, r28, found
    ld r1, 16(r1)               # next node
    bnez r1, walk
    addi r18, r18, 1            # miss census
    j lk_done
found:
    ld r3, 8(r1)                # node value
    add r19, r19, r3
lk_done:
    addi r20, r20, -1
    bnez r20, lookup
    j outer
",
        heads = REGION_TAB,
        bmask = BUCKETS - 1,
        bshift = BUCKETS.trailing_zeros(),
        dmask = DEPTH - 1,
    );
    (source, segments)
}
