//! `crafty` analogue: bitboard manipulation with data-dependent loops
//! and evaluation subroutines.
//!
//! Profile targeted (paper Table 3): branchy integer code (IPC 1.85,
//! misprediction interval ~118) with heavy call/return traffic — the
//! paper observed its fine-grained scheme reconfigure most often on
//! crafty (1.5M changes).

use super::REGION_TAB;
use crate::data::{rng_for, u64_block};

/// Entries in the piece-value lookup table.
const TABLE: usize = 64;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("crafty");
    let segments = vec![(REGION_TAB, u64_block(&mut rng, TABLE, 1024))];
    let source = format!(
        r"
# crafty analogue: generate positions, pop bits, score via table.
start:
    li r21, 1378784879315654393     # LCG state
    li r26, {table}
outer:
    li r20, 8192                    # positions per pass
pos:
    li r22, 6364136223846793005
    mul r21, r21, r22
    li r22, 1442695040888963407
    add r21, r21, r22
    mov r1, r21                     # board
    mul r21, r21, r22
    add r21, r21, r22
    and r3, r1, r21                 # attack mask
    li r2, 65535
    and r3, r3, r2                  # confine popcount to 16 bits
    mov r14, r3                     # popcnt clobbers its argument
    call popcnt
    add r19, r19, r4                # mobility score
    sub r5, r0, r14                 # isolate lowest set bit
    and r5, r5, r14
    li r6, 285870213051386505
    mul r6, r5, r6
    srli r6, r6, 58
    slli r6, r6, 3
    add r7, r26, r6
    ld r8, 0(r7)                    # piece value
    andi r9, r8, 1
    beqz r9, even_val               # data-dependent scoring branch
    add r19, r19, r8
even_val:
    andi r9, r1, 7
    bnez r9, common                 # ~1/8 of positions get deep eval
    call deep_eval
common:
    addi r20, r20, -1
    bnez r20, pos
    j outer

# Fixed-trip popcount over 16 bits (predictable loop exit).
# Arg: r3 (clobbered). Result: r4.
popcnt:
    li r4, 0
    li r6, 16
pc_loop:
    andi r5, r3, 1
    add r4, r4, r5
    srli r3, r3, 1
    addi r6, r6, -1
    bnez r6, pc_loop
    ret

# Deep evaluation: fold the board through the value table.
deep_eval:
    mov r10, r1
    li r11, 8
de_loop:
    andi r12, r10, 63
    slli r12, r12, 3
    add r12, r12, r26
    ld r13, 0(r12)
    add r19, r19, r13
    srli r10, r10, 8
    addi r11, r11, -1
    bnez r11, de_loop
    ret
",
        table = REGION_TAB,
    );
    (source, segments)
}
