//! `galgel` analogue: dense matrix–vector products with data-dependent
//! counting branches.
//!
//! Profile targeted (paper Table 3): high-IPC FP code (3.43) that still
//! takes branch mispredictions fairly often (interval ~88) because of
//! value-dependent decisions inside the numeric loops.

use super::{REGION_A, REGION_B, REGION_C};
use crate::data::{f64_block, rng_for};

/// Matrix dimension (128×128 doubles = 128 KB: larger than the L1,
/// resident in the L2 after the first pass).
const DIM: usize = 128;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("galgel");
    // Skewed range: ~10% of the entries are negative, so the sign test
    // in the inner loop is a genuinely data-dependent branch.
    let segments = vec![
        (REGION_A, f64_block(&mut rng, DIM * DIM, -0.12, 1.0)),
        (REGION_B, f64_block(&mut rng, DIM, -1.0, 1.0)),
        (REGION_C, vec![0u8; DIM * 8]),
    ];
    let source = format!(
        r"
# galgel analogue: y = A*x with 4-way unrolled accumulation.
start:
    fli f16, 0.0
outer:
    li r1, {a}              # A walker
    li r9, {y}              # y walker
    li r5, {dim}            # rows left
row:
    li r2, {x}
    li r4, {chunks}         # DIM/4 unrolled chunks
    fli f1, 0.0
    fli f2, 0.0
    fli f3, 0.0
    fli f4, 0.0
inner:
    fld f5, 0(r1)
    fld f6, 0(r2)
    fmul f7, f5, f6
    fadd f1, f1, f7
    fld f8, 8(r1)
    fld f9, 8(r2)
    fmul f10, f8, f9
    fadd f2, f2, f10
    fld f11, 16(r1)
    fld f12, 16(r2)
    fmul f13, f11, f12
    fadd f3, f3, f13
    fld f14, 24(r1)
    fld f15, 24(r2)
    fmul f7, f14, f15
    fadd f4, f4, f7
    flt r6, f5, f16         # data-dependent: negative entry?
    beqz r6, pos
    addi r8, r8, 1          # negative-entry census
pos:
    addi r1, r1, 32
    addi r2, r2, 32
    addi r4, r4, -1
    bnez r4, inner
    fadd f1, f1, f2
    fadd f3, f3, f4
    fadd f1, f1, f3
    fsd f1, 0(r9)
    flt r6, f16, f1         # positive row sum?
    beqz r6, nonpos
    addi r7, r7, 1
nonpos:
    addi r9, r9, 8
    addi r5, r5, -1
    bnez r5, row
    j outer
",
        a = REGION_A,
        x = REGION_B,
        y = REGION_C,
        dim = DIM,
        chunks = DIM / 4,
    );
    (source, segments)
}
