//! `djpeg` analogue: blocked inverse-DCT-style butterflies.
//!
//! Profile targeted (paper Table 3): the highest-IPC code in the suite
//! (4.07) with moderate misprediction interval (~249). Every 8×8 block
//! is independent, so a large instruction window exposes *distant* ILP
//! across blocks — this kernel is the strongest advocate for 16
//! clusters in the suite.

use super::{REGION_A, REGION_TAB};
use crate::data::{f64_block, rng_for};

/// Number of 8×8 blocks (each 64 doubles; 1024 blocks = 512 KB).
const BLOCKS: usize = 1024;

pub(crate) fn build() -> (String, Vec<(u64, Vec<u8>)>) {
    let mut rng = rng_for("djpeg");
    let coeffs = f64_block(&mut rng, BLOCKS * 64, -128.0, 128.0);
    // ~10% of blocks are flagged "DC-only" and skipped, a data-dependent
    // decision the branch predictor cannot fully learn.
    let flags: Vec<u8> = (0..BLOCKS).map(|_| u8::from(rng.below(10) == 0)).collect();
    let segments = vec![(REGION_A, coeffs), (REGION_TAB, flags)];
    let source = format!(
        r"
# djpeg analogue: per-row 1-D IDCT butterflies with clamping.
start:
    fli f20, 0.70710678     # sqrt(2)/2
    fli f21, 0.38268343
    fli f22, 0.92387953
    fli f23, 0.54119610
    fli f30, 0.0            # clamp low
    fli f31, 255.0          # clamp high
outer:
    li r1, {blocks_base}    # block walker
    li r5, {flags_base}     # flag walker
    li r4, {blocks}
block:
    lbu r6, 0(r5)
    bnez r6, skipblk        # DC-only block: nothing to do
    li r7, 8                # rows in the block
    mov r10, r1
rowloop:
    call idct_row
    addi r10, r10, 64
    addi r7, r7, -1
    bnez r7, rowloop
skipblk:
    addi r1, r1, 512
    addi r5, r5, 1
    addi r4, r4, -1
    bnez r4, block
    j outer

# One row of 8 coefficients, transformed in place. Arg: r10 = row base.
idct_row:
    fld f1, 0(r10)
    fld f2, 8(r10)
    fld f3, 16(r10)
    fld f4, 24(r10)
    fld f5, 32(r10)
    fld f6, 40(r10)
    fld f7, 48(r10)
    fld f8, 56(r10)
    fadd f9, f1, f5         # even part
    fsub f10, f1, f5
    fmul f11, f3, f22
    fmul f12, f7, f21
    fsub f13, f11, f12
    fmul f11, f3, f21
    fmul f12, f7, f22
    fadd f14, f11, f12
    fadd f15, f9, f14       # stage outputs
    fsub f16, f9, f14
    fadd f17, f10, f13
    fsub f18, f10, f13
    fadd f9, f2, f8         # odd part
    fsub f10, f2, f8
    fadd f11, f4, f6
    fsub f12, f4, f6
    fmul f10, f10, f20
    fmul f12, f12, f23
    fadd f13, f9, f11
    fsub f14, f9, f11
    fadd f19, f10, f12
    fsub f24, f10, f12
    fadd f1, f15, f13       # recombine + clamp + store
    fmax f1, f1, f30
    fmin f1, f1, f31
    fsd f1, 0(r10)
    fadd f2, f17, f19
    fmax f2, f2, f30
    fmin f2, f2, f31
    fsd f2, 8(r10)
    fadd f3, f18, f24
    fmax f3, f3, f30
    fmin f3, f3, f31
    fsd f3, 16(r10)
    fadd f4, f16, f14
    fmax f4, f4, f30
    fmin f4, f4, f31
    fsd f4, 24(r10)
    fsub f5, f16, f14
    fmax f5, f5, f30
    fmin f5, f5, f31
    fsd f5, 32(r10)
    fsub f6, f18, f24
    fmax f6, f6, f30
    fmin f6, f6, f31
    fsd f6, 40(r10)
    fsub f7, f17, f19
    fmax f7, f7, f30
    fmin f7, f7, f31
    fsd f7, 48(r10)
    fsub f8, f15, f13
    fmax f8, f8, f30
    fmin f8, f8, f31
    fsd f8, 56(r10)
    ret
",
        blocks_base = REGION_A,
        flags_base = REGION_TAB,
        blocks = BLOCKS,
    );
    (source, segments)
}
