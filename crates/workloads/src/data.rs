//! Deterministic generation of workload data segments.
//!
//! Uses a small hand-rolled xoshiro256++ generator rather than the
//! `rand` crate so the workspace builds with no external dependencies
//! (the build environment resolves no registry crates). Workload bytes
//! are a fixed function of the workload name across platforms and
//! toolchains.

/// The fixed seed all workloads derive their data from, so every run of
/// every experiment sees byte-identical inputs.
pub const WORKLOAD_SEED: u64 = 0x5eed_c1a5;

/// A small deterministic PRNG (xoshiro256++ seeded via splitmix64).
///
/// Not cryptographic — statistical quality is ample for synthesising
/// workload inputs, which is all this crate needs.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// A generator whose whole state is derived from `seed`.
    pub fn seeded(seed: u64) -> Rng {
        // splitmix64: guarantees a non-zero, well-mixed initial state
        // even for adversarial seeds (e.g. 0).
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform byte.
    pub fn next_byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform double in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Fisher–Yates shuffle of `xs`.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.index(i + 1));
        }
    }
}

/// A deterministic RNG for a given workload name, independent of the
/// order workloads are constructed in.
pub fn rng_for(name: &str) -> Rng {
    let mut h = WORKLOAD_SEED;
    for b in name.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    Rng::seeded(h)
}

/// `n` doubles uniform in `[lo, hi)`, as little-endian bytes.
pub fn f64_block(rng: &mut Rng, n: usize, lo: f64, hi: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let v = rng.range_f64(lo, hi);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// `n` u64 values uniform in `[0, bound)`, as little-endian bytes.
pub fn u64_block(rng: &mut Rng, n: usize, bound: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let v = rng.below(bound);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// `n` random bytes (incompressible input).
pub fn random_bytes(rng: &mut Rng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.next_byte()).collect()
}

/// `n` bytes built by repeating a short random pattern with occasional
/// substitutions — highly compressible input with long LZ matches.
pub fn repetitive_bytes(rng: &mut Rng, n: usize, period: usize, noise_one_in: usize) -> Vec<u8> {
    let pattern: Vec<u8> = (0..period).map(|_| rng.next_byte()).collect();
    (0..n)
        .map(|i| {
            if noise_one_in > 0 && rng.below(noise_one_in as u64) == 0 {
                rng.next_byte()
            } else {
                pattern[i % period]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a = rng_for("gzip").next_u64();
        let b = rng_for("gzip").next_u64();
        let c = rng_for("swim").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_block_in_range() {
        let mut rng = rng_for("t");
        let bytes = f64_block(&mut rng, 100, -1.0, 1.0);
        assert_eq!(bytes.len(), 800);
        for chunk in bytes.chunks(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn u64_block_bounded() {
        let mut rng = rng_for("t");
        let bytes = u64_block(&mut rng, 50, 10);
        for chunk in bytes.chunks(8) {
            let v = u64::from_le_bytes(chunk.try_into().unwrap());
            assert!(v < 10);
        }
    }

    #[test]
    fn repetitive_bytes_mostly_periodic() {
        let mut rng = rng_for("t");
        let bytes = repetitive_bytes(&mut rng, 1000, 16, 100);
        let matches = bytes.iter().enumerate().filter(|&(i, &b)| b == bytes[i % 16]).count();
        assert!(matches > 900, "expected mostly periodic data, got {matches}/1000");
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut rng = Rng::seeded(7);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i} count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seeded(3);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 100-element shuffle should move something");
    }
}
