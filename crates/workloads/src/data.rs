//! Deterministic generation of workload data segments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fixed seed all workloads derive their data from, so every run of
/// every experiment sees byte-identical inputs.
pub const WORKLOAD_SEED: u64 = 0x5eed_c1a5;

/// A deterministic RNG for a given workload name, independent of the
/// order workloads are constructed in.
pub fn rng_for(name: &str) -> StdRng {
    let mut h = WORKLOAD_SEED;
    for b in name.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(h)
}

/// `n` doubles uniform in `[lo, hi)`, as little-endian bytes.
pub fn f64_block(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let v: f64 = rng.gen_range(lo..hi);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// `n` u64 values uniform in `[0, bound)`, as little-endian bytes.
pub fn u64_block(rng: &mut StdRng, n: usize, bound: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(n * 8);
    for _ in 0..n {
        let v: u64 = rng.gen_range(0..bound);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// `n` random bytes (incompressible input).
pub fn random_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` bytes built by repeating a short random pattern with occasional
/// substitutions — highly compressible input with long LZ matches.
pub fn repetitive_bytes(rng: &mut StdRng, n: usize, period: usize, noise_one_in: usize) -> Vec<u8> {
    let pattern: Vec<u8> = (0..period).map(|_| rng.gen()).collect();
    (0..n)
        .map(|i| {
            if noise_one_in > 0 && rng.gen_range(0..noise_one_in) == 0 {
                rng.gen()
            } else {
                pattern[i % period]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: u64 = rng_for("gzip").gen();
        let b: u64 = rng_for("gzip").gen();
        let c: u64 = rng_for("swim").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_block_in_range() {
        let mut rng = rng_for("t");
        let bytes = f64_block(&mut rng, 100, -1.0, 1.0);
        assert_eq!(bytes.len(), 800);
        for chunk in bytes.chunks(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn u64_block_bounded() {
        let mut rng = rng_for("t");
        let bytes = u64_block(&mut rng, 50, 10);
        for chunk in bytes.chunks(8) {
            let v = u64::from_le_bytes(chunk.try_into().unwrap());
            assert!(v < 10);
        }
    }

    #[test]
    fn repetitive_bytes_mostly_periodic() {
        let mut rng = rng_for("t");
        let bytes = repetitive_bytes(&mut rng, 1000, 16, 100);
        let matches = bytes.iter().enumerate().filter(|&(i, &b)| b == bytes[i % 16]).count();
        assert!(matches > 900, "expected mostly periodic data, got {matches}/1000");
    }
}
