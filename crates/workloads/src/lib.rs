//! Benchmark-analogue workloads for the `clustered` simulator.
//!
//! The ISCA 2003 paper evaluated on four SPEC2000 integer programs,
//! three SPEC2000 FP programs, and two Mediabench programs (its
//! Table 3). Alpha binaries and their reference inputs are not
//! reproducible here, so this crate provides nine kernels written in
//! the `clustered-isa` virtual ISA, each engineered to match the
//! *metric profile* the paper reports for its namesake: branch
//! misprediction interval, memory intensity, distant-ILP availability,
//! and phase structure. The dynamic cluster-allocation algorithms
//! under study consume exactly those metrics, which is what makes the
//! substitution faithful (see `DESIGN.md` at the repository root).
//!
//! All input data is generated deterministically from
//! [`data::WORKLOAD_SEED`], so every experiment is exactly
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use clustered_workloads::{all, by_name};
//!
//! let suite = all();
//! assert_eq!(suite.len(), 9);
//!
//! let gzip = by_name("gzip").unwrap();
//! let mut machine = gzip.machine();
//! machine.run_to_halt(10_000).unwrap();
//! assert_eq!(machine.instructions_executed(), 10_000); // endless kernel
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod compiled;
pub mod data;
mod kernels;
mod profile;
pub mod synthetic;
pub mod tracefile;

pub use capture::{CapturedTrace, TraceReplay, CAPTURE_MARGIN};
pub use compiled::{BlockSpan, CompiledReplay, CompiledTrace};
pub use profile::{PaperProfile, WorkloadClass};
pub use tracefile::{capture_cached, capture_for_window_cached, env_cache_dir, TraceFileError};

use clustered_emu::{Machine, Trace};
use clustered_isa::{assemble, Program};

/// The workload names, in the paper's (alphabetical) Table 3 order.
pub const NAMES: [&str; 9] =
    ["cjpeg", "crafty", "djpeg", "galgel", "gzip", "mgrid", "parser", "swim", "vpr"];

/// A ready-to-run workload: an assembled kernel, its generated input
/// data, and the published profile of the benchmark it stands in for.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    description: String,
    paper: PaperProfile,
    program: Program,
    segments: Vec<(u64, Vec<u8>)>,
}

impl Workload {
    /// The workload's (benchmark) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description of what the kernel does.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Builds a workload from assembly source and memory segments —
    /// the constructor behind [`synthetic`] and available for custom
    /// kernels.
    ///
    /// # Panics
    ///
    /// Panics if the source fails to assemble; workload sources are
    /// part of the program, not user input.
    pub fn from_source(
        name: &str,
        description: &str,
        paper: PaperProfile,
        source: &str,
        segments: Vec<(u64, Vec<u8>)>,
    ) -> Workload {
        let program = assemble(source)
            .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}"));
        Workload {
            name: name.to_string(),
            description: description.to_string(),
            paper,
            program,
            segments,
        }
    }

    /// The paper-reported profile of the original benchmark.
    pub fn paper(&self) -> PaperProfile {
        self.paper
    }

    /// The assembled kernel program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Builds a machine with the kernel loaded and all input segments
    /// written to memory.
    pub fn machine(&self) -> Machine {
        let mut m = Machine::new(self.program.clone());
        for (base, bytes) in &self.segments {
            m.memory_mut().write_slice(*base, bytes);
        }
        m
    }

    /// Streams the workload's dynamic instruction trace.
    pub fn trace(&self) -> Trace {
        self.machine().into_trace()
    }

    /// Emulates the workload once and returns a shareable, replayable
    /// capture of up to `max_records` dynamic instructions (see
    /// [`CapturedTrace`]).
    pub fn capture(&self, max_records: u64) -> CapturedTrace {
        CapturedTrace::capture(self, max_records)
    }
}

fn make(
    name: &'static str,
    description: &'static str,
    paper: PaperProfile,
    built: (String, Vec<(u64, Vec<u8>)>),
) -> Workload {
    let (source, segments) = built;
    Workload::from_source(name, description, paper, &source, segments)
}

/// Builds the full nine-workload suite, in [`NAMES`] order.
pub fn all() -> Vec<Workload> {
    use profile::WorkloadClass::*;
    let p = |class,
             base_ipc,
             mispredict_interval,
             min_stable_interval,
             instability_at_10k,
             distant_ilp| PaperProfile {
        class,
        base_ipc,
        mispredict_interval,
        min_stable_interval,
        instability_at_10k,
        distant_ilp,
    };
    vec![
        make(
            "cjpeg",
            "forward-DCT butterflies with data-dependent quantisation",
            p(Mediabench, 2.06, 82, 40_000, 9.0, false),
            kernels::cjpeg::build(),
        ),
        make(
            "crafty",
            "bitboard evaluation with data-dependent loops and calls",
            p(SpecInt, 1.85, 118, 320_000, 30.0, false),
            kernels::crafty::build(),
        ),
        make(
            "djpeg",
            "blocked inverse-DCT butterflies (distant ILP across blocks)",
            p(Mediabench, 4.07, 249, 1_280_000, 31.0, true),
            kernels::djpeg::build(),
        ),
        make(
            "galgel",
            "dense matrix-vector products with value-dependent censuses",
            p(SpecFp, 3.43, 88, 10_000, 1.0, true),
            kernels::galgel::build(),
        ),
        make(
            "gzip",
            "LZ77 hash matching over alternating compressible regions",
            p(SpecInt, 1.83, 87, 10_000, 4.0, false),
            kernels::gzip::build(),
        ),
        make(
            "mgrid",
            "7-point stencil relaxation over a 3-D grid",
            p(SpecFp, 2.28, 8_977, 10_000, 0.0, true),
            kernels::mgrid::build(),
        ),
        make(
            "parser",
            "hash-bucket dictionary lookups over scattered linked lists",
            p(SpecInt, 1.42, 88, 40_000_000, 12.0, false),
            kernels::parser::build(),
        ),
        make(
            "swim",
            "streaming shallow-water stencil passes",
            p(SpecFp, 1.67, 22_600, 10_000, 0.0, true),
            kernels::swim::build(),
        ),
        make(
            "vpr",
            "annealing-style random cell swaps over a placement grid",
            p(SpecInt, 1.20, 171, 320_000, 14.0, false),
            kernels::vpr::build(),
        ),
    ]
}

/// Builds one workload by name, or `None` for an unknown name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustered_emu::BranchKind;

    #[test]
    fn suite_matches_names() {
        let suite = all();
        let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, NAMES);
    }

    #[test]
    fn by_name_round_trip() {
        for name in NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("perlbmk").is_none());
    }

    /// Every kernel must run indefinitely without halting or faulting.
    #[test]
    fn kernels_run_200k_instructions() {
        for w in all() {
            let mut m = w.machine();
            let n = m
                .run_to_halt(200_000)
                .unwrap_or_else(|e| panic!("{} faulted: {e}", w.name()));
            assert_eq!(n, 200_000, "{} halted early", w.name());
        }
    }

    /// Branch mix per kernel must be a plausible fraction of the
    /// instruction stream.
    #[test]
    fn branch_density_sane() {
        for w in all() {
            let total = 100_000u64;
            let mut branches = 0u64;
            let mut trace = w.trace();
            for _ in 0..total {
                let d = trace.next().expect("endless kernel").expect("no fault");
                if d.branch.is_some() {
                    branches += 1;
                }
            }
            let frac = branches as f64 / total as f64;
            assert!(
                (0.02..0.35).contains(&frac),
                "{}: branch fraction {frac} out of expected range",
                w.name()
            );
        }
    }

    /// Call/return traffic exists where the fine-grained subroutine
    /// policy needs it.
    #[test]
    fn call_heavy_kernels_have_calls() {
        for name in ["crafty", "djpeg"] {
            let w = by_name(name).unwrap();
            let calls = w
                .trace()
                .take(100_000)
                .filter_map(Result::ok)
                .filter(|d| matches!(d.branch, Some(b) if b.kind == BranchKind::Call))
                .count();
            assert!(calls > 100, "{name}: only {calls} calls in 100K instructions");
        }
    }

    /// Memory traffic fraction differs across the suite as designed.
    #[test]
    fn memory_reference_fractions() {
        let frac = |name: &str| {
            let w = by_name(name).unwrap();
            let total = 50_000;
            let memrefs = w
                .trace()
                .take(total)
                .filter_map(Result::ok)
                .filter(|d| d.mem.is_some())
                .count();
            memrefs as f64 / total as f64
        };
        assert!(frac("swim") > 0.25, "swim should be memory-heavy");
        assert!(frac("vpr") < 0.35, "vpr is not memory-dominated");
    }

    /// Deterministic construction: two builds yield identical programs
    /// and identical early traces.
    #[test]
    fn construction_is_deterministic() {
        let a = by_name("gzip").unwrap();
        let b = by_name("gzip").unwrap();
        assert_eq!(a.program().text(), b.program().text());
        let ta: Vec<_> = a.trace().take(5_000).map(Result::unwrap).collect();
        let tb: Vec<_> = b.trace().take(5_000).map(Result::unwrap).collect();
        assert_eq!(ta, tb);
    }

    /// gzip's match/literal censuses must both advance — evidence that
    /// both compressible and incompressible behaviour occur.
    #[test]
    fn gzip_finds_matches_and_literals() {
        let w = by_name("gzip").unwrap();
        let mut m = w.machine();
        m.run_to_halt(2_000_000).unwrap();
        let matches = m.int_reg(16);
        let literals = m.int_reg(17);
        assert!(matches > 1_000, "too few matches: {matches}");
        assert!(literals > 1_000, "too few literals: {literals}");
    }

    /// parser lookups must actually find keys.
    #[test]
    fn parser_hit_rate() {
        let w = by_name("parser").unwrap();
        let mut m = w.machine();
        m.run_to_halt(500_000).unwrap();
        let misses = m.int_reg(18);
        let hits_value = m.int_reg(19);
        assert!(hits_value > 0, "no successful lookups");
        assert_eq!(misses, 0, "lookups should always find their key");
    }

    /// vpr's accept/reject censuses reflect the designed ~85% bias.
    #[test]
    fn vpr_accept_bias() {
        let w = by_name("vpr").unwrap();
        let mut m = w.machine();
        m.run_to_halt(500_000).unwrap();
        let accepts = m.int_reg(17) as f64;
        let rejects = m.int_reg(18) as f64;
        let rate = accepts / (accepts + rejects);
        assert!((0.75..0.95).contains(&rate), "accept rate {rate}");
    }
}
