//! Compiled trace replay: per-slot pre-decoded micro-ops, stripped
//! dynamic records, and a basic-block index for batched fetch.
//!
//! [`TraceReplay`](crate::TraceReplay) recovers the static
//! [`Inst`] via `program.fetch(pc)` on every
//! dynamic record, and the simulator's dispatch stage used to re-derive
//! the op class, source/destination registers, and domain per
//! instruction — all of which are static per PC. A [`CompiledTrace`]
//! hoists that work out of the replay hot loop entirely:
//!
//! 1. **Static micro-op table** — one `StaticOp` per program slot
//!    holding the decoded facts (class, sources, dest, the static
//!    memory shape, the control-transfer kind), built once per program.
//!    The class doubles as the steering hint: the issue-queue domain
//!    and functional-unit group are pure functions of it.
//! 2. **Stripped dynamic records** — 24 bytes per dynamic instruction
//!    carrying only the truly dynamic bits (effective address, branch
//!    taken + next PC) plus the slot index into the table.
//! 3. **Basic-block index** — [`BlockSpan`]s derived from the branch
//!    records, partitioning the dynamic stream so
//!    [`CompiledReplay::next_run`] serves whole blocks per call: one
//!    bounds decision per block instead of per-instruction matching.
//!
//! The decoded stream is bit-identical to [`TraceReplay`](crate::TraceReplay) and to live
//! emulation (pinned by the tests here and by
//! `tests/compiled_replay.rs` for all nine kernels), so the shard
//! oracle — which fixes the *schedule*, a function of the decoded
//! stream alone — applies to the compiled path unchanged.

use crate::capture::{CapturedTrace, PackedInst, BRANCH_BIT, TAKEN_BIT};
use clustered_emu::{BranchKind, BranchOutcome, DecodedInst, MemAccess, TraceSource};
use clustered_isa::{ArchReg, Inst, OpClass};
use std::sync::Arc;

/// The decoded static facts of one program slot: everything the
/// pipeline needs that does not change between dynamic visits.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StaticOp {
    class: OpClass,
    srcs: [Option<ArchReg>; 2],
    dest: Option<ArchReg>,
    /// Memory shape `(size, is_store)` — the address is dynamic.
    mem: Option<(u8, bool)>,
    /// Control-transfer kind — taken/next-PC are dynamic.
    branch: Option<BranchKind>,
}

impl StaticOp {
    /// Decodes one static instruction. The memory shape and branch
    /// kind mirror the emulator exactly: access size and direction are
    /// fixed per opcode (8 bytes for FP), and each control-transfer
    /// opcode maps to one [`BranchKind`].
    fn decode(inst: &Inst) -> StaticOp {
        let mem = match inst {
            Inst::Load { width, .. } => Some((width.bytes() as u8, false)),
            Inst::Store { width, .. } => Some((width.bytes() as u8, true)),
            Inst::FpLoad { .. } => Some((8, false)),
            Inst::FpStore { .. } => Some((8, true)),
            _ => None,
        };
        let branch = match inst {
            Inst::Branch { .. } => Some(BranchKind::Conditional),
            Inst::Jump { .. } => Some(BranchKind::Jump),
            Inst::JumpReg { .. } => Some(BranchKind::Indirect),
            Inst::Call { .. } => Some(BranchKind::Call),
            Inst::CallReg { .. } => Some(BranchKind::IndirectCall),
            Inst::Ret => Some(BranchKind::Return),
            _ => None,
        };
        StaticOp {
            class: inst.op_class(),
            srcs: inst.sources(),
            dest: inst.dest(),
            mem,
            branch,
        }
    }
}

/// One dynamic record, stripped to the truly dynamic bits and a slot
/// reference into the static table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledRecord {
    /// Effective address (memory instructions; 0 otherwise).
    addr: u64,
    /// Index into the static micro-op table — also the fetch PC.
    slot: u32,
    /// Control transfers: the next fetch PC.
    next_pc: u32,
    /// Control transfers: whether the branch was taken.
    taken: bool,
}

/// One basic block of the dynamic stream: a maximal run of records in
/// which only the last may be a control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpan {
    /// Index of the block's first dynamic record.
    pub start: u64,
    /// Number of records in the block (always ≥ 1).
    pub len: u64,
}

/// A [`CapturedTrace`] compiled ahead of time:
/// pre-decoded micro-ops, stripped dynamic records, and a basic-block
/// index. Built with [`CapturedTrace::compile`], which memoizes the
/// result per capture; cloning (and [`CompiledTrace::replay`]) only
/// bumps three reference counts, so sweep workers share one table.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    name: String,
    table: Arc<[StaticOp]>,
    records: Arc<[CompiledRecord]>,
    blocks: Arc<[BlockSpan]>,
    ended_at_halt: bool,
}

impl CompiledTrace {
    /// Compiles `trace`: decodes the program text into the static
    /// table, strips the packed records to their dynamic bits, and
    /// derives the block index from the branch records.
    pub(crate) fn build(trace: &CapturedTrace) -> CompiledTrace {
        let table: Vec<StaticOp> = trace.program.text().iter().map(StaticOp::decode).collect();
        let mut records = Vec::with_capacity(trace.records.len());
        let mut blocks = Vec::new();
        let mut start = 0u64;
        for (i, p) in trace.records.iter().enumerate() {
            records.push(compile_record(p, table.len()));
            if p.flags & BRANCH_BIT != 0 {
                blocks.push(BlockSpan { start, len: i as u64 + 1 - start });
                start = i as u64 + 1;
            }
        }
        // A trailing branch-free run (capture window ended mid-block)
        // forms the final block, so the spans partition the records.
        if start < records.len() as u64 {
            blocks.push(BlockSpan { start, len: records.len() as u64 - start });
        }
        CompiledTrace {
            name: trace.name.clone(),
            table: table.into(),
            records: records.into(),
            blocks: blocks.into(),
            ended_at_halt: trace.ended_at_halt,
        }
    }

    /// The compiled workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compiled dynamic records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the compiled stream is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the underlying capture covers a complete execution (see
    /// [`CapturedTrace::ended_at_halt`](crate::CapturedTrace::ended_at_halt)).
    pub fn ended_at_halt(&self) -> bool {
        self.ended_at_halt
    }

    /// Number of entries in the static micro-op table — one per
    /// program text slot.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Size of the static micro-op table in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<StaticOp>()
    }

    /// Number of basic blocks in the dynamic stream.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The basic-block index. Invariants (pinned by tests): spans are
    /// contiguous from record 0, lengths are non-zero, they sum to
    /// [`len`](CompiledTrace::len), and every span ends at a control
    /// transfer or the trace tail.
    pub fn blocks(&self) -> &[BlockSpan] {
        &self.blocks
    }

    /// A fresh pre-decoded replay over the compiled stream. Cheap:
    /// clones three `Arc`s.
    pub fn replay(&self) -> CompiledReplay {
        CompiledReplay {
            table: Arc::clone(&self.table),
            records: Arc::clone(&self.records),
            blocks: Arc::clone(&self.blocks),
            pos: 0,
            block: 0,
        }
    }
}

/// Strips one packed record to its dynamic bits, validating the slot
/// against the table (mirrors `unpack`'s out-of-text panic).
fn compile_record(p: &PackedInst, table_len: usize) -> CompiledRecord {
    assert!(
        (p.pc as usize) < table_len,
        "captured pc {} outside program text",
        p.pc
    );
    CompiledRecord {
        addr: p.addr,
        slot: p.pc,
        next_pc: p.next_pc,
        taken: p.flags & TAKEN_BIT != 0,
    }
}

/// A cheap cloneable [`TraceSource`] replaying a [`CompiledTrace`]:
/// each record is assembled from the static table and the stripped
/// dynamic bits — no `Program` lookup, no per-record re-decoding — and
/// `next_run` serves whole basic blocks via the block index.
#[derive(Debug, Clone)]
pub struct CompiledReplay {
    table: Arc<[StaticOp]>,
    records: Arc<[CompiledRecord]>,
    blocks: Arc<[BlockSpan]>,
    pos: usize,
    /// Index of the block containing `pos` (`blocks.len()` at the end).
    block: usize,
}

impl CompiledReplay {
    /// Records remaining to be replayed.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.pos
    }

    fn decode(&self, i: usize) -> DecodedInst {
        let r = self.records[i];
        let op = self.table[r.slot as usize];
        DecodedInst {
            seq: i as u64,
            pc: r.slot,
            class: op.class,
            srcs: op.srcs,
            dest: op.dest,
            mem: op.mem.map(|(size, is_store)| MemAccess { addr: r.addr, size, is_store }),
            branch: op.branch.map(|kind| BranchOutcome { kind, taken: r.taken, next_pc: r.next_pc }),
        }
    }

    /// End position (exclusive) of the block containing `pos`.
    fn block_end(&self) -> usize {
        let b = self.blocks[self.block];
        (b.start + b.len) as usize
    }
}

impl TraceSource for CompiledReplay {
    fn next_decoded(&mut self) -> Option<DecodedInst> {
        if self.pos >= self.records.len() {
            return None;
        }
        let d = self.decode(self.pos);
        self.pos += 1;
        if self.pos >= self.block_end() {
            self.block += 1;
        }
        Some(d)
    }

    fn next_run(&mut self, max: usize, out: &mut Vec<DecodedInst>) -> usize {
        if max == 0 || self.pos >= self.records.len() {
            return 0;
        }
        let end = self.block_end();
        // One decision per call: serve the rest of the current block,
        // capped by the caller's budget. Decoding iterates one record
        // slice — a single bounds check for the whole run.
        let take = (end - self.pos).min(max);
        let base = self.pos;
        let table = &self.table;
        out.extend(self.records[base..base + take].iter().enumerate().map(|(k, r)| {
            let op = table[r.slot as usize];
            DecodedInst {
                seq: (base + k) as u64,
                pc: r.slot,
                class: op.class,
                srcs: op.srcs,
                dest: op.dest,
                mem: op.mem.map(|(size, is_store)| MemAccess { addr: r.addr, size, is_store }),
                branch: op
                    .branch
                    .map(|kind| BranchOutcome { kind, taken: r.taken, next_pc: r.next_pc }),
            }
        }));
        self.pos += take;
        if self.pos == end {
            self.block += 1;
        }
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, CapturedTrace};

    fn drain(mut src: impl TraceSource) -> Vec<DecodedInst> {
        let mut v = Vec::new();
        while let Some(d) = src.next_decoded() {
            v.push(d);
        }
        v
    }

    /// The compiled stream equals decode-on-the-fly replay bit for bit
    /// (the all-nine-kernels pin, including live emulation, lives in
    /// `tests/compiled_replay.rs`).
    #[test]
    fn compiled_stream_matches_replay_decode() {
        for name in ["gzip", "swim", "crafty"] {
            let w = by_name(name).unwrap();
            let captured = CapturedTrace::capture(&w, 5_000);
            let compiled = captured.compile();
            assert_eq!(compiled.len(), captured.len());
            let via_replay = drain(captured.replay());
            let via_table = drain(compiled.replay());
            assert_eq!(via_table, via_replay, "{name}: compiled stream diverged");
        }
    }

    #[test]
    fn compile_is_memoized_and_shared_across_clones() {
        let w = by_name("gzip").unwrap();
        let captured = CapturedTrace::capture(&w, 1_000);
        let a = captured.compile();
        let b = captured.clone().compile();
        assert!(Arc::ptr_eq(&a.table, &b.table), "clones must share one compiled table");
        assert!(Arc::ptr_eq(&a.records, &b.records));
    }

    #[test]
    fn block_index_partitions_the_record_range() {
        for name in ["gzip", "mgrid"] {
            let compiled = CapturedTrace::capture(&by_name(name).unwrap(), 5_000).compile();
            let mut next_start = 0u64;
            for b in compiled.blocks() {
                assert_eq!(b.start, next_start, "{name}: gap or overlap in block index");
                assert!(b.len > 0);
                next_start += b.len;
            }
            assert_eq!(next_start, compiled.len() as u64, "{name}: blocks must cover the range");
        }
    }

    #[test]
    fn every_block_ends_at_a_branch_or_the_trace_tail() {
        let compiled = CapturedTrace::capture(&by_name("gzip").unwrap(), 5_000).compile();
        let stream = drain(compiled.replay());
        for b in compiled.blocks() {
            let last = (b.start + b.len - 1) as usize;
            for d in &stream[b.start as usize..last] {
                assert!(d.branch.is_none(), "control transfer inside block body");
            }
            assert!(
                stream[last].branch.is_some() || last + 1 == stream.len(),
                "block must end at a branch or the trace tail"
            );
        }
    }

    /// `next_run` respects the caller's budget mid-block and resumes
    /// where it stopped, and mixed `next_decoded`/`next_run` calls keep
    /// the block cursor consistent.
    #[test]
    fn next_run_budget_and_mixed_stepping() {
        let compiled = CapturedTrace::capture(&by_name("gzip").unwrap(), 2_000).compile();
        let whole = drain(compiled.replay());
        let mut src = compiled.replay();
        let mut out = Vec::new();
        let mut stitched = Vec::new();
        let mut flip = false;
        loop {
            let n = if flip {
                match src.next_decoded() {
                    Some(d) => {
                        stitched.push(d);
                        1
                    }
                    None => 0,
                }
            } else {
                out.clear();
                let n = src.next_run(3, &mut out);
                assert!(out[..n.saturating_sub(1)].iter().all(|d| d.branch.is_none()));
                stitched.extend(out.iter().copied());
                n
            };
            if n == 0 {
                break;
            }
            flip = !flip;
        }
        assert_eq!(stitched, whole);
    }
}
