//! Published characteristics of the benchmarks each kernel stands in for.

/// The benchmark suite a workload's original came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPEC2000 integer.
    SpecInt,
    /// SPEC2000 floating-point.
    SpecFp,
    /// UCLA Mediabench.
    Mediabench,
}

impl WorkloadClass {
    /// Human-readable suite name as used in the paper's Table 3.
    pub fn suite_name(self) -> &'static str {
        match self {
            WorkloadClass::SpecInt => "SPEC2k Int",
            WorkloadClass::SpecFp => "SPEC2k FP",
            WorkloadClass::Mediabench => "Mediabench",
        }
    }
}

/// The values the paper reports for the original benchmark (Tables 3
/// and 4), kept for side-by-side comparison in experiment output.
///
/// These are *targets for shape comparison*, not numbers this
/// reproduction is expected to match absolutely: the substrate here is
/// a synthetic kernel on a from-scratch simulator, not an Alpha binary
/// on the authors' SimpleScalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperProfile {
    /// Which suite the original benchmark belonged to.
    pub class: WorkloadClass,
    /// Table 3: IPC on the monolithic processor with 16 clusters worth
    /// of resources.
    pub base_ipc: f64,
    /// Table 3: committed instructions between branch mispredictions.
    pub mispredict_interval: u32,
    /// Table 4: smallest interval length (instructions) with an
    /// instability factor below 5%.
    pub min_stable_interval: u64,
    /// Table 4: instability factor (percent) at a fixed 10K-instruction
    /// interval.
    pub instability_at_10k: f64,
    /// Whether the paper found the benchmark rich in *distant* ILP
    /// (prefers 16 clusters) rather than communication-bound
    /// (prefers ~4).
    pub distant_ilp: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names() {
        assert_eq!(WorkloadClass::SpecInt.suite_name(), "SPEC2k Int");
        assert_eq!(WorkloadClass::SpecFp.suite_name(), "SPEC2k FP");
        assert_eq!(WorkloadClass::Mediabench.suite_name(), "Mediabench");
    }
}
