//! Synthetic workloads with *controlled* phase structure.
//!
//! The nine named kernels imitate real benchmarks; these synthetic
//! generators instead give experiments a known ground truth: you say
//! exactly which phases exist and how much distant ILP each has, so a
//! reconfiguration policy's choices can be checked against what it
//! *should* have picked.

use crate::{PaperProfile, Workload, WorkloadClass};
use std::fmt::Write;

/// The character of one synthetic phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A serial integer dependence chain: no distant ILP, a narrow
    /// machine is optimal.
    Serial,
    /// Independent floating-point updates over a buffer: abundant
    /// distant ILP, the wide machine is optimal.
    Parallel,
    /// Data-dependent branching on pseudo-random values: heavy
    /// misprediction, narrow-machine territory.
    Branchy,
}

/// One phase of a synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// What the phase does.
    pub kind: PhaseKind,
    /// Inner-loop iterations per pass of the phase (each iteration is
    /// a handful of instructions; see the generated assembly).
    pub iterations: u32,
}

impl PhaseSpec {
    /// A phase of `kind` lasting roughly `instructions` dynamic
    /// instructions per pass.
    pub fn lasting(kind: PhaseKind, instructions: u32) -> PhaseSpec {
        let per_iteration = match kind {
            PhaseKind::Serial => 10,
            PhaseKind::Parallel => 9,
            PhaseKind::Branchy => 9,
        };
        PhaseSpec { kind, iterations: (instructions / per_iteration).max(1) }
    }
}

/// Builds an endless workload cycling through `phases`.
///
/// # Panics
///
/// Panics if `phases` is empty or any phase has zero iterations.
///
/// # Examples
///
/// ```
/// use clustered_workloads::synthetic::{phased, PhaseKind, PhaseSpec};
///
/// let w = phased(
///     "two-phase",
///     &[
///         PhaseSpec::lasting(PhaseKind::Serial, 20_000),
///         PhaseSpec::lasting(PhaseKind::Parallel, 20_000),
///     ],
/// );
/// let mut m = w.machine();
/// m.run_to_halt(50_000).unwrap();
/// assert_eq!(m.instructions_executed(), 50_000); // endless
/// ```
pub fn phased(name: &str, phases: &[PhaseSpec]) -> Workload {
    assert!(!phases.is_empty(), "need at least one phase");
    assert!(phases.iter().all(|p| p.iterations > 0), "phases need iterations");
    let mut source = String::from(
        "# synthetic phased workload (generated)\n\
         .data\n\
         buf: .space 65536\n\
         .text\n\
         start:\n\
         \x20   li r21, 88172645463325252\n\
         \x20   fli f2, 0.125\n\
         outer:\n",
    );
    for (i, phase) in phases.iter().enumerate() {
        match phase.kind {
            PhaseKind::Serial => {
                // A multiply chain punctuated by a data-dependent
                // branch: the mispredictions keep the instruction
                // window shallow, so (as in real serial integer code)
                // even the independent loop-counter chain never counts
                // as distant ILP.
                write!(
                    source,
                    "    li r1, {iters}\n\
                     p{i}:\n\
                     \x20   mul r2, r2, r21\n\
                     \x20   li r22, 6364136223846793005\n\
                     \x20   mul r21, r21, r22\n\
                     \x20   addi r21, r21, 1442695040888963407\n\
                     \x20   srli r4, r21, 41\n\
                     \x20   andi r4, r4, 1\n\
                     \x20   beqz r4, s{i}\n\
                     \x20   addi r5, r5, 1\n\
                     s{i}:\n\
                     \x20   addi r1, r1, -1\n\
                     \x20   bnez r1, p{i}\n",
                    iters = phase.iterations,
                )
                .expect("writing to String cannot fail");
            }
            PhaseKind::Parallel => {
                // Streaming read-modify-write, swim-style: iterations
                // are independent (distant ILP) and the walk keeps
                // moving, so cache behaviour stays uniform for the
                // whole phase.
                write!(
                    source,
                    "    la r3, buf\n\
                     \x20   li r1, {iters}\n\
                     p{i}:\n\
                     \x20   fld f1, 0(r3)\n\
                     \x20   fld f3, 8(r3)\n\
                     \x20   fadd f1, f1, f2\n\
                     \x20   fadd f3, f3, f2\n\
                     \x20   fmul f4, f1, f3\n\
                     \x20   fsd f4, 0(r3)\n\
                     \x20   addi r3, r3, 16\n\
                     \x20   addi r1, r1, -1\n\
                     \x20   bnez r1, p{i}\n",
                    iters = phase.iterations,
                )
                .expect("writing to String cannot fail");
            }
            PhaseKind::Branchy => {
                // LCG-driven coin flips.
                write!(
                    source,
                    "    li r1, {iters}\n\
                     p{i}:\n\
                     \x20   li r22, 6364136223846793005\n\
                     \x20   mul r21, r21, r22\n\
                     \x20   addi r21, r21, 1442695040888963407\n\
                     \x20   srli r4, r21, 40\n\
                     \x20   andi r4, r4, 1\n\
                     \x20   beqz r4, s{i}\n\
                     \x20   addi r5, r5, 1\n\
                     s{i}:\n\
                     \x20   addi r1, r1, -1\n\
                     \x20   bnez r1, p{i}\n",
                    iters = phase.iterations,
                )
                .expect("writing to String cannot fail");
            }
        }
    }
    source.push_str("    j outer\n");
    Workload::from_source(
        name,
        "synthetic phased workload",
        PaperProfile {
            class: WorkloadClass::SpecInt,
            base_ipc: 0.0,
            mispredict_interval: 0,
            min_stable_interval: 0,
            instability_at_10k: 0.0,
            distant_ilp: phases.iter().any(|p| p.kind == PhaseKind::Parallel),
        },
        &source,
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phase_kinds_assemble_and_run() {
        let w = phased(
            "mix",
            &[
                PhaseSpec::lasting(PhaseKind::Serial, 5_000),
                PhaseSpec::lasting(PhaseKind::Parallel, 5_000),
                PhaseSpec::lasting(PhaseKind::Branchy, 5_000),
            ],
        );
        assert_eq!(w.name(), "mix");
        let mut m = w.machine();
        let n = m.run_to_halt(60_000).unwrap();
        assert_eq!(n, 60_000, "synthetic workloads never halt");
    }

    #[test]
    fn lasting_translates_instructions_to_iterations() {
        let p = PhaseSpec::lasting(PhaseKind::Serial, 400);
        assert_eq!(p.iterations, 40);
        let p = PhaseSpec::lasting(PhaseKind::Serial, 1);
        assert_eq!(p.iterations, 1, "clamped to at least one iteration");
    }

    #[test]
    fn branchy_phase_has_data_dependent_branches() {
        let w = phased("b", &[PhaseSpec::lasting(PhaseKind::Branchy, 10_000)]);
        let taken: Vec<bool> = w
            .trace()
            .take(20_000)
            .filter_map(Result::ok)
            .filter_map(|d| d.branch)
            .map(|b| b.taken)
            .collect();
        let taken_count = taken.iter().filter(|&&t| t).count();
        let frac = taken_count as f64 / taken.len() as f64;
        assert!((0.4..0.95).contains(&frac), "branch mix should be mixed: {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn rejects_empty_phases() {
        let _ = phased("empty", &[]);
    }
}
