//! Versioned on-disk trace format (`.ctrace`): persist a
//! [`CapturedTrace`] so expensive captures are paid once per *machine*
//! rather than once per process, and can be shared across binaries,
//! CI runs, and hosts.
//!
//! # File layout (version 1, all integers little-endian)
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0  | 8 | magic `b"CTRACE\x1a\x00"` |
//! | 8  | 4 | format version (`u32`, currently 1) |
//! | 12 | 4 | flags (`u32`; bit 0 = `ended_at_halt`, others reserved-zero) |
//! | 16 | 8 | record count (`u64`) |
//! | 24 | 4 | workload-name length in bytes (`u32`) |
//! | 28 | 4 | program-text length in bytes (`u32`) |
//! | 32 | — | workload name (UTF-8) |
//! | …  | — | program text: the text segment as assembler source, one instruction per line (UTF-8) |
//! | …  | — | packed records, 18 bytes each: `addr: u64`, `pc: u32`, `next_pc: u32`, `flags: u16` |
//! | …  | 8 | FNV-1a 64 checksum of every preceding byte |
//!
//! The program-text section lets [`CapturedTrace::replay`] recover
//! static instructions without the source workload: disassembly
//! re-assembles to bit-identical instructions (pinned by the
//! round-trip tests here and in `clustered-isa`). Only the text
//! segment is persisted — the data segment and symbol table are not
//! needed for replay, since every memory effect is in the records.
//!
//! # Correctness posture
//!
//! File input is untrusted, so the load path is `Result`-typed and
//! validated end to end: [`CapturedTrace::load`] returns a
//! [`TraceFileError`] for bad magic, unsupported versions or flags,
//! truncated sections, checksum mismatches, malformed records, record
//! PCs outside the program text, and records whose flag words disagree
//! with the static instruction at their PC (a store with no address, a
//! phantom branch) — never a panic. Corruption-matrix tests flip and
//! truncate every section to pin this down; the class check is what
//! lets the timing pipeline treat "memref without an address" as
//! unreachable-from-file-input rather than a latent panic.
//!
//! # Capture cache
//!
//! [`capture_cached`] keys files by `<workload>-<records>.ctrace`
//! inside a cache directory (usually `$CLUSTERED_TRACE_CACHE`, see
//! [`env_cache_dir`]): a warm run loads the file and skips emulation
//! entirely; a cold, stale, or corrupt entry falls back to a fresh
//! capture and rewrites the file. Cached entries are validated against
//! the *current* workload (name, program text, window) so an outdated
//! kernel never silently replays the wrong stream.

use crate::capture::{PackedInst, FLAGS_MASK};
use crate::{CapturedTrace, Workload, CAPTURE_MARGIN};
use clustered_isa::{assemble, disassemble};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First eight bytes of every `.ctrace` file. The `\x1a` (DOS EOF)
/// byte guards against text-mode corruption the way PNG's magic does.
pub const MAGIC: [u8; 8] = *b"CTRACE\x1a\x00";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header flag: the capture covers the complete execution (the program
/// halted before the requested record count).
const FLAG_ENDED_AT_HALT: u32 = 1 << 0;

/// All flag bits a version-1 writer can produce.
const KNOWN_FLAGS: u32 = FLAG_ENDED_AT_HALT;

/// Fixed-size header length in bytes.
const HEADER_LEN: usize = 32;

/// On-disk size of one packed record.
const RECORD_LEN: usize = 18;

/// Trailing checksum length in bytes.
const TRAILER_LEN: usize = 8;

/// Environment variable naming the capture-cache directory.
pub const TRACE_CACHE_ENV: &str = "CLUSTERED_TRACE_CACHE";

/// Why a `.ctrace` file could not be loaded. Every malformed input maps
/// to a variant here — the load path has no panic reachable from file
/// bytes.
#[derive(Debug)]
pub enum TraceFileError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a `.ctrace` file.
    BadMagic,
    /// The file's format version is not one this reader understands.
    UnsupportedVersion(u32),
    /// The header carries flag bits unknown to this version.
    UnsupportedFlags(u32),
    /// The file ends before a section is complete.
    Truncated {
        /// Which section was cut short.
        section: &'static str,
        /// Bytes the section needed (from its start).
        needed: u64,
        /// Bytes actually available for it.
        have: u64,
    },
    /// The file continues past the checksum trailer.
    TrailingData {
        /// Number of unexpected trailing bytes.
        extra: u64,
    },
    /// The whole-file checksum does not match the contents.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum computed over the file body.
        found: u64,
    },
    /// The name or program-text section is not valid UTF-8.
    BadUtf8 {
        /// Which section failed to decode.
        section: &'static str,
    },
    /// The program-text section failed to re-assemble.
    BadProgramText(String),
    /// A record's fetch PC lies outside the program text — replaying it
    /// would fetch a nonexistent instruction.
    RecordPcOutOfText {
        /// Index of the offending record.
        index: u64,
        /// The out-of-range PC.
        pc: u32,
        /// Length of the reconstructed text segment.
        text_len: usize,
    },
    /// A record carries flag bits the encoder never emits.
    InvalidRecord {
        /// Index of the offending record.
        index: u64,
        /// The malformed flag word.
        flags: u16,
    },
    /// A record's flag word disagrees with the static instruction at
    /// its PC — e.g. a store with no memory address, or a branch
    /// record on an ALU op. Replaying such a record would feed the
    /// timing model state the emulator can never produce.
    RecordClassMismatch {
        /// Index of the offending record.
        index: u64,
        /// The record's fetch PC.
        pc: u32,
        /// What disagreed.
        detail: &'static str,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "I/O error: {e}"),
            TraceFileError::BadMagic => write!(f, "not a .ctrace file (bad magic)"),
            TraceFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v} (this reader understands {FORMAT_VERSION})")
            }
            TraceFileError::UnsupportedFlags(flags) => {
                write!(f, "unknown header flags {flags:#x}")
            }
            TraceFileError::Truncated { section, needed, have } => {
                write!(f, "truncated {section} section: needs {needed} bytes, {have} available")
            }
            TraceFileError::TrailingData { extra } => {
                write!(f, "{extra} unexpected bytes after the checksum trailer")
            }
            TraceFileError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: trailer says {expected:#018x}, contents hash to {found:#018x}")
            }
            TraceFileError::BadUtf8 { section } => {
                write!(f, "{section} section is not valid UTF-8")
            }
            TraceFileError::BadProgramText(e) => {
                write!(f, "program text does not re-assemble: {e}")
            }
            TraceFileError::RecordPcOutOfText { index, pc, text_len } => {
                write!(
                    f,
                    "record {index} fetches pc {pc}, outside the {text_len}-instruction program text"
                )
            }
            TraceFileError::InvalidRecord { index, flags } => {
                write!(f, "record {index} has malformed flags {flags:#06x}")
            }
            TraceFileError::RecordClassMismatch { index, pc, detail } => {
                write!(f, "record {index} (pc {pc}): {detail}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// FNV-1a 64-bit over `bytes` — dependency-free whole-file integrity
/// check (this is corruption detection, not cryptography).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u16(bytes: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(bytes[at..at + 2].try_into().expect("caller checked length"))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("caller checked length"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("caller checked length"))
}

impl CapturedTrace {
    /// Serializes this capture into the `.ctrace` byte format (see the
    /// [module documentation](self) for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let text_src: String = self
            .program
            .text()
            .iter()
            .map(disassemble)
            .collect::<Vec<_>>()
            .join("\n");
        let name = self.name.as_bytes();
        let mut out = Vec::with_capacity(
            HEADER_LEN + name.len() + text_src.len() + self.records.len() * RECORD_LEN + TRAILER_LEN,
        );
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, FORMAT_VERSION);
        push_u32(&mut out, if self.ended_at_halt { FLAG_ENDED_AT_HALT } else { 0 });
        push_u64(&mut out, self.records.len() as u64);
        push_u32(&mut out, u32::try_from(name.len()).expect("workload name fits u32"));
        push_u32(&mut out, u32::try_from(text_src.len()).expect("program text fits u32"));
        out.extend_from_slice(name);
        out.extend_from_slice(text_src.as_bytes());
        for r in self.records.iter() {
            push_u64(&mut out, r.addr);
            push_u32(&mut out, r.pc);
            push_u32(&mut out, r.next_pc);
            out.extend_from_slice(&r.flags.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        push_u64(&mut out, checksum);
        out
    }

    /// Parses and validates a `.ctrace` byte image.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceFileError`] describing the first problem found;
    /// no malformed input panics. Structural checks (magic, version,
    /// flags, section lengths) come before the checksum so a version
    /// bump reports [`TraceFileError::UnsupportedVersion`] rather than
    /// a useless mismatch; content checks (UTF-8, re-assembly, record
    /// validation) come after, so they only ever see bytes the
    /// checksum has vouched for.
    pub fn from_bytes(bytes: &[u8]) -> Result<CapturedTrace, TraceFileError> {
        if bytes.len() < HEADER_LEN {
            return Err(TraceFileError::Truncated {
                section: "header",
                needed: HEADER_LEN as u64,
                have: bytes.len() as u64,
            });
        }
        if bytes[..8] != MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let version = read_u32(bytes, 8);
        if version != FORMAT_VERSION {
            return Err(TraceFileError::UnsupportedVersion(version));
        }
        let flags = read_u32(bytes, 12);
        if flags & !KNOWN_FLAGS != 0 {
            return Err(TraceFileError::UnsupportedFlags(flags));
        }
        let record_count = read_u64(bytes, 16);
        let name_len = read_u32(bytes, 24) as u64;
        let text_len = read_u32(bytes, 28) as u64;

        // Section boundaries in u128 so a hostile record count cannot
        // overflow the arithmetic.
        let len = bytes.len() as u128;
        let name_end = HEADER_LEN as u128 + name_len as u128;
        let text_end = name_end + text_len as u128;
        let records_end = text_end + record_count as u128 * RECORD_LEN as u128;
        let total = records_end + TRAILER_LEN as u128;
        let truncated = |section, start: u128, end: u128| TraceFileError::Truncated {
            section,
            needed: (end - start) as u64,
            have: len.saturating_sub(start).min(u64::MAX as u128) as u64,
        };
        if len < name_end {
            return Err(truncated("name", HEADER_LEN as u128, name_end));
        }
        if len < text_end {
            return Err(truncated("program text", name_end, text_end));
        }
        if len < records_end {
            return Err(truncated("records", text_end, records_end));
        }
        if len < total {
            return Err(truncated("checksum", records_end, total));
        }
        if len > total {
            return Err(TraceFileError::TrailingData { extra: (len - total) as u64 });
        }

        let records_end = records_end as usize;
        let expected = read_u64(bytes, records_end);
        let found = fnv1a(&bytes[..records_end]);
        if expected != found {
            return Err(TraceFileError::ChecksumMismatch { expected, found });
        }

        let name_end = name_end as usize;
        let text_end = text_end as usize;
        let name = std::str::from_utf8(&bytes[HEADER_LEN..name_end])
            .map_err(|_| TraceFileError::BadUtf8 { section: "name" })?
            .to_string();
        let text_src = std::str::from_utf8(&bytes[name_end..text_end])
            .map_err(|_| TraceFileError::BadUtf8 { section: "program text" })?;
        let program =
            assemble(text_src).map_err(|e| TraceFileError::BadProgramText(e.to_string()))?;
        let text_len = program.text().len();

        let mut records = Vec::with_capacity(record_count as usize);
        for index in 0..record_count {
            let at = text_end + index as usize * RECORD_LEN;
            let record = PackedInst {
                addr: read_u64(bytes, at),
                pc: read_u32(bytes, at + 8),
                next_pc: read_u32(bytes, at + 12),
                flags: read_u16(bytes, at + 16),
            };
            if record.flags & !FLAGS_MASK != 0 {
                return Err(TraceFileError::InvalidRecord { index, flags: record.flags });
            }
            if record.pc as usize >= text_len {
                return Err(TraceFileError::RecordPcOutOfText { index, pc: record.pc, text_len });
            }
            // The flag word must agree with the static instruction the
            // PC names: the timing pipeline relies on every load/store
            // carrying an address (and nothing else carrying one), so a
            // mismatched record is rejected here instead of surfacing
            // as corrupt simulator state mid-run.
            if let Err(detail) =
                crate::capture::record_flags_match(&program.text()[record.pc as usize], record.flags)
            {
                return Err(TraceFileError::RecordClassMismatch { index, pc: record.pc, detail });
            }
            records.push(record);
        }

        Ok(CapturedTrace {
            name,
            program: Arc::new(program),
            records: records.into(),
            ended_at_halt: flags & FLAG_ENDED_AT_HALT != 0,
            compiled: Arc::new(std::sync::OnceLock::new()),
        })
    }

    /// Writes this capture to `path` in the `.ctrace` format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceFileError::Io`] if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
        std::fs::write(path, self.to_bytes()).map_err(TraceFileError::Io)
    }

    /// Reads and validates a `.ctrace` file.
    ///
    /// # Errors
    ///
    /// As for [`CapturedTrace::from_bytes`], plus
    /// [`TraceFileError::Io`] if the file cannot be read.
    pub fn load(path: impl AsRef<Path>) -> Result<CapturedTrace, TraceFileError> {
        let bytes = std::fs::read(path).map_err(TraceFileError::Io)?;
        CapturedTrace::from_bytes(&bytes)
    }
}

/// The capture-cache directory from `$CLUSTERED_TRACE_CACHE`, if set.
pub fn env_cache_dir() -> Option<PathBuf> {
    std::env::var_os(TRACE_CACHE_ENV).filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// The cache file for a `(workload, record count)` pair. The count is
/// part of the key so different capture windows never collide.
pub fn cache_path(dir: &Path, workload_name: &str, max_records: u64) -> PathBuf {
    dir.join(format!("{workload_name}-{max_records}.ctrace"))
}

/// Whether a loaded trace can stand in for capturing `workload` with
/// `max_records`: same name, same program text, and a complete window
/// (exact count, or a shorter capture that legitimately ended at halt).
fn cache_hit(trace: &CapturedTrace, workload: &Workload, max_records: u64) -> bool {
    trace.name() == workload.name()
        && trace.program().text() == workload.program().text()
        && (trace.len() as u64 == max_records
            || (trace.ended_at_halt() && (trace.len() as u64) < max_records))
}

/// Captures `workload` through the capture cache: a valid cached
/// `.ctrace` is loaded (skipping emulation entirely); a miss captures
/// live and writes the cache for the next run. With `cache_dir: None`
/// this is exactly [`CapturedTrace::capture`].
///
/// Cache problems are never fatal: stale entries (changed kernel,
/// wrong window), corrupt files, and unwritable directories all fall
/// back to a live capture with a warning on stderr.
pub fn capture_cached(
    workload: &Workload,
    max_records: u64,
    cache_dir: Option<&Path>,
) -> CapturedTrace {
    let Some(dir) = cache_dir else {
        return CapturedTrace::capture(workload, max_records);
    };
    let path = cache_path(dir, workload.name(), max_records);
    match CapturedTrace::load(&path) {
        Ok(trace) if cache_hit(&trace, workload, max_records) => return trace,
        Ok(_) => {
            eprintln!(
                "warning: trace cache {} is stale (workload changed?); re-capturing",
                path.display()
            );
        }
        Err(TraceFileError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            eprintln!("warning: unusable trace cache {}: {e}; re-capturing", path.display());
        }
    }
    let trace = CapturedTrace::capture(workload, max_records);
    if let Err(e) = std::fs::create_dir_all(dir).map_err(TraceFileError::Io).and_then(|()| trace.save(&path))
    {
        eprintln!("warning: cannot write trace cache {}: {e}", path.display());
    }
    trace
}

/// [`capture_cached`] sized for a `warmup + measure` simulation window
/// plus [`CAPTURE_MARGIN`] — the cache-aware analogue of
/// [`CapturedTrace::for_window`].
pub fn capture_for_window_cached(
    workload: &Workload,
    warmup: u64,
    measure: u64,
    cache_dir: Option<&Path>,
) -> CapturedTrace {
    capture_cached(workload, warmup + measure + CAPTURE_MARGIN, cache_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, PaperProfile, WorkloadClass};
    use clustered_emu::DynInst;

    fn profile() -> PaperProfile {
        PaperProfile {
            class: WorkloadClass::SpecInt,
            base_ipc: 0.0,
            mispredict_interval: 0,
            min_stable_interval: 0,
            instability_at_10k: 0.0,
            distant_ilp: false,
        }
    }

    /// A small workload touching memory, branches, and calls, so its
    /// records exercise every packed field.
    fn tiny_workload() -> Workload {
        Workload::from_source(
            "tiny",
            "short halting kernel for trace-file tests",
            profile(),
            ".data\nbuf: .space 32\n.text\n\
             start: la r2, buf\n li r1, 6\n\
             loop: sd r1, 0(r2)\n ld r3, 0(r2)\n call bump\n bnez r1, loop\n halt\n\
             bump: addi r1, r1, -1\n ret",
            Vec::new(),
        )
    }

    fn tiny_bytes() -> Vec<u8> {
        let trace = CapturedTrace::capture(&tiny_workload(), 1_000);
        assert!(trace.ended_at_halt());
        trace.to_bytes()
    }

    /// Rewrites the trailer after a test mutates the body, so content
    /// checks past the checksum can be exercised in isolation.
    fn fix_checksum(bytes: &mut [u8]) {
        let body = bytes.len() - TRAILER_LEN;
        let sum = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
    }

    /// The tentpole guarantee: save → load → replay is bit-identical
    /// to live emulation, across integer, FP, memory, and call-heavy
    /// streams.
    #[test]
    fn round_trip_replay_is_bit_identical_to_live_emulation() {
        for name in ["gzip", "swim", "crafty"] {
            let w = by_name(name).unwrap();
            let captured = CapturedTrace::capture(&w, 5_000);
            let loaded = CapturedTrace::from_bytes(&captured.to_bytes())
                .unwrap_or_else(|e| panic!("{name}: round trip failed: {e}"));
            assert_eq!(loaded.name(), captured.name());
            assert_eq!(loaded.len(), captured.len());
            assert_eq!(loaded.ended_at_halt(), captured.ended_at_halt());
            let live: Vec<DynInst> = w.trace().take(5_000).map(Result::unwrap).collect();
            let replayed: Vec<DynInst> = loaded.replay().collect();
            assert_eq!(live, replayed, "{name}: loaded replay diverged from live emulation");
        }
    }

    /// Every built-in kernel's program text must survive the
    /// disassemble → assemble encoding used by the program section.
    #[test]
    fn all_workload_programs_reassemble_exactly() {
        for w in crate::all() {
            let src: String =
                w.program().text().iter().map(clustered_isa::disassemble).collect::<Vec<_>>().join("\n");
            let back = assemble(&src).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert_eq!(w.program().text(), back.text(), "{}: text diverged", w.name());
        }
    }

    #[test]
    fn halting_capture_round_trips_completely() {
        let w = tiny_workload();
        let captured = CapturedTrace::capture(&w, 1_000);
        assert!(captured.ended_at_halt());
        let loaded = CapturedTrace::from_bytes(&captured.to_bytes()).unwrap();
        assert!(loaded.ended_at_halt());
        let live: Vec<DynInst> = w.trace().map(Result::unwrap).collect();
        let replayed: Vec<DynInst> = loaded.replay().collect();
        assert_eq!(live, replayed);
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let dir = test_dir("save-load");
        let path = dir.join("tiny.ctrace");
        let trace = CapturedTrace::capture(&tiny_workload(), 1_000);
        trace.save(&path).unwrap();
        let loaded = CapturedTrace::load(&path).unwrap();
        assert_eq!(
            loaded.replay().collect::<Vec<_>>(),
            trace.replay().collect::<Vec<_>>()
        );
        let missing = CapturedTrace::load(dir.join("absent.ctrace"));
        assert!(matches!(missing, Err(TraceFileError::Io(_))));
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The corruption matrix: every tampered section yields its typed
    /// error, never a panic.
    #[test]
    fn corruption_matrix_yields_typed_errors() {
        let good = tiny_bytes();
        assert!(CapturedTrace::from_bytes(&good).is_ok());

        // Magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(CapturedTrace::from_bytes(&bad), Err(TraceFileError::BadMagic)));

        // Version bump.
        let mut bad = good.clone();
        bad[8] = 2;
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::UnsupportedVersion(2))
        ));

        // Unknown header flag.
        let mut bad = good.clone();
        bad[12] |= 0x80;
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::UnsupportedFlags(_))
        ));

        // A flipped byte in the name, program-text, and records
        // sections is caught by the whole-file checksum.
        let name_len = read_u32(&good, 24) as usize;
        let text_len = read_u32(&good, 28) as usize;
        for at in [HEADER_LEN, HEADER_LEN + name_len, HEADER_LEN + name_len + text_len + 3] {
            let mut bad = good.clone();
            bad[at] ^= 0x55;
            assert!(
                matches!(
                    CapturedTrace::from_bytes(&bad),
                    Err(TraceFileError::ChecksumMismatch { .. })
                ),
                "flip at {at}"
            );
        }

        // A flipped checksum byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::ChecksumMismatch { .. })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::TrailingData { extra: 1 })
        ));

        // Record count inflated to claim more bytes than any real file
        // could hold (would overflow naive size arithmetic).
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::Truncated { section: "records", .. })
        ));

        // A record PC past the end of the program text (checksum
        // refreshed so only the content check can object).
        let first_record = HEADER_LEN + name_len + text_len;
        let mut bad = good.clone();
        bad[first_record + 8..first_record + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        fix_checksum(&mut bad);
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::RecordPcOutOfText { index: 0, pc: u32::MAX, .. })
        ));

        // A record flag word with bits the encoder never writes.
        let mut bad = good.clone();
        bad[first_record + 17] = 0xff;
        fix_checksum(&mut bad);
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::InvalidRecord { index: 0, .. })
        ));

        // Program text replaced with garbage of the same length.
        let mut bad = good.clone();
        for b in &mut bad[HEADER_LEN + name_len..HEADER_LEN + name_len + text_len] {
            *b = b'?';
        }
        fix_checksum(&mut bad);
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::BadProgramText(_))
        ));

        // Non-UTF-8 name of the same length.
        let mut bad = good.clone();
        bad[HEADER_LEN] = 0xff;
        fix_checksum(&mut bad);
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::BadUtf8 { section: "name" })
        ));
    }

    /// Records whose flag words disagree with their static instruction
    /// — a store with no address, a mislabelled direction, a phantom
    /// branch — are rejected with [`TraceFileError::RecordClassMismatch`]
    /// instead of surfacing as corrupt pipeline state mid-simulation.
    #[test]
    fn record_class_mismatches_yield_typed_errors() {
        use crate::capture::{BRANCH_BIT, KIND_SHIFT, MEM_BIT, SIZE_SHIFT, STORE_BIT};
        let good = tiny_bytes();
        let name_len = read_u32(&good, 24) as usize;
        let text_len = read_u32(&good, 28) as usize;
        let first_record = HEADER_LEN + name_len + text_len;
        let flags_at = |bytes: &[u8], index: usize| -> u16 {
            read_u16(bytes, first_record + index * RECORD_LEN + 16)
        };
        let with_flags = |index: usize, flags: u16| -> Vec<u8> {
            let mut bad = good.clone();
            let at = first_record + index * RECORD_LEN + 16;
            bad[at..at + 2].copy_from_slice(&flags.to_le_bytes());
            fix_checksum(&mut bad);
            bad
        };
        // Dynamic record order of `tiny_workload`'s first iteration:
        // la(0) li(1) sd(2) ld(3) call(4) addi(5) ret(6) bnez(7).
        let (alu, store, load, call) = (0usize, 2usize, 3usize, 4usize);
        assert_eq!(flags_at(&good, store) & (MEM_BIT | STORE_BIT), MEM_BIT | STORE_BIT);
        assert_eq!(flags_at(&good, load) & (MEM_BIT | STORE_BIT), MEM_BIT);
        assert_ne!(flags_at(&good, call) & BRANCH_BIT, 0);

        let cases: [(usize, u16, &str); 7] = [
            // A store record stripped of its memory access: exactly the
            // shape that used to reach `expect("store without an
            // address")` deep in the pipeline.
            (store, flags_at(&good, store) & !(MEM_BIT | STORE_BIT | (0b11 << SIZE_SHIFT)), "without a memory record"),
            (alu, flags_at(&good, alu) | MEM_BIT, "non-memref"),
            (store, flags_at(&good, store) & !STORE_BIT, "direction"),
            (load, flags_at(&good, load) | STORE_BIT, "direction"),
            (call, flags_at(&good, call) & !(BRANCH_BIT | (0b111 << KIND_SHIFT)), "without a branch record"),
            (alu, flags_at(&good, alu) | BRANCH_BIT, "non-control"),
            (store, (flags_at(&good, store) & !(0b11 << SIZE_SHIFT)) | (0b01 << SIZE_SHIFT), "access size"),
        ];
        for (index, flags, needle) in cases {
            let bad = with_flags(index, flags);
            match CapturedTrace::from_bytes(&bad) {
                Err(e @ TraceFileError::RecordClassMismatch { index: i, .. }) => {
                    assert_eq!(i, index as u64, "wrong record blamed");
                    let msg = e.to_string();
                    assert!(msg.contains(needle), "error {msg:?} does not mention {needle:?}");
                }
                other => panic!("record {index} flags {flags:#06x}: expected RecordClassMismatch, got {other:?}"),
            }
        }

        // A mismatched branch *kind* on an otherwise-valid control
        // record: call(3) rewritten as a return(5).
        let call_flags = flags_at(&good, call);
        let bad = with_flags(call, (call_flags & !(0b111 << KIND_SHIFT)) | (5 << KIND_SHIFT));
        assert!(matches!(
            CapturedTrace::from_bytes(&bad),
            Err(TraceFileError::RecordClassMismatch { detail, .. }) if detail.contains("branch kind")
        ));
    }

    /// Exhaustive truncation sweep: every strict prefix of a valid file
    /// must return `Truncated` — the only variant a shortened but
    /// otherwise intact file can produce — and must never panic.
    #[test]
    fn every_truncated_prefix_errors() {
        let good = tiny_bytes();
        for cut in 0..good.len() {
            match CapturedTrace::from_bytes(&good[..cut]) {
                Err(TraceFileError::Truncated { .. }) => {}
                other => panic!("prefix of {cut} bytes: expected Truncated, got {other:?}"),
            }
        }
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ctrace-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Cold → warm → stale: the cache captures once, then loads, and a
    /// changed kernel under the same name is detected and re-captured
    /// rather than silently replaying the wrong stream.
    #[test]
    fn capture_cache_hits_and_detects_staleness() {
        let dir = test_dir("cache");
        let w = by_name("gzip").unwrap();
        let cold = capture_cached(&w, 2_000, Some(&dir));
        let path = cache_path(&dir, "gzip", 2_000);
        assert!(path.exists(), "cold run must write the cache file");

        let warm = capture_cached(&w, 2_000, Some(&dir));
        assert_eq!(
            warm.replay().collect::<Vec<_>>(),
            cold.replay().collect::<Vec<_>>(),
            "warm load diverged from the cold capture"
        );

        // Same name + record count, different program: must miss.
        let impostor = Workload::from_source(
            "gzip",
            "a different kernel wearing gzip's name",
            profile(),
            "start: addi r1, r1, 1\n jmp start",
            Vec::new(),
        );
        let fresh = capture_cached(&impostor, 2_000, Some(&dir));
        assert_eq!(fresh.len(), 2_000);
        assert_ne!(
            fresh.replay().next().unwrap().pc,
            u32::MAX, // touch the stream so the capture is exercised
        );
        assert_eq!(
            fresh.program().text(),
            impostor.program().text(),
            "stale cache entry served for a changed program"
        );

        // A corrupt cache file falls back to live capture and rewrites.
        std::fs::write(&path, b"garbage").unwrap();
        let recovered = capture_cached(&w, 2_000, Some(&dir));
        assert_eq!(
            recovered.replay().collect::<Vec<_>>(),
            cold.replay().collect::<Vec<_>>()
        );
        assert!(CapturedTrace::load(&path).is_ok(), "corrupt entry must be rewritten");
        let _ = std::fs::remove_dir_all(dir);
    }

    /// A halting workload's shorter-than-requested capture is a
    /// legitimate cache hit for the same window.
    #[test]
    fn halting_captures_hit_the_cache() {
        let dir = test_dir("halt-cache");
        let w = tiny_workload();
        let cold = capture_cached(&w, 1_000, Some(&dir));
        assert!(cold.ended_at_halt());
        let warm = capture_cached(&w, 1_000, Some(&dir));
        assert_eq!(warm.len(), cold.len());
        assert!(warm.ended_at_halt());
        assert_eq!(
            warm.replay().collect::<Vec<_>>(),
            cold.replay().collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn window_helper_matches_margin() {
        let w = by_name("gzip").unwrap();
        let t = capture_for_window_cached(&w, 100, 400, None);
        assert_eq!(t.len() as u64, 500 + CAPTURE_MARGIN);
    }
}
