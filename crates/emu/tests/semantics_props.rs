// Property tests depend on the external `proptest` crate, which the
// offline build environment cannot fetch. Compiled only with
// `--features slow-tests` (re-add proptest to [dev-dependencies] first).
#![cfg(feature = "slow-tests")]

//! Property tests of instruction semantics: the emulator's ALU,
//! shifts, comparisons, and multiply/divide against direct Rust
//! arithmetic, exercised through assembled programs.

use clustered_emu::Machine;
use clustered_isa::assemble;
use proptest::prelude::*;

/// Runs a fragment with `r1 = a`, `r2 = b` preloaded and returns `r3`.
fn eval(op_line: &str, a: i64, b: i64) -> u64 {
    let source = format!("li r1, {a}\nli r2, {b}\n{op_line}\nhalt");
    let mut m = Machine::new(assemble(&source).expect("valid fragment"));
    m.run_to_halt(10).expect("fragment runs");
    assert!(m.is_halted());
    m.int_reg(3)
}

proptest! {
    #[test]
    fn add_sub_match_wrapping(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval("add r3, r1, r2", a, b), (a as u64).wrapping_add(b as u64));
        prop_assert_eq!(eval("sub r3, r1, r2", a, b), (a as u64).wrapping_sub(b as u64));
    }

    #[test]
    fn bitwise_match(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval("and r3, r1, r2", a, b), (a & b) as u64);
        prop_assert_eq!(eval("or r3, r1, r2", a, b), (a | b) as u64);
        prop_assert_eq!(eval("xor r3, r1, r2", a, b), (a ^ b) as u64);
    }

    #[test]
    fn shifts_take_amount_mod_64(a in any::<i64>(), sh in 0i64..256) {
        prop_assert_eq!(eval("sll r3, r1, r2", a, sh), (a as u64).wrapping_shl(sh as u32));
        prop_assert_eq!(eval("srl r3, r1, r2", a, sh), (a as u64).wrapping_shr(sh as u32));
        prop_assert_eq!(eval("sra r3, r1, r2", a, sh), a.wrapping_shr(sh as u32) as u64);
    }

    #[test]
    fn comparisons_match(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval("slt r3, r1, r2", a, b), u64::from(a < b));
        prop_assert_eq!(eval("sltu r3, r1, r2", a, b), u64::from((a as u64) < (b as u64)));
    }

    #[test]
    fn muldiv_match(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(eval("mul r3, r1, r2", a, b), a.wrapping_mul(b) as u64);
        let div = if b == 0 { -1i64 } else { a.wrapping_div(b) };
        let rem = if b == 0 { a } else { a.wrapping_rem(b) };
        prop_assert_eq!(eval("div r3, r1, r2", a, b), div as u64);
        prop_assert_eq!(eval("rem r3, r1, r2", a, b), rem as u64);
    }

    /// Memory round-trips through stores and loads of every width.
    #[test]
    fn store_load_round_trip(v in any::<i64>(), offset in 0i64..64) {
        let source = format!(
            ".data\nbuf: .space 128\n.text\n\
             la r4, buf\n li r1, {v}\n\
             sd r1, {offset}(r4)\n ld r3, {offset}(r4)\n\
             sw r1, 64(r4)\n lw r5, 64(r4)\n\
             sb r1, 72(r4)\n lbu r6, 72(r4)\n halt"
        );
        let mut m = Machine::new(assemble(&source).expect("valid"));
        m.run_to_halt(20).expect("runs");
        prop_assert_eq!(m.int_reg(3), v as u64);
        prop_assert_eq!(m.int_reg(5), v as i32 as i64 as u64, "lw sign-extends");
        prop_assert_eq!(m.int_reg(6), (v as u8) as u64, "lbu zero-extends");
    }

    /// Branch conditions agree with Rust comparisons.
    #[test]
    fn branch_conditions_match(a in any::<i64>(), b in any::<i64>()) {
        for (mnemonic, expected) in [
            ("beq", a == b),
            ("bne", a != b),
            ("blt", a < b),
            ("bge", a >= b),
            ("bltu", (a as u64) < (b as u64)),
            ("bgeu", (a as u64) >= (b as u64)),
        ] {
            let source = format!(
                "li r1, {a}\nli r2, {b}\n{mnemonic} r1, r2, yes\nli r3, 0\nhalt\nyes: li r3, 1\nhalt"
            );
            let mut m = Machine::new(assemble(&source).expect("valid"));
            m.run_to_halt(10).expect("runs");
            prop_assert_eq!(m.int_reg(3) == 1, expected, "{} {} {}", a, mnemonic, b);
        }
    }

    /// The dynamic trace marks exactly the right instructions as
    /// branches/memrefs, whatever the program.
    #[test]
    fn trace_event_classification(n in 1u32..30) {
        let source = format!(
            ".data\nbuf: .space 256\n.text\n\
             la r2, buf\nli r1, {n}\n\
             loop: sd r1, 0(r2)\n ld r3, 0(r2)\n addi r1, r1, -1\n bnez r1, loop\n halt"
        );
        let program = assemble(&source).expect("valid");
        let records: Vec<_> = clustered_emu::trace(program)
            .collect::<Result<_, _>>()
            .expect("no fault");
        let branches = records.iter().filter(|d| d.branch.is_some()).count();
        let memrefs = records.iter().filter(|d| d.mem.is_some()).count();
        prop_assert_eq!(branches, n as usize, "one bnez per iteration");
        prop_assert_eq!(memrefs, 2 * n as usize, "one store + one load per iteration");
    }
}
