//! Dynamic-trace records produced by the emulator and consumed by the
//! timing simulator.

use clustered_isa::Inst;

/// The kind of a dynamic control transfer, as seen by the front end.
///
/// The branch predictor treats each kind differently: conditional
/// branches consult the direction predictor, indirect transfers consult
/// only the BTB, and calls/returns additionally use the return-address
/// stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional branch.
    Conditional,
    /// A direct unconditional jump.
    Jump,
    /// An indirect jump through a register.
    Indirect,
    /// A direct call (target known at decode).
    Call,
    /// An indirect call through a register (target needs prediction).
    IndirectCall,
    /// A return.
    Return,
}

/// The resolved outcome of a dynamic control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// What kind of transfer this is.
    pub kind: BranchKind,
    /// Whether the transfer was taken (always true except for
    /// untaken conditional branches).
    pub taken: bool,
    /// The next instruction index actually executed.
    pub next_pc: u32,
}

/// A resolved memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The effective byte address.
    pub addr: u64,
    /// Access size in bytes (1, 4, or 8).
    pub size: u8,
    /// True for stores, false for loads.
    pub is_store: bool,
}

/// One dynamically executed instruction: the static instruction plus
/// everything the timing model needs about its resolution (effective
/// address, branch outcome).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// The instruction index this was fetched from.
    pub pc: u32,
    /// The static instruction (query [`Inst::sources`], [`Inst::dest`],
    /// [`Inst::op_class`] for dependence and scheduling information).
    pub inst: Inst,
    /// The memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// The control-transfer outcome, for branches/jumps/calls/returns.
    pub branch: Option<BranchOutcome>,
}

impl DynInst {
    /// The instruction index executed after this instruction.
    pub fn next_pc(&self) -> u32 {
        match self.branch {
            Some(b) => b.next_pc,
            None => self.pc + 1,
        }
    }

    /// Whether this is a conditional branch.
    pub fn is_conditional_branch(&self) -> bool {
        matches!(self.branch, Some(BranchOutcome { kind: BranchKind::Conditional, .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_pc_fall_through_and_taken() {
        let base = DynInst {
            seq: 0,
            pc: 10,
            inst: Inst::Halt,
            mem: None,
            branch: None,
        };
        assert_eq!(base.next_pc(), 11);
        let taken = DynInst {
            branch: Some(BranchOutcome {
                kind: BranchKind::Conditional,
                taken: true,
                next_pc: 3,
            }),
            ..base
        };
        assert_eq!(taken.next_pc(), 3);
        assert!(taken.is_conditional_branch());
        assert!(!base.is_conditional_branch());
    }
}
