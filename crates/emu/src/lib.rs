//! Functional emulator for the `clustered` virtual ISA.
//!
//! The emulator executes an assembled [`Program`](clustered_isa::Program)
//! at architectural level and emits one [`DynInst`] record per executed
//! instruction. Those records — carrying the static instruction, the
//! resolved effective address of memory operations, and the outcome of
//! control transfers — are the *dynamic trace* the `clustered-sim`
//! timing model consumes.
//!
//! This mirrors the trace-driven substitution documented in the
//! repository's `DESIGN.md`: the ISCA 2003 paper used an
//! execution-driven SimpleScalar; here functional execution and timing
//! are decoupled, with branch mispredictions modelled in the timing
//! simulator by stalling fetch until resolution.
//!
//! # Examples
//!
//! ```
//! use clustered_isa::assemble;
//! use clustered_emu::{trace, Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "li r1, 4
//!      loop: addi r1, r1, -1
//!      bnez r1, loop
//!      halt",
//! )?;
//!
//! // Architectural execution:
//! let mut m = Machine::new(program.clone());
//! m.run_to_halt(1_000)?;
//! assert_eq!(m.int_reg(1), 0);
//!
//! // Or as a dynamic trace:
//! let branches = trace(program)
//!     .filter_map(Result::ok)
//!     .filter(|d| d.branch.is_some())
//!     .count();
//! assert_eq!(branches, 4);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod decoded;
mod machine;
mod memory;
mod trace;

pub use decoded::{DecodedInst, TraceSource};
pub use machine::{trace, EmuError, Machine, Trace};
pub use memory::Memory;
pub use trace::{BranchKind, BranchOutcome, DynInst, MemAccess};
