//! Sparse, paged byte-addressed memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressed memory.
///
/// Pages are allocated on first touch and read as zero before any
/// write, so programs can use arbitrarily-placed stacks and heaps
/// without explicit mapping. All multi-byte accesses are little-endian
/// and may be unaligned.
///
/// # Examples
///
/// ```
/// use clustered_emu::Memory;
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u8(0x9999_9999), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// The number of resident (touched-by-write) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: the whole access falls inside one page.
        let offset = (addr & OFFSET_MASK) as usize;
        if offset + N <= PAGE_SIZE {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&page[offset..offset + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        let offset = (addr & OFFSET_MASK) as usize;
        if offset + N <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[offset..offset + N].copy_from_slice(&bytes);
            return;
        }
        for (i, byte) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *byte);
        }
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, value.to_le_bytes());
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a little-endian `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_slice(&mut self, addr: u64, bytes: &[u8]) {
        for (i, byte) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *byte);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_write() {
        let mem = Memory::new();
        assert_eq!(mem.read_u64(0), 0);
        assert_eq!(mem.read_u8(u64::MAX), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn round_trip_widths() {
        let mut mem = Memory::new();
        mem.write_u8(10, 0xab);
        mem.write_u32(100, 0x1234_5678);
        mem.write_u64(200, 0x1122_3344_5566_7788);
        mem.write_f64(300, -2.75);
        assert_eq!(mem.read_u8(10), 0xab);
        assert_eq!(mem.read_u32(100), 0x1234_5678);
        assert_eq!(mem.read_u64(200), 0x1122_3344_5566_7788);
        assert_eq!(mem.read_f64(300), -2.75);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write_u64(0, 0x0807_0605_0403_0201);
        for i in 0..8 {
            assert_eq!(mem.read_u8(i), (i + 1) as u8);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = PAGE_SIZE as u64 - 4; // straddles a page boundary
        mem.write_u64(addr, 0xdead_beef_cafe_f00d);
        assert_eq!(mem.read_u64(addr), 0xdead_beef_cafe_f00d);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn write_slice_round_trip() {
        let mut mem = Memory::new();
        mem.write_slice(50, &[1, 2, 3, 4, 5]);
        assert_eq!(mem.read_u8(50), 1);
        assert_eq!(mem.read_u8(54), 5);
    }
}
