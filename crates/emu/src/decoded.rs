//! Pre-decoded dynamic instructions and the [`TraceSource`] seam.
//!
//! The timing simulator needs, per dynamic instruction, exactly the
//! *decoded* facts: op class, source/destination registers, the memory
//! access, and the branch outcome. Historically it consumed
//! [`DynInst`] records (which carry the full static
//! [`Inst`](clustered_isa::Inst)) through an `Iterator<Item = DynInst>`
//! bound and re-derived those facts per instruction in its dispatch
//! stage. [`TraceSource`] generalizes that seam: any instruction
//! source hands the pipeline [`DecodedInst`] entries, so decode work
//! happens once per source record — or, for a compiled trace
//! (`clustered-workloads`' `CompiledTrace`), once per *static program
//! slot* ahead of time.
//!
//! Every `Iterator<Item = DynInst>` is a `TraceSource` through the
//! blanket impl (decoding on the fly), so live emulation and plain
//! captured-trace replay need no changes at their call sites.

use crate::trace::{BranchOutcome, DynInst, MemAccess};
use clustered_isa::{ArchReg, OpClass};

/// One dynamic instruction, fully decoded for the timing model: the
/// scheduling facts a pipeline stage needs, with no reference back to
/// the static [`Inst`](clustered_isa::Inst) or the program text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedInst {
    /// Position in the dynamic instruction stream (0-based).
    pub seq: u64,
    /// The instruction index this was fetched from.
    pub pc: u32,
    /// Functional class (also determines the functional-unit group and
    /// issue-queue domain, which are pure functions of the class).
    pub class: OpClass,
    /// Source registers, at most two. Zero-register reads carry no
    /// dependence and appear as `None`; a store's second source is its
    /// data value.
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register (zero-register writes report `None`).
    pub dest: Option<ArchReg>,
    /// The memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// The control-transfer outcome, for branches/jumps/calls/returns.
    pub branch: Option<BranchOutcome>,
}

impl DecodedInst {
    /// Decodes a [`DynInst`] by querying its static instruction —
    /// the per-record decode the blanket [`TraceSource`] impl performs.
    pub fn from_dyn(d: &DynInst) -> DecodedInst {
        DecodedInst {
            seq: d.seq,
            pc: d.pc,
            class: d.inst.op_class(),
            srcs: d.inst.sources(),
            dest: d.inst.dest(),
            mem: d.mem,
            branch: d.branch,
        }
    }
}

/// A source of pre-decoded dynamic instructions for the timing model.
///
/// Implementors must uphold the **run contract** of
/// [`next_run`](TraceSource::next_run): a control transfer ends a run,
/// so only the final appended entry of any run may carry a branch
/// outcome. The fetch stage relies on this to process run bodies
/// without per-instruction branch checks and to consult its branch
/// predictor once per run tail.
pub trait TraceSource {
    /// The next decoded instruction, or `None` once the source is
    /// exhausted.
    fn next_decoded(&mut self) -> Option<DecodedInst>;

    /// Appends up to `max` decoded instructions to `out`, stopping
    /// early after appending a control transfer, and returns how many
    /// were appended. Returns 0 only when the source is exhausted (or
    /// `max` is 0); entries before the last appended one never carry a
    /// branch outcome.
    fn next_run(&mut self, max: usize, out: &mut Vec<DecodedInst>) -> usize {
        let mut n = 0;
        while n < max {
            let Some(d) = self.next_decoded() else { break };
            let ends_run = d.branch.is_some();
            out.push(d);
            n += 1;
            if ends_run {
                break;
            }
        }
        n
    }
}

impl<I: Iterator<Item = DynInst>> TraceSource for I {
    fn next_decoded(&mut self) -> Option<DecodedInst> {
        self.next().map(|d| DecodedInst::from_dyn(&d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{BranchKind, BranchOutcome};
    use clustered_isa::{ArchReg, Inst, IntReg, MemWidth};

    fn dyn_inst(seq: u64, pc: u32, inst: Inst, branch: Option<BranchOutcome>) -> DynInst {
        DynInst { seq, pc, inst, mem: None, branch }
    }

    #[test]
    fn from_dyn_decodes_class_sources_and_dest() {
        let r = |i| IntReg::new(i).unwrap();
        let load = DynInst {
            seq: 7,
            pc: 3,
            inst: Inst::Load { width: MemWidth::Double, rd: r(1), base: r(2), offset: 8 },
            mem: Some(MemAccess { addr: 64, size: 8, is_store: false }),
            branch: None,
        };
        let d = DecodedInst::from_dyn(&load);
        assert_eq!(d.seq, 7);
        assert_eq!(d.pc, 3);
        assert_eq!(d.class, OpClass::Load);
        assert_eq!(d.srcs, [Some(ArchReg::Int(r(2))), None]);
        assert_eq!(d.dest, Some(ArchReg::Int(r(1))));
        assert_eq!(d.mem, load.mem);
        assert_eq!(d.branch, None);
    }

    #[test]
    fn iterator_blanket_impl_decodes_on_the_fly() {
        let outcome =
            BranchOutcome { kind: BranchKind::Jump, taken: true, next_pc: 0 };
        let stream = vec![
            dyn_inst(0, 0, Inst::Li { rd: IntReg::new(1).unwrap(), imm: 1 }, None),
            dyn_inst(1, 1, Inst::Jump { target: 0 }, Some(outcome)),
        ];
        let mut src = stream.into_iter();
        let a = src.next_decoded().unwrap();
        assert_eq!((a.seq, a.class), (0, OpClass::IntAlu));
        let b = src.next_decoded().unwrap();
        assert_eq!(b.branch, Some(outcome));
        assert!(src.next_decoded().is_none());
    }

    /// The default `next_run` stops after a branch and at `max`, and
    /// never places a branch anywhere but the run tail.
    #[test]
    fn default_next_run_ends_at_branches_and_max() {
        let jump = |seq, pc| {
            dyn_inst(
                seq,
                pc,
                Inst::Jump { target: 0 },
                Some(BranchOutcome { kind: BranchKind::Jump, taken: true, next_pc: 0 }),
            )
        };
        let alu = |seq, pc| dyn_inst(seq, pc, Inst::Li { rd: IntReg::new(1).unwrap(), imm: 0 }, None);
        let mut src = vec![alu(0, 0), alu(1, 1), jump(2, 2), alu(3, 0), alu(4, 1)].into_iter();
        let mut out = Vec::new();
        assert_eq!(src.next_run(8, &mut out), 3, "run ends at the branch");
        assert!(out[..2].iter().all(|d| d.branch.is_none()));
        assert!(out[2].branch.is_some());
        out.clear();
        assert_eq!(src.next_run(1, &mut out), 1, "max caps a run mid-block");
        assert_eq!(out[0].seq, 3);
        out.clear();
        assert_eq!(src.next_run(8, &mut out), 1, "trace tail ends the final run");
        assert_eq!(src.next_run(8, &mut out), 1 - 1, "exhausted source yields 0");
    }
}
