//! The functional emulator.

use crate::memory::Memory;
use crate::trace::{BranchKind, BranchOutcome, DynInst, MemAccess};
use clustered_isa::{
    AluOp, FpCmpOp, FpOp, FpUnOp, Inst, MemWidth, MulDivOp, Operand, Program,
    DATA_BASE, STACK_BASE,
};
use std::error::Error;
use std::fmt;

/// An execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// The program counter left the text segment without halting.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u32,
        /// The length of the text segment.
        text_len: usize,
    },
    /// An indirect control transfer (`jr`/`callr`/`ret`) targeted an
    /// instruction index outside the text segment. Checked against the
    /// full 64-bit register value: a corrupted jump-table entry above
    /// `u32::MAX` faults here instead of being silently truncated to a
    /// bogus-but-valid-looking PC.
    IndirectTargetOutOfRange {
        /// The PC of the faulting indirect branch.
        pc: u32,
        /// The full untruncated target register value.
        target: u64,
        /// The length of the text segment.
        text_len: usize,
    },
    /// `step` was called after the machine halted.
    Halted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc, text_len } => {
                write!(f, "pc {pc} outside text segment of {text_len} instructions")
            }
            EmuError::IndirectTargetOutOfRange { pc, target, text_len } => {
                write!(
                    f,
                    "indirect branch at pc {pc} targets {target}, outside text \
                     segment of {text_len} instructions"
                )
            }
            EmuError::Halted => write!(f, "machine has halted"),
        }
    }
}

impl Error for EmuError {}

/// The architectural machine: registers, memory, and a program.
///
/// Stepping the machine executes one instruction and yields the
/// [`DynInst`] trace record the timing simulator consumes.
///
/// # Examples
///
/// ```
/// use clustered_isa::assemble;
/// use clustered_emu::Machine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble("li r1, 6\n mul r2, r1, r1\n halt")?;
/// let mut machine = Machine::new(program);
/// machine.run_to_halt(100)?;
/// assert_eq!(machine.int_reg(2), 36);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    regs: [u64; 32],
    fregs: [f64; 32],
    pc: u32,
    mem: Memory,
    halted: bool,
    icount: u64,
}

impl Machine {
    /// Creates a machine with the program's data segment loaded at
    /// [`DATA_BASE`], `sp` initialised to [`STACK_BASE`], and the
    /// program counter at the entry point.
    pub fn new(program: Program) -> Machine {
        let mut mem = Memory::new();
        mem.write_slice(DATA_BASE, program.data());
        let mut regs = [0u64; 32];
        regs[30] = STACK_BASE;
        Machine {
            pc: program.entry(),
            program,
            regs,
            fregs: [0.0; 32],
            mem,
            halted: false,
            icount: 0,
        }
    }

    /// Whether the machine has executed a `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The number of instructions executed so far.
    pub fn instructions_executed(&self) -> u64 {
        self.icount
    }

    /// The current program counter (an instruction index).
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads integer register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn int_reg(&self, index: usize) -> u64 {
        self.regs[index]
    }

    /// Reads floating-point register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn fp_reg(&self, index: usize) -> f64 {
        self.fregs[index]
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Immutable access to memory (for inspecting results in tests and
    /// examples).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory (for injecting inputs before a run).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    fn write_int(&mut self, index: u8, value: u64) {
        if index != 0 {
            self.regs[index as usize] = value;
        }
    }

    /// Validates an indirect control-transfer target against the full
    /// 64-bit register value before narrowing it to a PC.
    fn indirect_target(&self, pc: u32, target: u64) -> Result<u32, EmuError> {
        if target >= self.program.text().len() as u64 {
            return Err(EmuError::IndirectTargetOutOfRange {
                pc,
                target,
                text_len: self.program.text().len(),
            });
        }
        Ok(target as u32)
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::Halted`] if the machine already halted, and
    /// [`EmuError::PcOutOfRange`] if control flow escaped the text
    /// segment.
    pub fn step(&mut self) -> Result<DynInst, EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        let pc = self.pc;
        let inst = *self
            .program
            .fetch(pc)
            .ok_or(EmuError::PcOutOfRange { pc, text_len: self.program.text().len() })?;
        let mut mem_access = None;
        let mut branch = None;
        let mut next_pc = pc + 1;

        match inst {
            Inst::Alu { op, rd, rs1, src2 } => {
                let a = self.regs[rs1.index() as usize];
                let b = match src2 {
                    Operand::Reg(r) => self.regs[r.index() as usize],
                    Operand::Imm(i) => i as u64,
                };
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Sll => a.wrapping_shl(b as u32),
                    AluOp::Srl => a.wrapping_shr(b as u32),
                    AluOp::Sra => (a as i64).wrapping_shr(b as u32) as u64,
                    AluOp::Slt => ((a as i64) < (b as i64)) as u64,
                    AluOp::Sltu => (a < b) as u64,
                };
                self.write_int(rd.index(), v);
            }
            Inst::Li { rd, imm } => self.write_int(rd.index(), imm as u64),
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1.index() as usize] as i64;
                let b = self.regs[rs2.index() as usize] as i64;
                let v = match op {
                    MulDivOp::Mul => a.wrapping_mul(b),
                    MulDivOp::Div => {
                        if b == 0 {
                            -1
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    MulDivOp::Rem => {
                        if b == 0 {
                            a
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                };
                self.write_int(rd.index(), v as u64);
            }
            Inst::Fp { op, fd, fs1, fs2 } => {
                let a = self.fregs[fs1.index() as usize];
                let b = self.fregs[fs2.index() as usize];
                self.fregs[fd.index() as usize] = match op {
                    FpOp::Add => a + b,
                    FpOp::Sub => a - b,
                    FpOp::Mul => a * b,
                    FpOp::Div => a / b,
                    FpOp::Min => a.min(b),
                    FpOp::Max => a.max(b),
                };
            }
            Inst::FpUn { op, fd, fs } => {
                let a = self.fregs[fs.index() as usize];
                self.fregs[fd.index() as usize] = match op {
                    FpUnOp::Neg => -a,
                    FpUnOp::Abs => a.abs(),
                    FpUnOp::Mov => a,
                    FpUnOp::Sqrt => a.sqrt(),
                };
            }
            Inst::FpCmp { op, rd, fs1, fs2 } => {
                let a = self.fregs[fs1.index() as usize];
                let b = self.fregs[fs2.index() as usize];
                let v = match op {
                    FpCmpOp::Eq => a == b,
                    FpCmpOp::Lt => a < b,
                    FpCmpOp::Le => a <= b,
                };
                self.write_int(rd.index(), v as u64);
            }
            Inst::IntToFp { fd, rs } => {
                self.fregs[fd.index() as usize] = self.regs[rs.index() as usize] as i64 as f64;
            }
            Inst::FpToInt { rd, fs } => {
                let v = self.fregs[fs.index() as usize] as i64;
                self.write_int(rd.index(), v as u64);
            }
            Inst::Fli { fd, imm } => self.fregs[fd.index() as usize] = imm,
            Inst::Load { width, rd, base, offset } => {
                let addr = self.regs[base.index() as usize].wrapping_add(offset as u64);
                let v = match width {
                    MemWidth::Byte => self.mem.read_u8(addr) as u64,
                    MemWidth::Word => self.mem.read_u32(addr) as i32 as i64 as u64,
                    MemWidth::Double => self.mem.read_u64(addr),
                };
                self.write_int(rd.index(), v);
                mem_access =
                    Some(MemAccess { addr, size: width.bytes() as u8, is_store: false });
            }
            Inst::Store { width, rs, base, offset } => {
                let addr = self.regs[base.index() as usize].wrapping_add(offset as u64);
                let v = self.regs[rs.index() as usize];
                match width {
                    MemWidth::Byte => self.mem.write_u8(addr, v as u8),
                    MemWidth::Word => self.mem.write_u32(addr, v as u32),
                    MemWidth::Double => self.mem.write_u64(addr, v),
                }
                mem_access = Some(MemAccess { addr, size: width.bytes() as u8, is_store: true });
            }
            Inst::FpLoad { fd, base, offset } => {
                let addr = self.regs[base.index() as usize].wrapping_add(offset as u64);
                self.fregs[fd.index() as usize] = self.mem.read_f64(addr);
                mem_access = Some(MemAccess { addr, size: 8, is_store: false });
            }
            Inst::FpStore { fs, base, offset } => {
                let addr = self.regs[base.index() as usize].wrapping_add(offset as u64);
                self.mem.write_f64(addr, self.fregs[fs.index() as usize]);
                mem_access = Some(MemAccess { addr, size: 8, is_store: true });
            }
            Inst::Branch { cond, rs1, rs2, target } => {
                let a = self.regs[rs1.index() as usize];
                let b = self.regs[rs2.index() as usize];
                let taken = cond.eval(a, b);
                if taken {
                    next_pc = target;
                }
                branch =
                    Some(BranchOutcome { kind: BranchKind::Conditional, taken, next_pc });
            }
            Inst::Jump { target } => {
                next_pc = target;
                branch = Some(BranchOutcome { kind: BranchKind::Jump, taken: true, next_pc });
            }
            Inst::JumpReg { rs } => {
                next_pc = self.indirect_target(pc, self.regs[rs.index() as usize])?;
                branch =
                    Some(BranchOutcome { kind: BranchKind::Indirect, taken: true, next_pc });
            }
            Inst::Call { target } => {
                self.write_int(31, (pc + 1) as u64);
                next_pc = target;
                branch = Some(BranchOutcome { kind: BranchKind::Call, taken: true, next_pc });
            }
            Inst::CallReg { rs } => {
                // Validate before writing the return address so a
                // faulting call leaves the machine state untouched.
                next_pc = self.indirect_target(pc, self.regs[rs.index() as usize])?;
                self.write_int(31, (pc + 1) as u64);
                branch =
                    Some(BranchOutcome { kind: BranchKind::IndirectCall, taken: true, next_pc });
            }
            Inst::Ret => {
                next_pc = self.indirect_target(pc, self.regs[31])?;
                branch = Some(BranchOutcome { kind: BranchKind::Return, taken: true, next_pc });
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        self.pc = next_pc;
        let record = DynInst { seq: self.icount, pc, inst, mem: mem_access, branch };
        self.icount += 1;
        Ok(record)
    }

    /// Runs until `halt` or until `max_instructions` have executed.
    ///
    /// Returns the number of instructions executed by this call.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from [`Machine::step`]; calling this
    /// on an already-halted machine returns `Ok(0)`.
    pub fn run_to_halt(&mut self, max_instructions: u64) -> Result<u64, EmuError> {
        let mut executed = 0;
        while !self.halted && executed < max_instructions {
            self.step()?;
            executed += 1;
        }
        Ok(executed)
    }

    /// Converts this machine into a [`Trace`] iterator, preserving any
    /// state already set up (pre-written memory, executed warm-up).
    ///
    /// # Examples
    ///
    /// ```
    /// use clustered_isa::assemble;
    /// use clustered_emu::Machine;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut m = Machine::new(assemble("ld r1, 0(r2)\nhalt")?);
    /// m.memory_mut().write_u64(0, 99);
    /// let first = m.into_trace().next().unwrap()?;
    /// assert!(first.mem.is_some());
    /// # Ok(())
    /// # }
    /// ```
    pub fn into_trace(self) -> Trace {
        Trace { machine: self, errored: false }
    }
}

/// An iterator over a machine's dynamic instruction stream.
///
/// Produced by [`trace`]; ends at `halt` (the `halt` itself is not
/// yielded) or yields an `Err` once if execution goes wrong, then ends.
#[derive(Debug)]
pub struct Trace {
    machine: Machine,
    errored: bool,
}

impl Trace {
    /// The underlying machine (for inspecting final state after the
    /// iterator ends).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }
}

impl Iterator for Trace {
    type Item = Result<DynInst, EmuError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.machine.is_halted() || self.errored {
            return None;
        }
        match self.machine.step() {
            Ok(d) if matches!(d.inst, Inst::Halt) => None,
            Err(e) => {
                self.errored = true;
                Some(Err(e))
            }
            ok => Some(ok),
        }
    }
}

/// Streams the dynamic instruction trace of `program`.
///
/// # Examples
///
/// ```
/// use clustered_isa::assemble;
/// use clustered_emu::trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 3\nloop: addi r1, r1, -1\n bnez r1, loop\n halt")?;
/// let n = trace(p).count();
/// assert_eq!(n, 7); // li + 3 × (addi + bnez)
/// # Ok(())
/// # }
/// ```
pub fn trace(program: Program) -> Trace {
    Trace { machine: Machine::new(program), errored: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustered_isa::assemble;

    fn run(src: &str) -> Machine {
        let mut m = Machine::new(assemble(src).unwrap());
        m.run_to_halt(1_000_000).unwrap();
        assert!(m.is_halted(), "program did not halt");
        m
    }

    #[test]
    fn arithmetic_and_logic() {
        let m = run(
            "li r1, 10\n li r2, 3\n add r3, r1, r2\n sub r4, r1, r2\n and r5, r1, r2\n \
             or r6, r1, r2\n xor r7, r1, r2\n sll r8, r1, 2\n srl r9, r1, 1\n halt",
        );
        assert_eq!(m.int_reg(3), 13);
        assert_eq!(m.int_reg(4), 7);
        assert_eq!(m.int_reg(5), 2);
        assert_eq!(m.int_reg(6), 11);
        assert_eq!(m.int_reg(7), 9);
        assert_eq!(m.int_reg(8), 40);
        assert_eq!(m.int_reg(9), 5);
    }

    #[test]
    fn signed_operations() {
        let m = run(
            "li r1, -8\n srai r2, r1, 1\n slti r3, r1, 0\n sltiu r4, r1, 0\n \
             li r5, 3\n div r6, r1, r5\n rem r7, r1, r5\n halt",
        );
        assert_eq!(m.int_reg(2) as i64, -4);
        assert_eq!(m.int_reg(3), 1);
        assert_eq!(m.int_reg(4), 0); // -8 as unsigned is huge
        assert_eq!(m.int_reg(6) as i64, -2);
        assert_eq!(m.int_reg(7) as i64, -2);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let m = run("li r1, 42\n li r2, 0\n div r3, r1, r2\n rem r4, r1, r2\n halt");
        assert_eq!(m.int_reg(3) as i64, -1);
        assert_eq!(m.int_reg(4), 42);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let m = run("li r0, 99\n add r1, r0, 5\n halt");
        assert_eq!(m.int_reg(0), 0);
        assert_eq!(m.int_reg(1), 5);
    }

    #[test]
    fn floating_point() {
        let m = run(
            "fli f1, 9.0\n fli f2, 2.0\n fadd f3, f1, f2\n fmul f4, f1, f2\n \
             fdiv f5, f1, f2\n fsqrt f6, f1\n fneg f7, f1\n flt r1, f2, f1\n \
             fcvti r2, f5\n li r3, 7\n fcvt f8, r3\n halt",
        );
        assert_eq!(m.fp_reg(3), 11.0);
        assert_eq!(m.fp_reg(4), 18.0);
        assert_eq!(m.fp_reg(5), 4.5);
        assert_eq!(m.fp_reg(6), 3.0);
        assert_eq!(m.fp_reg(7), -9.0);
        assert_eq!(m.int_reg(1), 1);
        assert_eq!(m.int_reg(2), 4);
        assert_eq!(m.fp_reg(8), 7.0);
    }

    #[test]
    fn loads_and_stores() {
        let m = run(
            ".data\nbuf: .space 32\n.text\n\
             la r1, buf\n li r2, -1\n sd r2, 0(r1)\n lw r3, 0(r1)\n lbu r4, 0(r1)\n \
             li r5, 0x11223344\n sw r5, 8(r1)\n ld r6, 8(r1)\n \
             fli f1, 1.25\n fsd f1, 16(r1)\n fld f2, 16(r1)\n halt",
        );
        assert_eq!(m.int_reg(3) as i64, -1); // lw sign-extends
        assert_eq!(m.int_reg(4), 0xff); // lbu zero-extends
        assert_eq!(m.int_reg(6), 0x11223344); // sw stores low 32 bits
        assert_eq!(m.fp_reg(2), 1.25);
    }

    #[test]
    fn data_segment_preloaded() {
        let m = run(".data\nv: .word 5, 6\n.text\nla r1, v\n ld r2, 0(r1)\n ld r3, 8(r1)\n halt");
        assert_eq!(m.int_reg(2), 5);
        assert_eq!(m.int_reg(3), 6);
    }

    #[test]
    fn loop_and_branches() {
        // sum 1..=10
        let m = run(
            "li r1, 10\n li r2, 0\nloop: add r2, r2, r1\n addi r1, r1, -1\n bgtz r1, loop\n halt",
        );
        assert_eq!(m.int_reg(2), 55);
    }

    #[test]
    fn call_and_return() {
        let m = run(
            "start: li r1, 5\n call double\n call double\n halt\n\
             double: add r1, r1, r1\n ret",
        );
        assert_eq!(m.int_reg(1), 20);
    }

    #[test]
    fn indirect_jump_table() {
        let m = run(
            ".data\ntab: .word case0, case1\n.text\n\
             start: li r1, 1\n la r2, tab\n slli r3, r1, 3\n add r2, r2, r3\n ld r4, 0(r2)\n \
             jr r4\n\
             case0: li r5, 100\n halt\n\
             case1: li r5, 200\n halt",
        );
        assert_eq!(m.int_reg(5), 200);
    }

    #[test]
    fn trace_records_memory_and_branches() {
        let p = assemble(".data\nb: .space 8\n.text\nla r1, b\n sd r1, 0(r1)\n beqz r0, t\n nop\nt: halt").unwrap();
        let recs: Vec<_> = trace(p).collect::<Result<_, _>>().unwrap();
        assert_eq!(recs.len(), 3); // la, sd, beqz (halt not yielded, nop skipped)
        let store = recs[1];
        assert_eq!(store.mem, Some(MemAccess { addr: DATA_BASE, size: 8, is_store: true }));
        let br = recs[2];
        let out = br.branch.unwrap();
        assert!(out.taken);
        assert_eq!(out.kind, BranchKind::Conditional);
        assert_eq!(out.next_pc, 4);
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut m = Machine::new(assemble("nop").unwrap());
        m.step().unwrap();
        assert_eq!(m.step(), Err(EmuError::PcOutOfRange { pc: 1, text_len: 1 }));
    }

    /// A corrupted jump-table entry above `u32::MAX` must fault rather
    /// than wrap: the low 32 bits here alias the valid PC 2, so silent
    /// truncation would continue executing at a bogus-but-plausible
    /// location.
    #[test]
    fn indirect_target_above_u32_faults_instead_of_wrapping() {
        let target = (1u64 << 32) + 2;
        let mut m = Machine::new(assemble(&format!("li r1, {target}\n jr r1\n halt")).unwrap());
        m.step().unwrap();
        assert_eq!(
            m.step(),
            Err(EmuError::IndirectTargetOutOfRange { pc: 1, target, text_len: 3 })
        );
    }

    /// Indirect transfers to indices past the text segment fault at the
    /// transfer itself, for all three indirect forms — and a faulting
    /// `callr` must not have written the return address.
    #[test]
    fn indirect_target_out_of_text_faults() {
        for (source, pc) in [
            ("li r1, 99\n jr r1\n halt", 1),
            ("li r1, 99\n callr r1\n halt", 1),
            ("li r31, 99\n ret\n halt", 1),
        ] {
            let mut m = Machine::new(assemble(source).unwrap());
            m.step().unwrap();
            assert_eq!(
                m.step(),
                Err(EmuError::IndirectTargetOutOfRange { pc, target: 99, text_len: 3 }),
                "{source}"
            );
        }
        let mut m = Machine::new(assemble("li r1, 99\n callr r1\n halt").unwrap());
        m.step().unwrap();
        let _ = m.step();
        assert_eq!(m.int_reg(31), 0, "faulting callr must not write ra");
    }

    #[test]
    fn step_after_halt_errors() {
        let mut m = Machine::new(assemble("halt").unwrap());
        m.step().unwrap();
        assert_eq!(m.step(), Err(EmuError::Halted));
    }

    #[test]
    fn run_to_halt_bounded() {
        let mut m = Machine::new(assemble("loop: j loop").unwrap());
        let n = m.run_to_halt(100).unwrap();
        assert_eq!(n, 100);
        assert!(!m.is_halted());
    }

    #[test]
    fn sp_initialised_and_usable() {
        let m = run("sd ra, -8(sp)\n ld r1, -8(sp)\n halt");
        assert_eq!(m.int_reg(1), 0); // ra starts 0, but the access works
        assert_eq!(m.int_reg(30), STACK_BASE);
    }
}
