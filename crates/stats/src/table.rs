//! Plain-text table rendering for experiment output.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use clustered_stats::Table;
///
/// let mut t = Table::new(&["bench", "IPC"]);
/// t.row(&["swim".to_string(), "1.67".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.contains("swim"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; the first column
    /// is left-aligned and the rest right-aligned (the common
    /// label-plus-numbers case). Use [`Table::with_aligns`] to override.
    pub fn new(headers: &[&str]) -> Table {
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the header count.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Appends a row from anything displayable.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<width$}", cells[i], width = widths[i])?,
                    Align::Right => write!(f, "{:>width$}", cells[i], width = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.5".into()]);
        t.row(&["longer".into(), "10.25".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].ends_with("  1.5"), "right-aligned number: {:?}", lines[2]);
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn row_display_accepts_mixed_types() {
        let mut t = Table::new(&["k", "v"]);
        t.row_display(&[&"x", &42]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.to_string().contains("42"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn wrong_align_count_panics() {
        let _ = Table::new(&["a", "b"]).with_aligns(&[Align::Left]);
    }
}
