//! Aggregate statistics used in the experiment reports.

/// Geometric mean of `values` (the paper aggregates speedups this way).
///
/// Returns `None` for an empty slice or any non-positive value.
///
/// # Examples
///
/// ```
/// use clustered_stats::geometric_mean;
/// let g = geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Harmonic mean of `values`.
///
/// Returns `None` for an empty slice or any non-positive value.
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    Some(values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>())
}

/// `value` as a multiple of `baseline` (IPC normalisation in figures).
///
/// Returns `None` if `baseline` is not positive and finite.
pub fn normalised(value: f64, baseline: f64) -> Option<f64> {
    (baseline > 0.0 && baseline.is_finite()).then(|| value / baseline)
}

/// Percentage change from `baseline` to `value` ("+11%" style).
///
/// Returns `None` if `baseline` is not positive and finite.
pub fn percent_change(value: f64, baseline: f64) -> Option<f64> {
    normalised(value, baseline).map(|r| (r - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[2.0, 0.0]), None);
        let single = geometric_mean(&[3.0]).unwrap();
        assert!((single - 3.0).abs() < 1e-12, "exp(ln 3) within rounding: {single}");
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), None);
        let h = harmonic_mean(&[1.0, 3.0]).unwrap();
        assert!((h - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalisation() {
        assert_eq!(normalised(3.0, 2.0), Some(1.5));
        assert_eq!(normalised(3.0, 0.0), None);
        assert!((percent_change(2.22, 2.0).unwrap() - 11.0).abs() < 1e-9);
        assert_eq!(percent_change(1.0, f64::NAN), None);
    }
}
