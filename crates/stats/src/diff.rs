//! Differential comparison of two exported result artifacts.
//!
//! [`diff_docs`] flattens the numeric leaves of two JSON documents to
//! dotted paths (`data.workloads[3].ipc_by_clusters.16`), aligns them
//! by [`Provenance`] when both sides carry one, and reports per-counter
//! absolute/relative deltas under a three-way verdict:
//!
//! * **identical** — every shared leaf (numeric or not) is equal and
//!   no leaf exists on only one side;
//! * **within-noise** — numeric leaves differ, but every relative
//!   delta is at or below the threshold (and nothing else changed);
//! * **drifted** — a numeric leaf exceeds the threshold, a non-numeric
//!   leaf changed, or a leaf appeared/disappeared.
//!
//! The provenance blocks themselves are *excluded* from the counter
//! walk: host, wall time, and run id legitimately differ between runs
//! of the same experiment and must not drag the verdict to "drifted".
//! `clustered diff` is the CLI face of this module.

use crate::provenance::Provenance;
use crate::Json;

/// Default relative-delta threshold separating "within noise" from
/// "drifted". The simulator is deterministic, so the default is
/// strict: any difference beyond float-formatting jitter drifts.
pub const DEFAULT_DIFF_THRESHOLD: f64 = 0.0;

/// One numeric leaf present on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// Dotted path of the leaf.
    pub path: String,
    /// Value in the first (baseline) document.
    pub a: f64,
    /// Value in the second (current) document.
    pub b: f64,
}

impl CounterDelta {
    /// `b - a`.
    pub fn abs_delta(&self) -> f64 {
        self.b - self.a
    }

    /// `(b - a) / |a|`, or 0 for two zeros, or infinity when only the
    /// baseline is zero.
    pub fn rel_delta(&self) -> f64 {
        if self.a == self.b {
            0.0
        } else if self.a == 0.0 {
            f64::INFINITY
        } else {
            (self.b - self.a) / self.a.abs()
        }
    }

    fn to_json(&self) -> Json {
        Json::object()
            .set("path", self.path.as_str())
            .set("a", self.a)
            .set("b", self.b)
            .set("abs_delta", self.abs_delta())
            .set("rel_delta", self.rel_delta())
    }
}

/// The machine-readable verdict of a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffVerdict {
    /// No leaf differs.
    Identical,
    /// Numeric leaves differ within the threshold.
    WithinNoise,
    /// At least one difference beyond the threshold (or a structural
    /// change: missing/extra/non-numeric-changed leaves).
    Drifted,
}

impl DiffVerdict {
    /// The verdict's wire string (`identical` / `within-noise` /
    /// `drifted`).
    pub fn as_str(self) -> &'static str {
        match self {
            DiffVerdict::Identical => "identical",
            DiffVerdict::WithinNoise => "within-noise",
            DiffVerdict::Drifted => "drifted",
        }
    }
}

/// How the two sides' provenance records relate.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceAlignment {
    /// Baseline provenance, when the artifact carries one.
    pub a: Option<Provenance>,
    /// Current provenance, when the artifact carries one.
    pub b: Option<Provenance>,
}

impl ProvenanceAlignment {
    /// `Some(true)` when both sides carry provenance identifying the
    /// same experiment, `Some(false)` when both carry provenance for
    /// different experiments, `None` when either side has none.
    pub fn same_experiment(&self) -> Option<bool> {
        match (&self.a, &self.b) {
            (Some(a), Some(b)) => Some(a.same_experiment(b)),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        let side = |p: &Option<Provenance>| match p {
            Some(p) => p.to_json(),
            None => Json::Null,
        };
        Json::object()
            .set("a", side(&self.a))
            .set("b", side(&self.b))
            .set(
                "same_experiment",
                match self.same_experiment() {
                    Some(v) => Json::Bool(v),
                    None => Json::Null,
                },
            )
    }
}

/// The full result of diffing two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Relative-delta threshold used for the verdict.
    pub threshold: f64,
    /// Provenance of both sides and their alignment.
    pub provenance: ProvenanceAlignment,
    /// Numeric leaves present on both sides **that differ**, sorted by
    /// descending |relative delta|.
    pub changed: Vec<CounterDelta>,
    /// Count of leaves compared equal (numeric and non-numeric).
    pub equal: usize,
    /// Non-numeric leaves present on both sides with different values.
    pub mismatched: Vec<String>,
    /// Leaf paths only in the baseline document.
    pub only_a: Vec<String>,
    /// Leaf paths only in the current document.
    pub only_b: Vec<String>,
}

impl DiffReport {
    /// The three-way verdict; see the module docs for the rules.
    pub fn verdict(&self) -> DiffVerdict {
        if !self.mismatched.is_empty() || !self.only_a.is_empty() || !self.only_b.is_empty() {
            return DiffVerdict::Drifted;
        }
        if self.changed.is_empty() {
            return DiffVerdict::Identical;
        }
        if self.changed.iter().all(|d| d.rel_delta().abs() <= self.threshold) {
            DiffVerdict::WithinNoise
        } else {
            DiffVerdict::Drifted
        }
    }

    /// The report as a JSON document (`clustered diff --json`).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("verdict", self.verdict().as_str())
            .set("threshold", self.threshold)
            .set("provenance", self.provenance.to_json())
            .set("equal_leaves", self.equal)
            .set("changed", Json::Arr(self.changed.iter().map(CounterDelta::to_json).collect()))
            .set(
                "mismatched",
                Json::Arr(self.mismatched.iter().map(|p| Json::from(p.as_str())).collect()),
            )
            .set("only_a", Json::Arr(self.only_a.iter().map(|p| Json::from(p.as_str())).collect()))
            .set("only_b", Json::Arr(self.only_b.iter().map(|p| Json::from(p.as_str())).collect()))
    }

    /// Human-readable rendering (`clustered diff` without `--json`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.provenance.same_experiment() {
            Some(true) => out.push_str("provenance: same experiment (trace, config, policy, seed)\n"),
            Some(false) => {
                out.push_str("provenance: DIFFERENT experiments\n");
                if let (Some(a), Some(b)) = (&self.provenance.a, &self.provenance.b) {
                    for (name, l, r) in [
                        ("trace", a.trace_name.as_str(), b.trace_name.as_str()),
                        ("policy", a.policy.as_str(), b.policy.as_str()),
                    ] {
                        if l != r {
                            out.push_str(&format!("  {name}: {l} vs {r}\n"));
                        }
                    }
                    if a.config_digest != b.config_digest {
                        out.push_str(&format!(
                            "  config digest: {:016x} vs {:016x}\n",
                            a.config_digest, b.config_digest
                        ));
                    }
                }
            }
            None => out.push_str("provenance: absent on at least one side\n"),
        }
        out.push_str(&format!(
            "{} equal leaves, {} changed, {} mismatched, {} only-baseline, {} only-current\n",
            self.equal,
            self.changed.len(),
            self.mismatched.len(),
            self.only_a.len(),
            self.only_b.len(),
        ));
        for d in &self.changed {
            out.push_str(&format!(
                "  {:<48} {:>14} -> {:<14} ({:+.3}%)\n",
                d.path,
                trim_num(d.a),
                trim_num(d.b),
                d.rel_delta() * 100.0
            ));
        }
        for p in &self.mismatched {
            out.push_str(&format!("  {p:<48} non-numeric values differ\n"));
        }
        for p in &self.only_a {
            out.push_str(&format!("  {p:<48} only in baseline\n"));
        }
        for p in &self.only_b {
            out.push_str(&format!("  {p:<48} only in current\n"));
        }
        out.push_str(&format!("verdict: {}\n", self.verdict().as_str()));
        out
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.6}")
    }
}

/// One leaf of the flattened document.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Other(String), // serialized non-numeric scalar
}

fn flatten_into(doc: &Json, path: &mut String, out: &mut Vec<(String, Leaf)>) {
    match doc {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                // The provenance block (and the envelope's own schema
                // version) is circumstance, not measurement.
                if path.is_empty() && (k == "provenance" || k == "schema_version") {
                    continue;
                }
                let len = path.len();
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(k);
                flatten_into(v, path, out);
                path.truncate(len);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                let len = path.len();
                path.push_str(&format!("[{i}]"));
                flatten_into(v, path, out);
                path.truncate(len);
            }
        }
        other => {
            let leaf = match other.as_f64() {
                Some(n) => Leaf::Num(n),
                None => Leaf::Other(other.to_string_compact()),
            };
            out.push((path.clone(), leaf));
        }
    }
}

/// Extracts the provenance block and the comparable payload of an
/// artifact. Envelope documents (`{schema_version, provenance, data}`)
/// compare their `data` subtree; flat documents (`clustered run
/// --json`) compare everything except the `provenance` key.
pub fn split_artifact(doc: &Json) -> (Option<Provenance>, &Json) {
    let prov = doc.get("provenance").and_then(Provenance::from_json);
    match doc.get("data") {
        Some(data) if doc.get("provenance").is_some() => (prov, data),
        _ => (prov, doc),
    }
}

/// Diffs two artifacts; see the module docs for the rules.
pub fn diff_docs(a: &Json, b: &Json, threshold: f64) -> DiffReport {
    let (pa, da) = split_artifact(a);
    let (pb, db) = split_artifact(b);
    let mut la = Vec::new();
    let mut lb = Vec::new();
    flatten_into(da, &mut String::new(), &mut la);
    flatten_into(db, &mut String::new(), &mut lb);

    let mut changed = Vec::new();
    let mut mismatched = Vec::new();
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let mut equal = 0usize;

    // Both flattenings preserve document order; align by path lookup
    // so key reordering alone is not drift.
    let index_b: std::collections::HashMap<&str, &Leaf> =
        lb.iter().map(|(p, l)| (p.as_str(), l)).collect();
    let paths_a: std::collections::HashSet<&str> = la.iter().map(|(p, _)| p.as_str()).collect();

    for (path, leaf_a) in &la {
        match index_b.get(path.as_str()) {
            None => only_a.push(path.clone()),
            Some(leaf_b) => match (leaf_a, leaf_b) {
                (Leaf::Num(x), Leaf::Num(y)) => {
                    if x == y {
                        equal += 1;
                    } else {
                        changed.push(CounterDelta { path: path.clone(), a: *x, b: *y });
                    }
                }
                (x, y) => {
                    if x == *y {
                        equal += 1;
                    } else {
                        mismatched.push(path.clone());
                    }
                }
            },
        }
    }
    for (path, _) in &lb {
        if !paths_a.contains(path.as_str()) {
            only_b.push(path.clone());
        }
    }
    changed.sort_by(|x, y| {
        y.rel_delta()
            .abs()
            .partial_cmp(&x.rel_delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.path.cmp(&y.path))
    });

    DiffReport {
        threshold,
        provenance: ProvenanceAlignment { a: pa, b: pb },
        changed,
        equal,
        mismatched,
        only_a,
        only_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::provenance::envelope;

    fn doc(ipc: f64, cycles: u64) -> Json {
        Json::object()
            .set("workload", "gzip")
            .set("ipc", ipc)
            .set("cycles", cycles)
            .set("cycles_at_config", Json::Arr(vec![Json::from(cycles), Json::from(0u64)]))
    }

    #[test]
    fn identical_docs_verdict_identical() {
        let r = diff_docs(&doc(1.5, 100), &doc(1.5, 100), 0.0);
        assert_eq!(r.verdict(), DiffVerdict::Identical);
        assert_eq!(r.changed, Vec::new());
        assert_eq!(r.equal, 5);
        assert_eq!(r.to_json().get("verdict").and_then(Json::as_str), Some("identical"));
    }

    #[test]
    fn numeric_drift_is_reported_per_counter_sorted_by_magnitude() {
        let r = diff_docs(&doc(1.5, 100), &doc(1.2, 101), 0.0);
        assert_eq!(r.verdict(), DiffVerdict::Drifted);
        let paths: Vec<&str> = r.changed.iter().map(|d| d.path.as_str()).collect();
        // ipc moved 20%, cycles 1%: ipc sorts first.
        assert_eq!(paths, vec!["ipc", "cycles", "cycles_at_config[0]"]);
        assert!((r.changed[0].abs_delta() + 0.3).abs() < 1e-12);
        assert!((r.changed[0].rel_delta() + 0.2).abs() < 1e-12);
    }

    #[test]
    fn threshold_separates_noise_from_drift() {
        let a = doc(1.00, 100);
        let b = doc(1.01, 100);
        assert_eq!(diff_docs(&a, &b, 0.05).verdict(), DiffVerdict::WithinNoise);
        assert_eq!(diff_docs(&a, &b, 0.001).verdict(), DiffVerdict::Drifted);
    }

    #[test]
    fn structural_changes_always_drift() {
        let a = doc(1.0, 100);
        let extra = doc(1.0, 100).set("new_counter", 7u64);
        let r = diff_docs(&a, &extra, 1.0);
        assert_eq!(r.verdict(), DiffVerdict::Drifted);
        assert_eq!(r.only_b, vec!["new_counter".to_string()]);
        let renamed = Json::object().set("workload", "swim");
        let r = diff_docs(&Json::object().set("workload", "gzip"), &renamed, 1.0);
        assert_eq!(r.verdict(), DiffVerdict::Drifted);
        assert_eq!(r.mismatched, vec!["workload".to_string()]);
    }

    #[test]
    fn provenance_is_excluded_from_counters_but_drives_alignment() {
        let pa = Provenance::new("gzip", Some(1), 42, "explore").with_wall_seconds(0.5);
        let pb = Provenance::new("gzip", Some(1), 42, "explore").with_wall_seconds(9.0);
        let a = envelope(&pa, doc(1.5, 100));
        let b = envelope(&pb, doc(1.5, 100));
        let r = diff_docs(&a, &b, 0.0);
        // Different wall time/run id, same experiment: still identical.
        assert_eq!(r.verdict(), DiffVerdict::Identical);
        assert_eq!(r.provenance.same_experiment(), Some(true));

        let pc = Provenance::new("gzip", Some(1), 42, "fixed16");
        let c = envelope(&pc, doc(1.2, 90));
        let r = diff_docs(&a, &c, 0.0);
        assert_eq!(r.provenance.same_experiment(), Some(false));
        assert_eq!(r.verdict(), DiffVerdict::Drifted);
    }

    #[test]
    fn flat_run_docs_with_inline_provenance_compare_their_counters() {
        let prov = Provenance::new("gzip", Some(1), 42, "explore");
        let a = doc(1.5, 100).set("provenance", prov.to_json());
        let b = doc(1.5, 100).set("provenance", prov.to_json());
        let r = diff_docs(&a, &b, 0.0);
        assert_eq!(r.verdict(), DiffVerdict::Identical);
        assert!(r.provenance.same_experiment().unwrap());
    }

    #[test]
    fn report_json_round_trips_and_render_mentions_verdict() {
        let r = diff_docs(&doc(1.5, 100), &doc(1.2, 100), 0.0);
        let text = r.to_json().to_string_pretty();
        let parsed = json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("verdict").and_then(Json::as_str), Some("drifted"));
        assert!(r.render().contains("verdict: drifted"));
        assert!(r.render().contains("ipc"));
    }
}
