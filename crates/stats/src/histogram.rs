//! Histogram primitives for simulator observability: fixed-width and
//! power-of-two bucket histograms over `u64` samples, with percentile
//! queries and JSON export.

use crate::json::Json;

/// How a [`Histogram`] maps samples to buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Buckets {
    /// `width`-sized linear buckets starting at zero; the last bucket
    /// absorbs everything at or beyond the range.
    Linear { width: u64 },
    /// Bucket `i` holds values whose bit length is `i` (0, 1, 2–3, 4–7,
    /// …) — constant relative resolution for long-tailed quantities.
    Log2,
}

/// A bucketed histogram of `u64` samples.
///
/// Designed for hot simulator loops: recording is a shift or a divide
/// plus an increment, with no allocation after construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram of `buckets` linear buckets, each `width` wide; the
    /// last bucket also counts every sample at or beyond
    /// `buckets * width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `buckets` is zero.
    pub fn linear(width: u64, buckets: usize) -> Histogram {
        assert!(width > 0, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Histogram {
            buckets: Buckets::Linear { width },
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// A histogram of power-of-two buckets: 0, 1, 2–3, 4–7, … up to
    /// `u64::MAX`.
    pub fn log2() -> Histogram {
        Histogram {
            buckets: Buckets::Log2,
            counts: vec![0; 65],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(&self, value: u64) -> usize {
        match self.buckets {
            Buckets::Linear { width } => ((value / width) as usize).min(self.counts.len() - 1),
            Buckets::Log2 => (64 - value.leading_zeros()) as usize,
        }
    }

    /// The inclusive `(lo, hi)` value range of bucket `i`.
    fn bucket_range(&self, i: usize) -> (u64, u64) {
        match self.buckets {
            Buckets::Linear { width } => {
                let lo = i as u64 * width;
                if i == self.counts.len() - 1 {
                    (lo, u64::MAX)
                } else {
                    (lo, lo + width - 1)
                }
            }
            Buckets::Log2 => {
                if i == 0 {
                    (0, 0)
                } else {
                    // Bucket i holds values of bit length i: [2^(i-1),
                    // 2^i - 1]. The top bucket (i == 64) has no
                    // representable upper edge, so it saturates to
                    // u64::MAX explicitly rather than relying on
                    // wrapping arithmetic happening to land there.
                    let lo = 1u64 << (i - 1);
                    let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                    (lo, hi)
                }
            }
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = self.bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one sample `n` times (e.g. a per-cycle quantity weighted
    /// by cycles).
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = self.bucket_of(value);
        self.counts[b] += n;
        self.total += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// An upper bound for the `q`-quantile (`0.0..=1.0`): the inclusive
    /// upper edge of the bucket containing it, clamped to the observed
    /// maximum. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1, got {q}");
        if self.total == 0 {
            return None;
        }
        let rank = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(self.bucket_range(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucketings.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets, other.buckets, "cannot merge differently bucketed histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON export: summary statistics plus the non-empty buckets as
    /// `{"lo", "hi", "count"}` records (empty buckets are elided so
    /// log2 histograms stay compact).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = self.bucket_range(i);
                Json::object().set("lo", lo).set("hi", hi.min(self.max)).set("count", c)
            })
            .collect();
        Json::object()
            .set("count", self.total)
            .set("mean", self.mean())
            .set("min", self.min().map_or(Json::Null, Json::from))
            .set("max", self.max().map_or(Json::Null, Json::from))
            .set("p50", self.quantile(0.5).map_or(Json::Null, Json::from))
            .set("p95", self.quantile(0.95).map_or(Json::Null, Json::from))
            .set("p99", self.quantile(0.99).map_or(Json::Null, Json::from))
            .set("buckets", Json::Arr(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_count_and_clamp() {
        let mut h = Histogram::linear(10, 4); // 0-9, 10-19, 20-29, 30+
        for v in [0, 5, 9, 10, 25, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let j = h.to_json();
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(buckets[3].get("lo").and_then(Json::as_f64), Some(30.0));
    }

    #[test]
    fn log2_buckets_by_bit_length() {
        let mut h = Histogram::log2();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4..7 → bucket 3.
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 2);
        assert_eq!(h.counts[3], 2);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[21], 1);
    }

    /// The top log2 bucket (bit length 64) must report the exact
    /// saturated range [2^63, u64::MAX] — and the JSON export, now
    /// integer-preserving, must carry those bounds losslessly.
    #[test]
    fn log2_top_bucket_holds_u64_max() {
        let mut h = Histogram::log2();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.counts[64], 2);
        assert_eq!(h.bucket_range(64), (1u64 << 63, u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        let j = h.to_json();
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("lo").and_then(Json::as_u64), Some(1u64 << 63));
        assert_eq!(buckets[0].get("hi").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(buckets[0].get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("max").and_then(Json::as_u64), Some(u64::MAX));
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let mut h = Histogram::linear(1, 101);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        let p50 = h.quantile(0.5).unwrap();
        assert!((49..=51).contains(&p50), "p50 was {p50}");
        assert_eq!(h.quantile(1.0), Some(99));
        assert!(Histogram::linear(1, 1).quantile(0.5).is_none(), "empty → None");
    }

    #[test]
    fn mean_and_weighted_record() {
        let mut h = Histogram::linear(10, 10);
        h.record_n(4, 3);
        h.record(8);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        h.record_n(100, 0);
        assert_eq!(h.count(), 4, "zero-weight record is a no-op");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::linear(10, 4);
        let mut b = Histogram::linear(10, 4);
        a.record(5);
        b.record(15);
        b.record(35);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(35));
    }

    #[test]
    #[should_panic(expected = "differently bucketed")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::linear(10, 4);
        a.merge(&Histogram::log2());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Histogram::linear(5, 3);
        h.record(1);
        let j = h.to_json();
        assert_eq!(
            j.keys().unwrap(),
            vec!["count", "mean", "min", "max", "p50", "p95", "p99", "buckets"]
        );
    }
}
