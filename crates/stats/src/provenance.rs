//! Run provenance: the *who/what/where* of every exported artifact.
//!
//! Every result this workspace writes — `clustered run --json`, the
//! experiment binaries' `results/*.json`, decision JSONL, host
//! profiles, sweep heartbeats, the run ledger — embeds one
//! [`Provenance`] record so a number can always be traced back to the
//! exact trace, configuration, policy, code version, and host that
//! produced it. The ROADMAP's sweep-service (result caching keyed by
//! trace × config × policy) and sampled-simulation items both key off
//! this record.
//!
//! The record is deliberately split into *identity* fields that must
//! be stable across reruns of the same experiment (trace checksum,
//! config digest, policy, seed, versions) and *circumstance* fields
//! that will differ (host fingerprint, wall-clock duration, run id).
//! [`diff`](crate::diff) aligns two artifacts on the identity fields
//! and ignores the circumstance fields.

use crate::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Version of the provenance record itself (and of the
/// `{schema_version, provenance, data}` envelope): bump when the field
/// set changes incompatibly.
pub const PROVENANCE_SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit over `bytes` — the workspace's standard content
/// digest (the `.ctrace` file checksum uses the same function). Small,
/// dependency-free, and stable across platforms; not cryptographic.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The machine a run executed on. Best-effort: any field that cannot
/// be determined reads `"unknown"` (or 0 cpus) rather than failing the
/// run — provenance must never make an experiment fall over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// Host name from `$HOSTNAME` or `/etc/hostname`.
    pub hostname: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available hardware parallelism.
    pub cpus: u64,
}

impl HostFingerprint {
    /// Probes the current host.
    pub fn detect() -> HostFingerprint {
        let hostname = std::env::var("HOSTNAME")
            .ok()
            .filter(|h| !h.is_empty())
            .or_else(|| {
                std::fs::read_to_string("/etc/hostname")
                    .ok()
                    .map(|h| h.trim().to_string())
                    .filter(|h| !h.is_empty())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let cpus = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0);
        HostFingerprint {
            hostname,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus,
        }
    }

    /// The fingerprint as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("hostname", self.hostname.as_str())
            .set("os", self.os.as_str())
            .set("arch", self.arch.as_str())
            .set("cpus", self.cpus)
    }
}

/// `git describe --always --dirty` of the working tree, probed once
/// per process. `CLUSTERED_GIT_DESCRIBE` overrides the probe (set it
/// to the empty string to force `None`) — tests and hermetic CI use
/// this to stay deterministic.
fn git_describe() -> Option<String> {
    static DESCRIBE: OnceLock<Option<String>> = OnceLock::new();
    DESCRIBE
        .get_or_init(|| {
            if let Ok(v) = std::env::var("CLUSTERED_GIT_DESCRIBE") {
                return Some(v).filter(|v| !v.is_empty());
            }
            let out = std::process::Command::new("git")
                .args(["describe", "--always", "--dirty"])
                .output()
                .ok()?;
            if !out.status.success() {
                return None;
            }
            let text = String::from_utf8(out.stdout).ok()?;
            let text = text.trim();
            if text.is_empty() {
                None
            } else {
                Some(text.to_string())
            }
        })
        .clone()
}

/// A process-monotonic run id: epoch milliseconds at first use, the
/// process id, and a per-process counter — unique across concurrent
/// processes and ordered within one.
fn next_run_id() -> String {
    static EPOCH_MS: OnceLock<u128> = OnceLock::new();
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let ms = *EPOCH_MS.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0)
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("{ms:x}-{:x}-{n}", std::process::id())
}

/// One run's full provenance record. See the module docs for the
/// identity/circumstance split; the JSON schema is documented in
/// EXPERIMENTS.md and pinned by tests here and in `tests/cli.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// [`PROVENANCE_SCHEMA_VERSION`] at record creation.
    pub schema_version: u64,
    /// Workspace crate version (`CARGO_PKG_VERSION` of `clustered-stats`;
    /// the workspace versions in lock-step).
    pub crate_version: String,
    /// `git describe --always --dirty`, if a git tree was found.
    pub git_describe: Option<String>,
    /// Workload / trace name (or a grid label for multi-trace runs).
    pub trace_name: String,
    /// FNV-1a 64 checksum of the trace's packed records; `None` when
    /// the artifact does not derive from a single captured trace.
    pub trace_checksum: Option<u64>,
    /// `SimConfig` digest (exhaustive over every field; computed in
    /// `clustered-sim`), or a combined digest for grid artifacts.
    pub config_digest: u64,
    /// Reconfiguration-policy id (`fixed16`, `explore`, …; `grid` for
    /// multi-policy artifacts).
    pub policy: String,
    /// Random seed. The simulator is currently fully deterministic
    /// (no RNG), so this is always 0; the field is reserved for the
    /// ROADMAP's sampled-simulation item.
    pub seed: u64,
    /// The executing machine.
    pub host: HostFingerprint,
    /// Wall-clock duration of the measured run in seconds (0 until
    /// [`Provenance::with_wall_seconds`] stamps it).
    pub wall_seconds: f64,
    /// Process-monotonic run id.
    pub run_id: String,
}

impl Provenance {
    /// A record for one run: identity fields from the caller,
    /// circumstance fields probed from the process/host. Wall-clock
    /// duration starts at 0 — stamp it with
    /// [`Provenance::with_wall_seconds`] once the run finishes.
    pub fn new(
        trace_name: &str,
        trace_checksum: Option<u64>,
        config_digest: u64,
        policy: &str,
    ) -> Provenance {
        Provenance {
            schema_version: PROVENANCE_SCHEMA_VERSION,
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            git_describe: git_describe(),
            trace_name: trace_name.to_string(),
            trace_checksum,
            config_digest,
            policy: policy.to_string(),
            seed: 0,
            host: HostFingerprint::detect(),
            wall_seconds: 0.0,
            run_id: next_run_id(),
        }
    }

    /// The record with the measured wall-clock duration stamped in.
    pub fn with_wall_seconds(mut self, wall_seconds: f64) -> Provenance {
        self.wall_seconds = wall_seconds;
        self
    }

    /// The record as a JSON object (the `"provenance"` block of every
    /// exported artifact).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("schema_version", self.schema_version)
            .set("crate_version", self.crate_version.as_str())
            .set(
                "git_describe",
                match &self.git_describe {
                    Some(d) => Json::from(d.as_str()),
                    None => Json::Null,
                },
            )
            .set(
                "trace",
                Json::object().set("name", self.trace_name.as_str()).set(
                    "checksum",
                    match self.trace_checksum {
                        Some(c) => Json::from(c),
                        None => Json::Null,
                    },
                ),
            )
            .set("config_digest", self.config_digest)
            .set("policy", self.policy.as_str())
            .set("seed", self.seed)
            .set("host", self.host.to_json())
            .set("wall_seconds", self.wall_seconds)
            .set("run_id", self.run_id.as_str())
    }

    /// Parses a `"provenance"` block back into a record. Returns
    /// `None` when required fields are missing or mistyped — callers
    /// treat such artifacts as provenance-less rather than failing.
    pub fn from_json(doc: &Json) -> Option<Provenance> {
        let trace = doc.get("trace")?;
        let host = doc.get("host")?;
        Some(Provenance {
            schema_version: doc.get("schema_version").and_then(Json::as_u64)?,
            crate_version: doc.get("crate_version").and_then(Json::as_str)?.to_string(),
            git_describe: doc.get("git_describe").and_then(Json::as_str).map(str::to_string),
            trace_name: trace.get("name").and_then(Json::as_str)?.to_string(),
            trace_checksum: trace.get("checksum").and_then(Json::as_u64),
            config_digest: doc.get("config_digest").and_then(Json::as_u64)?,
            policy: doc.get("policy").and_then(Json::as_str)?.to_string(),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            host: HostFingerprint {
                hostname: host.get("hostname").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                os: host.get("os").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                arch: host.get("arch").and_then(Json::as_str).unwrap_or("unknown").to_string(),
                cpus: host.get("cpus").and_then(Json::as_u64).unwrap_or(0),
            },
            wall_seconds: doc.get("wall_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            run_id: doc.get("run_id").and_then(Json::as_str).unwrap_or("").to_string(),
        })
    }

    /// True when `other` identifies the *same experiment*: equal trace
    /// checksum (or both unknown with equal names), config digest,
    /// policy, and seed. Circumstance fields (host, wall time, run id,
    /// versions) are deliberately ignored.
    pub fn same_experiment(&self, other: &Provenance) -> bool {
        let same_trace = match (self.trace_checksum, other.trace_checksum) {
            (Some(a), Some(b)) => a == b,
            _ => self.trace_name == other.trace_name,
        };
        same_trace
            && self.config_digest == other.config_digest
            && self.policy == other.policy
            && self.seed == other.seed
    }
}

/// Wraps experiment `data` in the unified result envelope:
/// `{schema_version, provenance, data}`. Every `results/*.json`
/// artifact uses this shape.
pub fn envelope(provenance: &Provenance, data: Json) -> Json {
    Json::object()
        .set("schema_version", PROVENANCE_SCHEMA_VERSION)
        .set("provenance", provenance.to_json())
        .set("data", data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Provenance {
        Provenance::new("gzip", Some(0xdead_beef), 42, "explore").with_wall_seconds(1.5)
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn provenance_round_trips_through_json() {
        let p = sample();
        let text = p.to_json().to_string_pretty();
        let parsed = Provenance::from_json(&json::parse(&text).expect("valid JSON"))
            .expect("round-trip parse");
        assert_eq!(parsed, p);
    }

    #[test]
    fn run_ids_are_unique_and_monotonic_within_a_process() {
        let a = Provenance::new("t", None, 0, "p");
        let b = Provenance::new("t", None, 0, "p");
        assert_ne!(a.run_id, b.run_id);
        let tail = |id: &str| id.rsplit('-').next().unwrap().parse::<u64>().unwrap();
        assert!(tail(&a.run_id) < tail(&b.run_id));
    }

    #[test]
    fn same_experiment_ignores_circumstance_fields() {
        let a = sample();
        let mut b = sample(); // new run id, new wall time
        b.wall_seconds = 99.0;
        b.host.hostname = "elsewhere".into();
        assert!(a.same_experiment(&b));
        let mut c = sample();
        c.config_digest = 43;
        assert!(!a.same_experiment(&c));
        let mut d = sample();
        d.policy = "fixed16".into();
        assert!(!a.same_experiment(&d));
        let mut e = sample();
        e.trace_checksum = Some(1);
        assert!(!a.same_experiment(&e));
    }

    #[test]
    fn envelope_has_the_three_documented_keys() {
        let doc = envelope(&sample(), Json::object().set("ipc", 1.5));
        assert_eq!(doc.keys().unwrap(), &["schema_version", "provenance", "data"]);
        assert_eq!(doc.get("schema_version").and_then(Json::as_u64), Some(PROVENANCE_SCHEMA_VERSION));
        assert_eq!(
            doc.get("data").and_then(|d| d.get("ipc")).and_then(Json::as_f64),
            Some(1.5)
        );
        let prov = doc.get("provenance").expect("provenance block");
        assert!(Provenance::from_json(prov).is_some());
    }

    #[test]
    fn missing_fields_parse_to_none_not_panic() {
        assert_eq!(Provenance::from_json(&Json::object()), None);
        let partial = Json::object().set("schema_version", 1u64);
        assert_eq!(Provenance::from_json(&partial), None);
    }
}
