//! Reporting utilities for `clustered` experiments: aggregate means,
//! plain-text tables, simple text charts for regenerating the paper's
//! figures on a terminal, and the machine-readable side of the
//! observability layer — bucketed [`Histogram`]s and a dependency-free
//! [`json`] tree used by every exporter.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
mod histogram;
pub mod json;
pub mod ledger;
pub mod provenance;
mod summary;
mod table;

pub use diff::{
    diff_docs, split_artifact, CounterDelta, DiffReport, DiffVerdict, ProvenanceAlignment,
    DEFAULT_DIFF_THRESHOLD,
};
pub use histogram::Histogram;
pub use json::Json;
pub use ledger::{
    append_entry, read_ledger, LedgerEntry, LedgerReport, ReportRow, DEFAULT_LEDGER_PATH,
};
pub use provenance::{
    envelope, fnv1a_64, HostFingerprint, Provenance, PROVENANCE_SCHEMA_VERSION,
};
pub use summary::{geometric_mean, harmonic_mean, normalised, percent_change};
pub use table::{Align, Table};
