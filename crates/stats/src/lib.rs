//! Reporting utilities for `clustered` experiments: aggregate means,
//! plain-text tables, simple text charts for regenerating the paper's
//! figures on a terminal, and the machine-readable side of the
//! observability layer — bucketed [`Histogram`]s and a dependency-free
//! [`json`] tree used by every exporter.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
pub mod json;
mod summary;
mod table;

pub use histogram::Histogram;
pub use json::Json;
pub use summary::{geometric_mean, harmonic_mean, normalised, percent_change};
pub use table::{Align, Table};
