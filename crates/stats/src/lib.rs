//! Reporting utilities for `clustered` experiments: aggregate means,
//! plain-text tables, and simple text charts for regenerating the
//! paper's figures on a terminal.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod summary;
mod table;

pub use summary::{geometric_mean, harmonic_mean, normalised, percent_change};
pub use table::{Align, Table};
