//! A minimal, dependency-free JSON tree: build, serialize, and parse.
//!
//! The offline build environment resolves no external crates, so the
//! observability layer cannot use `serde`; this module provides the
//! small subset the exporters and their tests need. Serialization is
//! deterministic (object keys keep insertion order) so golden tests can
//! pin exact output.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer number. Non-finite values serialize as `null`
    /// (JSON has no NaN/Infinity), matching what `JSON.stringify` does.
    Num(f64),
    /// An integer, preserved exactly. Routing counters through `f64`
    /// silently corrupts values above 2^53 (cycle/committed counters in
    /// long runs, `min_ns` in bench output); `i128` covers the full
    /// `u64` and `i64` ranges losslessly.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) `key` in an object, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(pairs) = &mut self else { panic!("Json::set on a non-object") };
        let value = value.into();
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_string(), value)),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one. Integers are
    /// converted (lossily above 2^53 — use [`Json::as_u64`] or
    /// [`Json::as_i64`] where exactness matters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an exact `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys in order, if it is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Json::Obj(pairs) => Some(pairs.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }

    /// Serializes to a compact string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }

    /// Serializes with two-space indentation, for human-inspected files.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Writes `s` with JSON escaping, including the surrounding quotes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float: non-finite values as `null`, and integral values
/// with a trailing `.0` so the float/integer distinction survives a
/// serialize → [`parse`](crate::json::parse) round trip (whole numbers
/// without a fraction are [`Json::Int`]'s job).
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() {
        out.push_str(&format!("{n:.1}"));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(out, *n),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Json, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(out, other),
    }
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input where it was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (used by the golden/round-trip tests; the
/// exporters only serialize).
///
/// # Errors
///
/// Returns a [`JsonError`] naming the first offending byte offset.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Integer-looking numbers parse as Json::Int so u64-sized
        // counters round-trip exactly; anything with a fraction or
        // exponent (or beyond i128) falls back to f64.
        if !text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("bad number `{text}`"),
            offset: start,
        })
    }
}

/// Sorted-key view of an object, for key-set golden tests.
pub fn key_set(v: &Json) -> BTreeMap<String, &Json> {
    match v {
        Json::Obj(pairs) => pairs.iter().map(|(k, v)| (k.clone(), v)).collect(),
        _ => BTreeMap::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_serializes_objects_in_order() {
        let j = Json::object()
            .set("b", 1u64)
            .set("a", "x")
            .set("nested", Json::object().set("k", true));
        assert_eq!(j.to_string_compact(), r#"{"b":1,"a":"x","nested":{"k":true}}"#);
    }

    #[test]
    fn numbers_format_like_json() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3.0");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn strings_escape() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_string_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn round_trips_through_parse() {
        let j = Json::object()
            .set("ipc", 2.5)
            .set("name", "gzip \"fast\" \\ mode")
            .set("counts", vec![1u64, 2, 3])
            .set("flag", false)
            .set("nothing", Json::Null);
        let parsed = parse(&j.to_string_compact()).expect("own output parses");
        assert_eq!(parsed, j);
        let parsed_pretty = parse(&j.to_string_pretty()).expect("pretty output parses");
        assert_eq!(parsed_pretty, j);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "tru", "{\"a\" 1}", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").expect("valid");
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn set_replaces_existing_keys() {
        let j = Json::object().set("a", 1u64).set("a", 2u64);
        assert_eq!(j.to_string_compact(), r#"{"a":2}"#);
    }

    #[test]
    fn u64_counters_print_as_integer_literals() {
        assert_eq!(Json::from(1u64 << 40).to_string_compact(), "1099511627776");
        assert_eq!(Json::from(-3i64).to_string_compact(), "-3");
    }

    /// Integers above 2^53 (where f64 loses exactness) must survive a
    /// serialize → parse round trip bit-for-bit.
    #[test]
    fn u64_counters_above_2_pow_53_are_lossless() {
        let exact = (1u64 << 53) + 1; // first value an f64 cannot hold
        let j = Json::from(exact);
        assert_eq!(j.to_string_compact(), "9007199254740993");
        assert_eq!(parse(&j.to_string_compact()).unwrap(), j);
        assert_eq!(j.as_u64(), Some(exact));

        let max = Json::from(u64::MAX);
        assert_eq!(max.to_string_compact(), "18446744073709551615");
        let parsed = parse(&max.to_string_compact()).unwrap();
        assert_eq!(parsed.as_u64(), Some(u64::MAX));

        assert_eq!(Json::from(i64::MIN).as_i64(), Some(i64::MIN));
        // Conversion queries are range-checked, not wrapping.
        assert_eq!(Json::from(-1i64).as_u64(), None);
        assert_eq!(Json::from(u64::MAX).as_i64(), None);
    }

    /// Fractional and exponent-bearing numbers still parse as floats.
    #[test]
    fn parser_distinguishes_ints_from_floats() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(parse("3.0").unwrap(), Json::Num(3.0));
        assert_eq!(parse("3e2").unwrap(), Json::Num(300.0));
        // Beyond i128: falls back to f64 rather than failing.
        assert!(matches!(parse("1e40").unwrap(), Json::Num(_)));
    }
}
