//! The run ledger: an append-only JSONL registry of completed runs.
//!
//! Every run that produces an artifact appends one line to the ledger
//! — its [`Provenance`] plus a flat object of headline metrics — so
//! the question "what have I actually run, under which configuration,
//! and what did it score?" has a machine-readable answer that survives
//! artifact files being overwritten. `clustered report` aggregates the
//! ledger into a per-workload × policy comparison table.
//!
//! The format is deliberately line-oriented and append-only: a crashed
//! run leaves at most one truncated final line, which the reader skips
//! (and counts) rather than failing the whole file.

use crate::json::{self, Json};
use crate::provenance::Provenance;
use crate::table::Table;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;

/// Where runs are registered unless the caller overrides it.
pub const DEFAULT_LEDGER_PATH: &str = "results/ledger.jsonl";

/// One registered run: who ran (provenance) and what it scored
/// (headline metrics — a flat object, typically `ipc`, `cycles`,
/// `committed`).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Full provenance of the run.
    pub provenance: Provenance,
    /// Headline metrics, a flat JSON object.
    pub metrics: Json,
}

impl LedgerEntry {
    /// The entry as one JSON object (one ledger line).
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("provenance", self.provenance.to_json())
            .set("metrics", self.metrics.clone())
    }

    /// Parses one ledger line's object; `None` if the shape is wrong.
    pub fn from_json(doc: &Json) -> Option<LedgerEntry> {
        let provenance = Provenance::from_json(doc.get("provenance")?)?;
        let metrics = doc.get("metrics")?.clone();
        matches!(metrics, Json::Obj(_)).then_some(LedgerEntry { provenance, metrics })
    }
}

/// Appends `entry` as one compact JSON line to the ledger at `path`,
/// creating the file (and its parent directory) on first use.
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the line.
pub fn append_entry(path: &Path, entry: &LedgerEntry) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut line = entry.to_json().to_string_compact();
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// Reads every parseable entry from the ledger at `path`, in file
/// order. Returns the entries and the number of malformed lines
/// skipped (a crashed writer leaves at most one truncated tail line;
/// anything more suggests the file is not a ledger).
///
/// # Errors
///
/// Any I/O error from reading the file. A missing file is an error —
/// callers distinguishing "no ledger yet" should check existence.
pub fn read_ledger(path: &Path) -> io::Result<(Vec<LedgerEntry>, usize)> {
    let text = std::fs::read_to_string(path)?;
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match json::parse(line).ok().as_ref().and_then(LedgerEntry::from_json) {
            Some(e) => entries.push(e),
            None => skipped += 1,
        }
    }
    Ok((entries, skipped))
}

/// One row of the aggregated ledger report: all runs of `workload`
/// under `policy`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Trace name shared by the runs.
    pub workload: String,
    /// Policy identifier shared by the runs.
    pub policy: String,
    /// How many ledger entries aggregated into this row.
    pub runs: usize,
    /// Distinct configuration digests among them (>1 means the rows
    /// mix configurations and the mean should be read with care).
    pub configs: usize,
    /// Mean / min / max of the `ipc` metric over the runs (0.0 when
    /// the metric is absent).
    pub mean_ipc: f64,
    /// Minimum observed `ipc`.
    pub min_ipc: f64,
    /// Maximum observed `ipc`.
    pub max_ipc: f64,
    /// Run id of the most recent entry.
    pub last_run_id: String,
}

/// The ledger aggregated by workload × policy, rows sorted by
/// workload then policy.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerReport {
    /// Aggregated rows.
    pub rows: Vec<ReportRow>,
    /// Total entries aggregated.
    pub entries: usize,
    /// Malformed ledger lines skipped while reading.
    pub skipped: usize,
}

impl LedgerReport {
    /// Aggregates `entries` (from [`read_ledger`]) into per-
    /// workload × policy rows.
    pub fn build(entries: &[LedgerEntry], skipped: usize) -> LedgerReport {
        let mut groups: BTreeMap<(String, String), Vec<&LedgerEntry>> = BTreeMap::new();
        for e in entries {
            groups
                .entry((e.provenance.trace_name.clone(), e.provenance.policy.clone()))
                .or_default()
                .push(e);
        }
        let rows = groups
            .into_iter()
            .map(|((workload, policy), group)| {
                let ipcs: Vec<f64> = group
                    .iter()
                    .filter_map(|e| e.metrics.get("ipc").and_then(Json::as_f64))
                    .collect();
                let mut configs: Vec<u64> =
                    group.iter().map(|e| e.provenance.config_digest).collect();
                configs.sort_unstable();
                configs.dedup();
                let (mean, min, max) = if ipcs.is_empty() {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        ipcs.iter().sum::<f64>() / ipcs.len() as f64,
                        ipcs.iter().cloned().fold(f64::INFINITY, f64::min),
                        ipcs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    )
                };
                ReportRow {
                    workload,
                    policy,
                    runs: group.len(),
                    configs: configs.len(),
                    mean_ipc: mean,
                    min_ipc: min,
                    max_ipc: max,
                    last_run_id: group.last().map(|e| e.provenance.run_id.clone()).unwrap_or_default(),
                }
            })
            .collect();
        LedgerReport { rows, entries: entries.len(), skipped }
    }

    /// The report as one JSON document.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::object()
                    .set("workload", r.workload.as_str())
                    .set("policy", r.policy.as_str())
                    .set("runs", r.runs)
                    .set("configs", r.configs)
                    .set("mean_ipc", r.mean_ipc)
                    .set("min_ipc", r.min_ipc)
                    .set("max_ipc", r.max_ipc)
                    .set("last_run_id", r.last_run_id.as_str())
            })
            .collect();
        Json::object()
            .set("entries", self.entries)
            .set("skipped_lines", self.skipped)
            .set("rows", Json::Arr(rows))
    }

    /// The report as an aligned text table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["workload", "policy", "runs", "cfgs", "mean IPC", "min", "max"]);
        for r in &self.rows {
            t.row(&[
                r.workload.clone(),
                r.policy.clone(),
                r.runs.to_string(),
                r.configs.to_string(),
                format!("{:.4}", r.mean_ipc),
                format!("{:.4}", r.min_ipc),
                format!("{:.4}", r.max_ipc),
            ]);
        }
        let mut out = t.to_string();
        out.push_str(&format!(
            "{} entr{} aggregated, {} malformed line{} skipped\n",
            self.entries,
            if self.entries == 1 { "y" } else { "ies" },
            self.skipped,
            if self.skipped == 1 { "" } else { "s" },
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace: &str, policy: &str, ipc: f64, digest: u64) -> LedgerEntry {
        let mut p = Provenance::new(trace, Some(7), digest, policy);
        p.wall_seconds = 0.5;
        LedgerEntry { provenance: p, metrics: Json::object().set("ipc", ipc).set("cycles", 100u64) }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let e = entry("gzip", "explore", 1.25, 42);
        let parsed = json::parse(&e.to_json().to_string_compact()).unwrap();
        assert_eq!(LedgerEntry::from_json(&parsed), Some(e));
        assert_eq!(LedgerEntry::from_json(&Json::object()), None);
        let no_metrics = Json::object().set("provenance", entry("a", "b", 0.0, 0).provenance.to_json());
        assert_eq!(LedgerEntry::from_json(&no_metrics), None);
    }

    #[test]
    fn append_and_read_round_trip_with_corrupt_tail() {
        let dir = std::env::temp_dir().join(format!("clustered-ledger-{}", std::process::id()));
        let path = dir.join("nested").join("ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let a = entry("gzip", "explore", 1.0, 1);
        let b = entry("swim", "fixed16", 2.0, 2);
        append_entry(&path, &a).unwrap();
        append_entry(&path, &b).unwrap();
        // Simulate a crashed writer: a truncated trailing line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"provenance\": {\"trunc").unwrap();
        }
        let (entries, skipped) = read_ledger(&path).unwrap();
        assert_eq!(entries, vec![a, b]);
        assert_eq!(skipped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_groups_by_workload_and_policy() {
        let entries = vec![
            entry("gzip", "explore", 1.0, 1),
            entry("gzip", "explore", 2.0, 1),
            entry("gzip", "fixed4", 0.5, 1),
            entry("swim", "explore", 3.0, 9),
        ];
        let report = LedgerReport::build(&entries, 2);
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.entries, 4);
        assert_eq!(report.skipped, 2);
        let gzip_explore = &report.rows[0];
        assert_eq!((gzip_explore.workload.as_str(), gzip_explore.policy.as_str()), ("gzip", "explore"));
        assert_eq!(gzip_explore.runs, 2);
        assert_eq!(gzip_explore.configs, 1);
        assert_eq!((gzip_explore.mean_ipc, gzip_explore.min_ipc, gzip_explore.max_ipc), (1.5, 1.0, 2.0));
        assert_eq!(
            gzip_explore.last_run_id,
            entries[1].provenance.run_id,
            "last run id comes from the most recent entry"
        );
        let j = report.to_json();
        assert_eq!(j.get("rows").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        let text = report.render();
        assert!(text.contains("gzip") && text.contains("explore") && text.contains("1.5000"));
        assert!(text.contains("4 entries aggregated, 2 malformed lines skipped"));
    }

    #[test]
    fn report_counts_mixed_configs() {
        let entries = vec![entry("gzip", "explore", 1.0, 1), entry("gzip", "explore", 1.0, 2)];
        let report = LedgerReport::build(&entries, 0);
        assert_eq!(report.rows[0].configs, 2, "two distinct digests in one cell");
    }

    #[test]
    fn empty_report_renders() {
        let report = LedgerReport::build(&[], 0);
        assert!(report.rows.is_empty());
        assert!(report.render().contains("0 entries aggregated"));
    }
}
