//! A compact 64-bit load/store virtual RISC ISA, with an assembler and
//! disassembler, used as the instruction substrate of the `clustered`
//! processor simulator.
//!
//! The ISA exists so that the timing simulator can consume *real*
//! dynamic instruction streams — with genuine data dependences, branch
//! behaviour, and memory access patterns — without requiring Alpha
//! binaries. It is deliberately small (integer ALU, integer mul/div,
//! double-precision FP, loads/stores of 1/4/8 bytes, branches, calls),
//! which is all the workload kernels in `clustered-workloads` need.
//!
//! # Model
//!
//! * 32 integer registers `r0`..`r31` (`r0` is hardwired zero, `r30` =
//!   `sp`, `r31` = `ra`), 32 FP registers `f0`..`f31` holding `f64`.
//! * The program counter is an *instruction index* into the text
//!   segment; every instruction advances it by 1.
//! * Data lives at [`DATA_BASE`] and is byte-addressed; a conventional
//!   stack top is exported as [`STACK_BASE`].
//!
//! # Assembler syntax
//!
//! One statement per line; `#` and `;` start comments; `label:` defines
//! a symbol in the current section.
//!
//! ```text
//! .data
//! vec:   .word 1, 2, 3          # 64-bit little-endian values
//! tab:   .word handler          # labels store their address/index
//! buf:   .space 64              # zero bytes
//!        .align 8
//! pi:    .double 3.14159
//! .text
//! start: la   r1, vec           # load a symbol's address
//!        ld   r2, 0(r1)         # memory operand: offset(base)
//!        addi r2, r2, 1         # ALU ops accept register or immediate
//!        beqz r2, done          # rich branch sugar (beqz/bnez/bgt/...)
//!        call handler
//! done:  halt
//! handler: ret
//! ```
//!
//! Execution begins at the `start` label if present, otherwise at the
//! first instruction.
//!
//! # Examples
//!
//! ```
//! use clustered_isa::{assemble, disassemble};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("start: li r1, 7\n mul r2, r1, r1\n halt")?;
//! assert_eq!(disassemble(&program.text()[1]), "mul r2, r1, r1");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod asm;
mod disasm;
mod inst;
mod program;
mod reg;

pub use asm::{assemble, AsmError};
pub use disasm::disassemble;
pub use inst::{
    AluOp, BranchCond, FpCmpOp, FpOp, FpUnOp, Inst, MemWidth, MulDivOp, OpClass, Operand,
};
pub use program::{Program, Symbol, DATA_BASE, STACK_BASE};
pub use reg::{ArchReg, FpReg, IntReg, NUM_FP_REGS, NUM_INT_REGS};
