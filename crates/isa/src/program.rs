//! The assembled program container.

use crate::inst::Inst;
use std::collections::HashMap;
use std::fmt;

/// Base virtual address of the data segment.
///
/// Text addresses are instruction indices and live in a separate
/// namespace; only data (and stack/heap) addresses refer to memory.
pub const DATA_BASE: u64 = 0x1000_0000;

/// Base virtual address of the stack segment (the stack grows down
/// from here; programs load it into `sp` themselves via `la`/`li`).
pub const STACK_BASE: u64 = 0x7fff_0000;

/// Where an assembler symbol points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// A label in the text segment: an instruction index.
    Text(u32),
    /// A label in the data segment: a virtual byte address.
    Data(u64),
}

/// An assembled program: text, initialised data, and the symbol table.
///
/// # Examples
///
/// ```
/// use clustered_isa::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     "start: li r1, 41
///             addi r1, r1, 1
///             halt",
/// )?;
/// assert_eq!(program.text().len(), 3);
/// assert_eq!(program.entry(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    text: Vec<Inst>,
    data: Vec<u8>,
    entry: u32,
    symbols: HashMap<String, Symbol>,
}

impl Program {
    /// Builds a program from raw parts.
    ///
    /// `entry` is the instruction index where execution starts. Branch
    /// targets inside `text` are not validated here; the emulator
    /// reports out-of-range fetches at run time.
    pub fn from_parts(
        text: Vec<Inst>,
        data: Vec<u8>,
        entry: u32,
        symbols: HashMap<String, Symbol>,
    ) -> Program {
        Program { text, data, entry, symbols }
    }

    /// The text segment.
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// The initialised data segment, loaded at [`DATA_BASE`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The entry point (an instruction index).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a symbol by name.
    ///
    /// # Examples
    ///
    /// ```
    /// use clustered_isa::{assemble, Symbol, DATA_BASE};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = assemble(".data\nbuf: .space 16\n.text\nhalt")?;
    /// assert_eq!(p.symbol("buf"), Some(Symbol::Data(DATA_BASE)));
    /// # Ok(())
    /// # }
    /// ```
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.symbols.get(name).copied()
    }

    /// Iterates over all symbols in unspecified order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Symbol)> {
        self.symbols.iter().map(|(name, &sym)| (name.as_str(), sym))
    }

    /// The instruction at index `pc`, or `None` past the end of text.
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.text.get(pc as usize)
    }
}

impl fmt::Display for Program {
    /// Formats the program as disassembly (text labels interleaved).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut labels_at: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, sym) in self.symbols() {
            if let Symbol::Text(idx) = sym {
                labels_at.entry(idx).or_default().push(name);
            }
        }
        for (idx, inst) in self.text.iter().enumerate() {
            if let Some(names) = labels_at.get(&(idx as u32)) {
                for name in names {
                    writeln!(f, "{name}:")?;
                }
            }
            writeln!(f, "    {}", crate::disasm::disassemble(inst))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program::from_parts(vec![Inst::Halt], vec![], 0, HashMap::new());
        assert_eq!(p.fetch(0), Some(&Inst::Halt));
        assert_eq!(p.fetch(1), None);
    }

    #[test]
    fn symbols_round_trip() {
        let mut syms = HashMap::new();
        syms.insert("main".to_string(), Symbol::Text(0));
        syms.insert("buf".to_string(), Symbol::Data(DATA_BASE + 8));
        let p = Program::from_parts(vec![Inst::Halt], vec![0; 16], 0, syms);
        assert_eq!(p.symbol("main"), Some(Symbol::Text(0)));
        assert_eq!(p.symbol("buf"), Some(Symbol::Data(DATA_BASE + 8)));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.symbols().count(), 2);
    }

    #[test]
    fn display_includes_labels() {
        let mut syms = HashMap::new();
        syms.insert("main".to_string(), Symbol::Text(0));
        let p = Program::from_parts(vec![Inst::Halt], vec![], 0, syms);
        let s = p.to_string();
        assert!(s.contains("main:"));
        assert!(s.contains("halt"));
    }
}
