//! The two-pass assembler.
//!
//! See the [crate-level documentation](crate) for the full syntax. In
//! brief: one instruction or directive per line, `#`/`;` comments,
//! `label:` definitions, `.text`/`.data` sections, and the data
//! directives `.word`, `.byte`, `.double`, `.space`, and `.align`.

use crate::inst::{
    AluOp, BranchCond, FpCmpOp, FpOp, FpUnOp, Inst, MemWidth, MulDivOp, Operand,
};
use crate::program::{Program, Symbol, DATA_BASE};
use crate::reg::{FpReg, IntReg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembly error, carrying the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error description, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles source text into a [`Program`].
///
/// The entry point is the `start` label if defined, otherwise the first
/// text instruction.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or registers, duplicate or undefined labels, and
/// out-of-range operands.
///
/// # Examples
///
/// ```
/// use clustered_isa::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble(
///     r"
///     .data
///     nums: .word 1, 2, 3, 4
///     .text
///     start:
///         la   r1, nums
///         li   r2, 0          # sum
///         li   r3, 4          # count
///     loop:
///         ld   r4, 0(r1)
///         add  r2, r2, r4
///         addi r1, r1, 8
///         addi r3, r3, -1
///         bnez r3, loop
///         halt
///     ",
/// )?;
/// assert!(program.text().len() > 5);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(source)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A line that survived pass one: an instruction to encode in pass two.
#[derive(Debug)]
struct PendingInst {
    line_no: usize,
    mnemonic: String,
    operands: Vec<String>,
}

#[derive(Debug, Default)]
struct Assembler {
    symbols: HashMap<String, Symbol>,
    data: Vec<u8>,
    pending: Vec<PendingInst>,
    /// Data-segment slots that hold a symbol reference to patch in pass two.
    data_fixups: Vec<(usize, String, usize)>, // (data offset, symbol, line)
}

impl Assembler {
    fn new() -> Assembler {
        Assembler::default()
    }

    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        self.pass_one(source)?;
        let text = self.pass_two()?;
        for (offset, name, line_no) in std::mem::take(&mut self.data_fixups) {
            let value = match self.symbols.get(&name) {
                Some(Symbol::Text(idx)) => *idx as u64,
                Some(Symbol::Data(addr)) => *addr,
                None => return Err(AsmError::new(line_no, format!("undefined symbol `{name}`"))),
            };
            self.data[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
        }
        let entry = match self.symbols.get("start") {
            Some(Symbol::Text(idx)) => *idx,
            Some(Symbol::Data(_)) => {
                return Err(AsmError::new(0, "`start` must label a text location"))
            }
            None => 0,
        };
        Ok(Program::from_parts(text, self.data, entry, self.symbols))
    }

    /// Pass one: strip comments, collect labels and data, queue instructions.
    fn pass_one(&mut self, source: &str) -> Result<(), AsmError> {
        let mut section = Section::Text;
        let mut text_len = 0u32;
        for (idx, raw_line) in source.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = raw_line;
            if let Some(pos) = line.find(['#', ';']) {
                line = &line[..pos];
            }
            let mut rest = line.trim();
            // A line may carry several labels before its statement.
            while let Some(colon) = rest.find(':') {
                let (label, after) = rest.split_at(colon);
                let label = label.trim();
                if !is_identifier(label) {
                    break;
                }
                let sym = match section {
                    Section::Text => Symbol::Text(text_len),
                    Section::Data => Symbol::Data(DATA_BASE + self.data.len() as u64),
                };
                if self.symbols.insert(label.to_string(), sym).is_some() {
                    return Err(AsmError::new(line_no, format!("duplicate label `{label}`")));
                }
                rest = after[1..].trim();
            }
            if rest.is_empty() {
                continue;
            }
            if let Some(directive) = rest.strip_prefix('.') {
                section = self.directive(line_no, directive, section)?;
                continue;
            }
            if section == Section::Data {
                return Err(AsmError::new(line_no, "instruction in .data section"));
            }
            let (mnemonic, ops) = split_statement(rest);
            self.pending.push(PendingInst {
                line_no,
                mnemonic: mnemonic.to_ascii_lowercase(),
                operands: ops,
            });
            text_len += 1;
        }
        Ok(())
    }

    fn directive(
        &mut self,
        line_no: usize,
        directive: &str,
        section: Section,
    ) -> Result<Section, AsmError> {
        let (name, args) = split_statement(directive);
        match name.as_str() {
            "text" => return Ok(Section::Text),
            "data" => return Ok(Section::Data),
            _ => {}
        }
        if section != Section::Data {
            return Err(AsmError::new(line_no, format!(".{name} is only valid in .data")));
        }
        match name.as_str() {
            "word" => {
                for arg in &args {
                    if let Ok(v) = parse_int(arg) {
                        self.data.extend_from_slice(&(v as u64).to_le_bytes());
                    } else if is_identifier(arg) {
                        self.data_fixups.push((self.data.len(), arg.clone(), line_no));
                        self.data.extend_from_slice(&0u64.to_le_bytes());
                    } else {
                        return Err(AsmError::new(line_no, format!("bad .word operand `{arg}`")));
                    }
                }
            }
            "byte" => {
                for arg in &args {
                    let v = parse_int(arg)
                        .map_err(|e| AsmError::new(line_no, format!("bad .byte operand: {e}")))?;
                    self.data.push(v as u8);
                }
            }
            "double" => {
                for arg in &args {
                    let v: f64 = arg
                        .parse()
                        .map_err(|_| AsmError::new(line_no, format!("bad .double `{arg}`")))?;
                    self.data.extend_from_slice(&v.to_le_bytes());
                }
            }
            "space" => {
                let [arg] = args.as_slice() else {
                    return Err(AsmError::new(line_no, ".space takes one operand"));
                };
                let n = parse_int(arg)
                    .map_err(|e| AsmError::new(line_no, format!("bad .space size: {e}")))?;
                if n < 0 {
                    return Err(AsmError::new(line_no, ".space size must be non-negative"));
                }
                self.data.extend(std::iter::repeat_n(0u8, n as usize));
            }
            "align" => {
                let [arg] = args.as_slice() else {
                    return Err(AsmError::new(line_no, ".align takes one operand"));
                };
                let n = parse_int(arg)
                    .map_err(|e| AsmError::new(line_no, format!("bad .align: {e}")))?;
                if n <= 0 || (n & (n - 1)) != 0 {
                    return Err(AsmError::new(line_no, ".align must be a power of two"));
                }
                while !self.data.len().is_multiple_of(n as usize) {
                    self.data.push(0);
                }
            }
            other => return Err(AsmError::new(line_no, format!("unknown directive .{other}"))),
        }
        Ok(section)
    }

    /// Pass two: encode each queued instruction with labels resolved.
    fn pass_two(&mut self) -> Result<Vec<Inst>, AsmError> {
        let pending = std::mem::take(&mut self.pending);
        pending.iter().map(|p| self.encode(p)).collect()
    }

    fn encode(&self, p: &PendingInst) -> Result<Inst, AsmError> {
        let line = p.line_no;
        let err = |msg: String| AsmError::new(line, msg);
        let ops = &p.operands;
        let arity = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(format!("`{}` expects {n} operands, got {}", p.mnemonic, ops.len())))
            }
        };
        let int_reg = |s: &str| parse_int_reg(s).ok_or_else(|| err(format!("bad register `{s}`")));
        let fp_reg =
            |s: &str| parse_fp_reg(s).ok_or_else(|| err(format!("bad fp register `{s}`")));
        let imm = |s: &str| parse_int(s).map_err(|e| err(format!("bad immediate `{s}`: {e}")));
        let text_target = |s: &str| -> Result<u32, AsmError> {
            match self.symbols.get(s) {
                Some(Symbol::Text(idx)) => Ok(*idx),
                Some(Symbol::Data(_)) => Err(err(format!("`{s}` is a data label"))),
                None => parse_int(s)
                    .ok()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| err(format!("undefined label `{s}`"))),
            }
        };
        let mem_operand = |s: &str| -> Result<(IntReg, i64), AsmError> {
            let open = s.find('(').ok_or_else(|| err(format!("bad memory operand `{s}`")))?;
            let close = s.rfind(')').ok_or_else(|| err(format!("bad memory operand `{s}`")))?;
            let off_str = s[..open].trim();
            let offset = if off_str.is_empty() { 0 } else { imm(off_str)? };
            Ok((int_reg(s[open + 1..close].trim())?, offset))
        };
        let alu = |op: AluOp| -> Result<Inst, AsmError> {
            arity(3)?;
            let src2 = if let Some(r) = parse_int_reg(&ops[2]) {
                Operand::Reg(r)
            } else {
                Operand::Imm(imm(&ops[2])?)
            };
            Ok(Inst::Alu { op, rd: int_reg(&ops[0])?, rs1: int_reg(&ops[1])?, src2 })
        };
        let alu_imm = |op: AluOp| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::Alu {
                op,
                rd: int_reg(&ops[0])?,
                rs1: int_reg(&ops[1])?,
                src2: Operand::Imm(imm(&ops[2])?),
            })
        };
        let muldiv = |op: MulDivOp| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::MulDiv {
                op,
                rd: int_reg(&ops[0])?,
                rs1: int_reg(&ops[1])?,
                rs2: int_reg(&ops[2])?,
            })
        };
        let fp = |op: FpOp| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::Fp { op, fd: fp_reg(&ops[0])?, fs1: fp_reg(&ops[1])?, fs2: fp_reg(&ops[2])? })
        };
        let fp_un = |op: FpUnOp| -> Result<Inst, AsmError> {
            arity(2)?;
            Ok(Inst::FpUn { op, fd: fp_reg(&ops[0])?, fs: fp_reg(&ops[1])? })
        };
        let fp_cmp = |op: FpCmpOp| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::FpCmp {
                op,
                rd: int_reg(&ops[0])?,
                fs1: fp_reg(&ops[1])?,
                fs2: fp_reg(&ops[2])?,
            })
        };
        let load = |width: MemWidth| -> Result<Inst, AsmError> {
            arity(2)?;
            let (base, offset) = mem_operand(&ops[1])?;
            Ok(Inst::Load { width, rd: int_reg(&ops[0])?, base, offset })
        };
        let store = |width: MemWidth| -> Result<Inst, AsmError> {
            arity(2)?;
            let (base, offset) = mem_operand(&ops[1])?;
            Ok(Inst::Store { width, rs: int_reg(&ops[0])?, base, offset })
        };
        let branch = |cond: BranchCond| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::Branch {
                cond,
                rs1: int_reg(&ops[0])?,
                rs2: int_reg(&ops[1])?,
                target: text_target(&ops[2])?,
            })
        };
        // Branch against zero / swapped-operand sugar.
        let branch_zero = |cond: BranchCond| -> Result<Inst, AsmError> {
            arity(2)?;
            Ok(Inst::Branch {
                cond,
                rs1: int_reg(&ops[0])?,
                rs2: IntReg::ZERO,
                target: text_target(&ops[1])?,
            })
        };
        let branch_swapped = |cond: BranchCond| -> Result<Inst, AsmError> {
            arity(3)?;
            Ok(Inst::Branch {
                cond,
                rs1: int_reg(&ops[1])?,
                rs2: int_reg(&ops[0])?,
                target: text_target(&ops[2])?,
            })
        };

        match p.mnemonic.as_str() {
            "add" => alu(AluOp::Add),
            "sub" => alu(AluOp::Sub),
            "and" => alu(AluOp::And),
            "or" => alu(AluOp::Or),
            "xor" => alu(AluOp::Xor),
            "sll" => alu(AluOp::Sll),
            "srl" => alu(AluOp::Srl),
            "sra" => alu(AluOp::Sra),
            "slt" => alu(AluOp::Slt),
            "sltu" => alu(AluOp::Sltu),
            "addi" => alu_imm(AluOp::Add),
            "subi" => alu_imm(AluOp::Sub),
            "andi" => alu_imm(AluOp::And),
            "ori" => alu_imm(AluOp::Or),
            "xori" => alu_imm(AluOp::Xor),
            "slli" => alu_imm(AluOp::Sll),
            "srli" => alu_imm(AluOp::Srl),
            "srai" => alu_imm(AluOp::Sra),
            "slti" => alu_imm(AluOp::Slt),
            "sltiu" => alu_imm(AluOp::Sltu),
            "mul" => muldiv(MulDivOp::Mul),
            "div" => muldiv(MulDivOp::Div),
            "rem" => muldiv(MulDivOp::Rem),
            "li" => {
                arity(2)?;
                Ok(Inst::Li { rd: int_reg(&ops[0])?, imm: imm(&ops[1])? })
            }
            "la" => {
                arity(2)?;
                let value = match self.symbols.get(&ops[1]) {
                    Some(Symbol::Data(addr)) => *addr as i64,
                    Some(Symbol::Text(idx)) => *idx as i64,
                    None => return Err(err(format!("undefined label `{}`", ops[1]))),
                };
                Ok(Inst::Li { rd: int_reg(&ops[0])?, imm: value })
            }
            "mov" => {
                arity(2)?;
                Ok(Inst::Alu {
                    op: AluOp::Add,
                    rd: int_reg(&ops[0])?,
                    rs1: int_reg(&ops[1])?,
                    src2: Operand::Imm(0),
                })
            }
            "nop" => {
                arity(0)?;
                Ok(Inst::Alu {
                    op: AluOp::Add,
                    rd: IntReg::ZERO,
                    rs1: IntReg::ZERO,
                    src2: Operand::Imm(0),
                })
            }
            "fadd" => fp(FpOp::Add),
            "fsub" => fp(FpOp::Sub),
            "fmul" => fp(FpOp::Mul),
            "fdiv" => fp(FpOp::Div),
            "fmin" => fp(FpOp::Min),
            "fmax" => fp(FpOp::Max),
            "fneg" => fp_un(FpUnOp::Neg),
            "fabs" => fp_un(FpUnOp::Abs),
            "fmov" => fp_un(FpUnOp::Mov),
            "fsqrt" => fp_un(FpUnOp::Sqrt),
            "feq" => fp_cmp(FpCmpOp::Eq),
            "flt" => fp_cmp(FpCmpOp::Lt),
            "fle" => fp_cmp(FpCmpOp::Le),
            "fcvt" => {
                arity(2)?;
                Ok(Inst::IntToFp { fd: fp_reg(&ops[0])?, rs: int_reg(&ops[1])? })
            }
            "fcvti" => {
                arity(2)?;
                Ok(Inst::FpToInt { rd: int_reg(&ops[0])?, fs: fp_reg(&ops[1])? })
            }
            "fli" => {
                arity(2)?;
                let v: f64 = ops[1]
                    .parse()
                    .map_err(|_| err(format!("bad fp immediate `{}`", ops[1])))?;
                Ok(Inst::Fli { fd: fp_reg(&ops[0])?, imm: v })
            }
            "ld" => load(MemWidth::Double),
            "lw" => load(MemWidth::Word),
            "lbu" => load(MemWidth::Byte),
            "sd" => store(MemWidth::Double),
            "sw" => store(MemWidth::Word),
            "sb" => store(MemWidth::Byte),
            "fld" => {
                arity(2)?;
                let (base, offset) = mem_operand(&ops[1])?;
                Ok(Inst::FpLoad { fd: fp_reg(&ops[0])?, base, offset })
            }
            "fsd" => {
                arity(2)?;
                let (base, offset) = mem_operand(&ops[1])?;
                Ok(Inst::FpStore { fs: fp_reg(&ops[0])?, base, offset })
            }
            "beq" => branch(BranchCond::Eq),
            "bne" => branch(BranchCond::Ne),
            "blt" => branch(BranchCond::Lt),
            "bge" => branch(BranchCond::Ge),
            "bltu" => branch(BranchCond::Ltu),
            "bgeu" => branch(BranchCond::Geu),
            "bgt" => branch_swapped(BranchCond::Lt),
            "ble" => branch_swapped(BranchCond::Ge),
            "beqz" => branch_zero(BranchCond::Eq),
            "bnez" => branch_zero(BranchCond::Ne),
            "bltz" => branch_zero(BranchCond::Lt),
            "bgez" => branch_zero(BranchCond::Ge),
            "bgtz" => {
                arity(2)?;
                Ok(Inst::Branch {
                    cond: BranchCond::Lt,
                    rs1: IntReg::ZERO,
                    rs2: int_reg(&ops[0])?,
                    target: text_target(&ops[1])?,
                })
            }
            "j" | "jmp" => {
                arity(1)?;
                Ok(Inst::Jump { target: text_target(&ops[0])? })
            }
            "jr" => {
                arity(1)?;
                Ok(Inst::JumpReg { rs: int_reg(&ops[0])? })
            }
            "call" => {
                arity(1)?;
                Ok(Inst::Call { target: text_target(&ops[0])? })
            }
            "callr" => {
                arity(1)?;
                Ok(Inst::CallReg { rs: int_reg(&ops[0])? })
            }
            "ret" => {
                arity(0)?;
                Ok(Inst::Ret)
            }
            "halt" => {
                arity(0)?;
                Ok(Inst::Halt)
            }
            other => Err(err(format!("unknown mnemonic `{other}`"))),
        }
    }
}

/// Splits a statement into its mnemonic and comma-separated operands.
fn split_statement(s: &str) -> (String, Vec<String>) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        None => (s.to_string(), Vec::new()),
        Some(pos) => {
            let (head, tail) = s.split_at(pos);
            let ops = tail
                .split(',')
                .map(|op| op.trim().to_string())
                .filter(|op| !op.is_empty())
                .collect();
            (head.to_string(), ops)
        }
    }
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_int(s: &str) -> Result<i64, std::num::ParseIntError> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else if let Some(hex) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        // Parse the magnitude as u64 so that -0x8000000000000000
        // (i64::MIN, whose magnitude overflows i64) round-trips.
        u64::from_str_radix(hex, 16).map(|v| (v as i64).wrapping_neg())
    } else {
        s.parse()
    }
}

fn parse_int_reg(s: &str) -> Option<IntReg> {
    match s {
        "zero" => return Some(IntReg::ZERO),
        "sp" => return Some(IntReg::SP),
        "ra" => return Some(IntReg::RA),
        _ => {}
    }
    let idx: u8 = s.strip_prefix('r')?.parse().ok()?;
    IntReg::new(idx)
}

fn parse_fp_reg(s: &str) -> Option<FpReg> {
    let idx: u8 = s.strip_prefix('f')?.parse().ok()?;
    FpReg::new(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Inst, Operand};
    use crate::program::DATA_BASE;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("halt").unwrap();
        assert_eq!(p.text(), &[Inst::Halt]);
        assert_eq!(p.entry(), 0);
    }

    #[test]
    fn entry_defaults_to_start_label() {
        let p = assemble("nop\nstart: halt").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn register_aliases() {
        let p = assemble("add sp, ra, zero").unwrap();
        assert_eq!(
            p.text()[0],
            Inst::Alu {
                op: AluOp::Add,
                rd: IntReg::SP,
                rs1: IntReg::RA,
                src2: Operand::Reg(IntReg::ZERO)
            }
        );
    }

    #[test]
    fn alu_immediate_and_register_forms() {
        let p = assemble("add r1, r2, 5\naddi r1, r2, -5\nadd r1, r2, r3").unwrap();
        assert!(matches!(p.text()[0], Inst::Alu { src2: Operand::Imm(5), .. }));
        assert!(matches!(p.text()[1], Inst::Alu { src2: Operand::Imm(-5), .. }));
        assert!(matches!(p.text()[2], Inst::Alu { src2: Operand::Reg(_), .. }));
    }

    #[test]
    fn forward_and_backward_branch_targets() {
        let p = assemble("top: beq r1, r2, end\nj top\nend: halt").unwrap();
        assert!(matches!(p.text()[0], Inst::Branch { target: 2, .. }));
        assert!(matches!(p.text()[1], Inst::Jump { target: 0 }));
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let p = assemble(
            ".data\na: .word 1, -1\nb: .byte 7, 8\n.align 8\nc: .double 1.5\nd: .space 3\n.text\nhalt",
        )
        .unwrap();
        assert_eq!(p.symbol("a"), Some(Symbol::Data(DATA_BASE)));
        assert_eq!(p.symbol("b"), Some(Symbol::Data(DATA_BASE + 16)));
        assert_eq!(p.symbol("c"), Some(Symbol::Data(DATA_BASE + 24)));
        assert_eq!(p.symbol("d"), Some(Symbol::Data(DATA_BASE + 32)));
        assert_eq!(p.data().len(), 35);
        assert_eq!(&p.data()[0..8], &1u64.to_le_bytes());
        assert_eq!(&p.data()[8..16], &(-1i64 as u64).to_le_bytes());
        assert_eq!(p.data()[16], 7);
        assert_eq!(&p.data()[24..32], &1.5f64.to_le_bytes());
    }

    #[test]
    fn word_directive_accepts_labels() {
        let p = assemble(
            ".data\ntable: .word fn_a, fn_b\n.text\nfn_a: ret\nfn_b: ret\nhalt",
        )
        .unwrap();
        assert_eq!(&p.data()[0..8], &0u64.to_le_bytes());
        assert_eq!(&p.data()[8..16], &1u64.to_le_bytes());
    }

    #[test]
    fn la_loads_data_address() {
        let p = assemble(".data\nbuf: .space 8\n.text\nla r1, buf\nhalt").unwrap();
        assert_eq!(p.text()[0], Inst::Li { rd: IntReg::new(1).unwrap(), imm: DATA_BASE as i64 });
    }

    #[test]
    fn memory_operands() {
        let p = assemble("ld r1, 16(r2)\nld r1, (r2)\nld r1, -8(r2)").unwrap();
        assert!(matches!(p.text()[0], Inst::Load { offset: 16, .. }));
        assert!(matches!(p.text()[1], Inst::Load { offset: 0, .. }));
        assert!(matches!(p.text()[2], Inst::Load { offset: -8, .. }));
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li r1, 0xff\nli r2, -0x10").unwrap();
        assert_eq!(p.text()[0], Inst::Li { rd: IntReg::new(1).unwrap(), imm: 255 });
        assert_eq!(p.text()[1], Inst::Li { rd: IntReg::new(2).unwrap(), imm: -16 });
    }

    #[test]
    fn hex_immediates_cover_the_full_i64_range() {
        let p = assemble(
            "li r1, -0x8000000000000000\nli r2, 0xffffffffffffffff\nli r3, 0x7fffffffffffffff",
        )
        .unwrap();
        assert_eq!(p.text()[0], Inst::Li { rd: IntReg::new(1).unwrap(), imm: i64::MIN });
        assert_eq!(p.text()[1], Inst::Li { rd: IntReg::new(2).unwrap(), imm: -1 });
        assert_eq!(p.text()[2], Inst::Li { rd: IntReg::new(3).unwrap(), imm: i64::MAX });
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("# full comment\n\nhalt ; trailing\n   # indented").unwrap();
        assert_eq!(p.text().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.message().contains("bogus"));
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: halt").unwrap_err();
        assert!(e.message().contains("duplicate"));
    }

    #[test]
    fn undefined_branch_target_rejected() {
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message().contains("undefined"));
    }

    #[test]
    fn wrong_arity_rejected() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message().contains("expects 3"));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("add r32, r0, r0").is_err());
        assert!(assemble("fadd f32, f0, f0").is_err());
    }

    #[test]
    fn data_section_rejects_instructions() {
        let e = assemble(".data\nadd r1, r2, r3").unwrap_err();
        assert!(e.message().contains(".data"));
    }

    #[test]
    fn branch_sugar() {
        let p = assemble("x: beqz r1, x\nbnez r2, x\nbgt r3, r4, x\nble r5, r6, x\nbgtz r7, x")
            .unwrap();
        assert!(matches!(
            p.text()[0],
            Inst::Branch { cond: BranchCond::Eq, rs2: IntReg::ZERO, .. }
        ));
        assert!(matches!(p.text()[2], Inst::Branch { cond: BranchCond::Lt, .. }));
        assert!(matches!(p.text()[4], Inst::Branch { cond: BranchCond::Lt, .. }));
    }

    #[test]
    fn multiple_labels_one_line() {
        let p = assemble("a: b: halt").unwrap();
        assert_eq!(p.symbol("a"), Some(Symbol::Text(0)));
        assert_eq!(p.symbol("b"), Some(Symbol::Text(0)));
    }
}
