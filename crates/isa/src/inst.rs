//! Instruction definitions for the virtual ISA.
//!
//! Instructions are held as a structured enum rather than an encoded bit
//! pattern: the simulator is the only consumer, and a symbolic form keeps
//! both the assembler and the emulator simple and fully type-checked.
//! Branch and jump targets are *instruction indices* into the text
//! segment (the program counter advances by 1 per instruction).

use crate::reg::{ArchReg, FpReg, IntReg};
use std::fmt;

/// A two-operand integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (shift amount taken modulo 64).
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Set-if-less-than, signed (result is 0 or 1).
    Slt,
    /// Set-if-less-than, unsigned (result is 0 or 1).
    Sltu,
}

impl AluOp {
    /// The assembler mnemonic for the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// An integer multiply/divide operation (executes on the mul/div unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 64 bits of the signed product.
    Mul,
    /// Signed division (division by zero yields all-ones).
    Div,
    /// Signed remainder (remainder by zero yields the dividend).
    Rem,
}

impl MulDivOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulDivOp::Mul => "mul",
            MulDivOp::Div => "div",
            MulDivOp::Rem => "rem",
        }
    }
}

/// A two-operand floating-point operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Addition (FP adder).
    Add,
    /// Subtraction (FP adder).
    Sub,
    /// Multiplication (FP multiplier).
    Mul,
    /// Division (FP divider, unpipelined).
    Div,
    /// Minimum (FP adder).
    Min,
    /// Maximum (FP adder).
    Max,
}

impl FpOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "fadd",
            FpOp::Sub => "fsub",
            FpOp::Mul => "fmul",
            FpOp::Div => "fdiv",
            FpOp::Min => "fmin",
            FpOp::Max => "fmax",
        }
    }
}

/// A single-operand floating-point operation (executes on the FP adder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpUnOp {
    /// Negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Register move.
    Mov,
    /// Square root (executes on the FP divider).
    Sqrt,
}

impl FpUnOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpUnOp::Neg => "fneg",
            FpUnOp::Abs => "fabs",
            FpUnOp::Mov => "fmov",
            FpUnOp::Sqrt => "fsqrt",
        }
    }
}

/// A floating-point comparison writing 0/1 to an integer register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// Equal.
    Eq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
}

impl FpCmpOp {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Eq => "feq",
            FpCmpOp::Lt => "flt",
            FpCmpOp::Le => "fle",
        }
    }
}

/// The condition of a conditional branch comparing two integer registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less-than (signed).
    Lt,
    /// Branch if greater-or-equal (signed).
    Ge,
    /// Branch if less-than (unsigned).
    Ltu,
    /// Branch if greater-or-equal (unsigned).
    Geu,
}

impl BranchCond {
    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Width of an integer memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte, zero-extended on load.
    Byte,
    /// Four bytes, sign-extended on load.
    Word,
    /// Eight bytes.
    Double,
}

impl MemWidth {
    /// The access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// The second source of an ALU operation: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register source.
    Reg(IntReg),
    /// A sign-extended immediate.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => r.fmt(f),
            Operand::Imm(i) => i.fmt(f),
        }
    }
}

/// One instruction of the virtual ISA.
///
/// See the [crate-level documentation](crate) for the assembler syntax
/// of each form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst {
    /// `op rd, rs1, src2` — integer ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: IntReg,
        /// First source register.
        rs1: IntReg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// `li rd, imm` — load a 64-bit immediate.
    Li {
        /// Destination register.
        rd: IntReg,
        /// Immediate value.
        imm: i64,
    },
    /// `mul/div/rem rd, rs1, rs2` — integer multiply/divide unit.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Destination register.
        rd: IntReg,
        /// First source register.
        rs1: IntReg,
        /// Second source register.
        rs2: IntReg,
    },
    /// `fop fd, fs1, fs2` — floating-point arithmetic.
    Fp {
        /// Operation.
        op: FpOp,
        /// Destination register.
        fd: FpReg,
        /// First source register.
        fs1: FpReg,
        /// Second source register.
        fs2: FpReg,
    },
    /// `fneg/fabs/fmov/fsqrt fd, fs` — unary floating-point operation.
    FpUn {
        /// Operation.
        op: FpUnOp,
        /// Destination register.
        fd: FpReg,
        /// Source register.
        fs: FpReg,
    },
    /// `feq/flt/fle rd, fs1, fs2` — FP compare into an integer register.
    FpCmp {
        /// Operation.
        op: FpCmpOp,
        /// Integer destination register (written 0 or 1).
        rd: IntReg,
        /// First source register.
        fs1: FpReg,
        /// Second source register.
        fs2: FpReg,
    },
    /// `fcvt fd, rs` — convert a signed integer to floating point.
    IntToFp {
        /// Destination register.
        fd: FpReg,
        /// Integer source register.
        rs: IntReg,
    },
    /// `fcvti rd, fs` — truncate a floating-point value to a signed integer.
    FpToInt {
        /// Integer destination register.
        rd: IntReg,
        /// Source register.
        fs: FpReg,
    },
    /// `fli fd, imm` — load a floating-point immediate.
    Fli {
        /// Destination register.
        fd: FpReg,
        /// Immediate value.
        imm: f64,
    },
    /// `ld/lw/lbu rd, off(rs)` — integer load.
    Load {
        /// Access width.
        width: MemWidth,
        /// Destination register.
        rd: IntReg,
        /// Base address register.
        base: IntReg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `sd/sw/sb rs, off(base)` — integer store.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        rs: IntReg,
        /// Base address register.
        base: IntReg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `fld fd, off(rs)` — floating-point load (8 bytes).
    FpLoad {
        /// Destination register.
        fd: FpReg,
        /// Base address register.
        base: IntReg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `fsd fs, off(base)` — floating-point store (8 bytes).
    FpStore {
        /// Value register.
        fs: FpReg,
        /// Base address register.
        base: IntReg,
        /// Signed byte offset.
        offset: i64,
    },
    /// `beq/bne/... rs1, rs2, target` — conditional branch.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compared register.
        rs1: IntReg,
        /// Second compared register.
        rs2: IntReg,
        /// Target instruction index.
        target: u32,
    },
    /// `jmp target` — unconditional direct jump.
    Jump {
        /// Target instruction index.
        target: u32,
    },
    /// `jr rs` — indirect jump through a register.
    JumpReg {
        /// Register holding the target instruction index.
        rs: IntReg,
    },
    /// `call target` — direct call; writes the return address to `ra`.
    Call {
        /// Target instruction index.
        target: u32,
    },
    /// `callr rs` — indirect call; writes the return address to `ra`.
    CallReg {
        /// Register holding the target instruction index.
        rs: IntReg,
    },
    /// `ret` — return through `ra`.
    Ret,
    /// `halt` — stop execution.
    Halt,
}

/// The functional class of an instruction, used by the timing simulator
/// to pick a functional unit and an execution latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (also resolves conditional branches and jumps).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/compare/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

impl Inst {
    /// The functional class of this instruction.
    ///
    /// Control transfers resolve on the integer ALU, as in SimpleScalar.
    pub fn op_class(&self) -> OpClass {
        match self {
            Inst::Alu { .. } | Inst::Li { .. } => OpClass::IntAlu,
            Inst::MulDiv { op: MulDivOp::Mul, .. } => OpClass::IntMul,
            Inst::MulDiv { .. } => OpClass::IntDiv,
            Inst::Fp { op: FpOp::Mul, .. } => OpClass::FpMul,
            Inst::Fp { op: FpOp::Div, .. } => OpClass::FpDiv,
            Inst::FpUn { op: FpUnOp::Sqrt, .. } => OpClass::FpDiv,
            Inst::Fp { .. } | Inst::FpUn { .. } | Inst::FpCmp { .. } => OpClass::FpAlu,
            Inst::IntToFp { .. } | Inst::FpToInt { .. } | Inst::Fli { .. } => OpClass::FpAlu,
            Inst::Load { .. } | Inst::FpLoad { .. } => OpClass::Load,
            Inst::Store { .. } | Inst::FpStore { .. } => OpClass::Store,
            Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpReg { .. }
            | Inst::Call { .. }
            | Inst::CallReg { .. }
            | Inst::Ret
            | Inst::Halt => OpClass::IntAlu,
        }
    }

    /// Whether this instruction is any control transfer (conditional or
    /// unconditional).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::Jump { .. }
                | Inst::JumpReg { .. }
                | Inst::Call { .. }
                | Inst::CallReg { .. }
                | Inst::Ret
        )
    }

    /// The source registers of this instruction (at most two).
    ///
    /// # Examples
    ///
    /// ```
    /// use clustered_isa::{Inst, AluOp, Operand, IntReg, ArchReg};
    /// let i = Inst::Alu {
    ///     op: AluOp::Add,
    ///     rd: IntReg::new(1).unwrap(),
    ///     rs1: IntReg::new(2).unwrap(),
    ///     src2: Operand::Reg(IntReg::new(3).unwrap()),
    /// };
    /// let srcs = i.sources();
    /// assert_eq!(srcs[0], Some(ArchReg::Int(IntReg::new(2).unwrap())));
    /// assert_eq!(srcs[1], Some(ArchReg::Int(IntReg::new(3).unwrap())));
    /// ```
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        fn int(r: IntReg) -> Option<ArchReg> {
            // Reads of the hardwired zero register carry no dependence.
            (!r.is_zero()).then_some(ArchReg::Int(r))
        }
        fn fp(r: FpReg) -> Option<ArchReg> {
            Some(ArchReg::Fp(r))
        }
        match *self {
            Inst::Alu { rs1, src2, .. } => {
                let second = match src2 {
                    Operand::Reg(r) => int(r),
                    Operand::Imm(_) => None,
                };
                [int(rs1), second]
            }
            Inst::Li { .. } | Inst::Fli { .. } => [None, None],
            Inst::MulDiv { rs1, rs2, .. } => [int(rs1), int(rs2)],
            Inst::Fp { fs1, fs2, .. } => [fp(fs1), fp(fs2)],
            Inst::FpUn { fs, .. } => [fp(fs), None],
            Inst::FpCmp { fs1, fs2, .. } => [fp(fs1), fp(fs2)],
            Inst::IntToFp { rs, .. } => [int(rs), None],
            Inst::FpToInt { fs, .. } => [fp(fs), None],
            Inst::Load { base, .. } | Inst::FpLoad { base, .. } => [int(base), None],
            Inst::Store { rs, base, .. } => [int(base), int(rs)],
            Inst::FpStore { fs, base, .. } => [int(base), fp(fs)],
            Inst::Branch { rs1, rs2, .. } => [int(rs1), int(rs2)],
            Inst::Jump { .. } | Inst::Call { .. } | Inst::Halt => [None, None],
            Inst::JumpReg { rs } | Inst::CallReg { rs } => [int(rs), None],
            Inst::Ret => [int(IntReg::RA), None],
        }
    }

    /// The destination register of this instruction, if any.
    ///
    /// Writes to the hardwired zero register report no destination.
    pub fn dest(&self) -> Option<ArchReg> {
        fn int(r: IntReg) -> Option<ArchReg> {
            (!r.is_zero()).then_some(ArchReg::Int(r))
        }
        match *self {
            Inst::Alu { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FpToInt { rd, .. }
            | Inst::Load { rd, .. } => int(rd),
            Inst::Fp { fd, .. }
            | Inst::FpUn { fd, .. }
            | Inst::IntToFp { fd, .. }
            | Inst::Fli { fd, .. }
            | Inst::FpLoad { fd, .. } => Some(ArchReg::Fp(fd)),
            Inst::Call { .. } | Inst::CallReg { .. } => int(IntReg::RA),
            Inst::Store { .. }
            | Inst::FpStore { .. }
            | Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpReg { .. }
            | Inst::Ret
            | Inst::Halt => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::new(i).unwrap()
    }
    fn f(i: u8) -> FpReg {
        FpReg::new(i).unwrap()
    }

    #[test]
    fn op_class_mapping() {
        assert_eq!(
            Inst::Alu { op: AluOp::Add, rd: r(1), rs1: r(2), src2: Operand::Imm(4) }.op_class(),
            OpClass::IntAlu
        );
        assert_eq!(
            Inst::MulDiv { op: MulDivOp::Mul, rd: r(1), rs1: r(2), rs2: r(3) }.op_class(),
            OpClass::IntMul
        );
        assert_eq!(
            Inst::MulDiv { op: MulDivOp::Div, rd: r(1), rs1: r(2), rs2: r(3) }.op_class(),
            OpClass::IntDiv
        );
        assert_eq!(
            Inst::Fp { op: FpOp::Mul, fd: f(1), fs1: f(2), fs2: f(3) }.op_class(),
            OpClass::FpMul
        );
        assert_eq!(
            Inst::FpUn { op: FpUnOp::Sqrt, fd: f(1), fs: f(2) }.op_class(),
            OpClass::FpDiv
        );
        assert_eq!(
            Inst::Load { width: MemWidth::Double, rd: r(1), base: r(2), offset: 0 }.op_class(),
            OpClass::Load
        );
        assert_eq!(Inst::Ret.op_class(), OpClass::IntAlu);
    }

    #[test]
    fn zero_register_carries_no_dependence() {
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: IntReg::ZERO,
            rs1: IntReg::ZERO,
            src2: Operand::Reg(IntReg::ZERO),
        };
        assert_eq!(i.sources(), [None, None]);
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn store_sources_include_value_and_base() {
        let i = Inst::Store { width: MemWidth::Double, rs: r(5), base: r(6), offset: 8 };
        assert_eq!(i.sources(), [Some(ArchReg::Int(r(6))), Some(ArchReg::Int(r(5)))]);
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn fp_store_mixes_register_files() {
        let i = Inst::FpStore { fs: f(3), base: r(6), offset: 0 };
        assert_eq!(i.sources(), [Some(ArchReg::Int(r(6))), Some(ArchReg::Fp(f(3)))]);
    }

    #[test]
    fn call_writes_return_address() {
        assert_eq!(Inst::Call { target: 10 }.dest(), Some(ArchReg::Int(IntReg::RA)));
        assert_eq!(Inst::Ret.sources()[0], Some(ArchReg::Int(IntReg::RA)));
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Jump { target: 0 }.is_control());
        assert!(Inst::Ret.is_control());
        assert!(!Inst::Halt.is_control());
        assert!(!Inst::Li { rd: r(1), imm: 0 }.is_control());
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval(-1i64 as u64, 0));
        assert!(!BranchCond::Ltu.eval(-1i64 as u64, 0));
        assert!(BranchCond::Ge.eval(0, -5i64 as u64));
        assert!(BranchCond::Geu.eval(u64::MAX, 5));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::Word.bytes(), 4);
        assert_eq!(MemWidth::Double.bytes(), 8);
    }
}
