//! Disassembly of instructions back to assembler syntax.

use crate::inst::{Inst, MemWidth, Operand};

/// Renders one instruction in the assembler's input syntax.
///
/// Branch and jump targets are printed as bare instruction indices (the
/// assembler accepts numeric targets, so output round-trips).
///
/// # Examples
///
/// ```
/// use clustered_isa::{assemble, disassemble};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("add r1, r2, r3")?;
/// assert_eq!(disassemble(&p.text()[0]), "add r1, r2, r3");
/// # Ok(())
/// # }
/// ```
pub fn disassemble(inst: &Inst) -> String {
    match *inst {
        Inst::Alu { op, rd, rs1, src2 } => match src2 {
            Operand::Reg(_) => format!("{} {rd}, {rs1}, {src2}", op.mnemonic()),
            Operand::Imm(_) => format!("{} {rd}, {rs1}, {src2}", imm_mnemonic(op)),
        },
        Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
        Inst::MulDiv { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
        Inst::Fp { op, fd, fs1, fs2 } => format!("{} {fd}, {fs1}, {fs2}", op.mnemonic()),
        Inst::FpUn { op, fd, fs } => format!("{} {fd}, {fs}", op.mnemonic()),
        Inst::FpCmp { op, rd, fs1, fs2 } => format!("{} {rd}, {fs1}, {fs2}", op.mnemonic()),
        Inst::IntToFp { fd, rs } => format!("fcvt {fd}, {rs}"),
        Inst::FpToInt { rd, fs } => format!("fcvti {rd}, {fs}"),
        Inst::Fli { fd, imm } => format!("fli {fd}, {imm:?}"),
        Inst::Load { width, rd, base, offset } => {
            format!("{} {rd}, {offset}({base})", load_mnemonic(width))
        }
        Inst::Store { width, rs, base, offset } => {
            format!("{} {rs}, {offset}({base})", store_mnemonic(width))
        }
        Inst::FpLoad { fd, base, offset } => format!("fld {fd}, {offset}({base})"),
        Inst::FpStore { fs, base, offset } => format!("fsd {fs}, {offset}({base})"),
        Inst::Branch { cond, rs1, rs2, target } => {
            format!("{} {rs1}, {rs2}, {target}", cond.mnemonic())
        }
        Inst::Jump { target } => format!("jmp {target}"),
        Inst::JumpReg { rs } => format!("jr {rs}"),
        Inst::Call { target } => format!("call {target}"),
        Inst::CallReg { rs } => format!("callr {rs}"),
        Inst::Ret => "ret".to_string(),
        Inst::Halt => "halt".to_string(),
    }
}

fn imm_mnemonic(op: crate::inst::AluOp) -> &'static str {
    use crate::inst::AluOp;
    match op {
        AluOp::Add => "addi",
        AluOp::Sub => "subi",
        AluOp::And => "andi",
        AluOp::Or => "ori",
        AluOp::Xor => "xori",
        AluOp::Sll => "slli",
        AluOp::Srl => "srli",
        AluOp::Sra => "srai",
        AluOp::Slt => "slti",
        AluOp::Sltu => "sltiu",
    }
}

fn load_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::Byte => "lbu",
        MemWidth::Word => "lw",
        MemWidth::Double => "ld",
    }
}

fn store_mnemonic(width: MemWidth) -> &'static str {
    match width {
        MemWidth::Byte => "sb",
        MemWidth::Word => "sw",
        MemWidth::Double => "sd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// Every disassembled instruction must re-assemble to itself.
    #[test]
    fn round_trip_representative_instructions() {
        let source = r"
            add r1, r2, r3
            addi r1, r2, -7
            sltu r4, r5, 9
            li r1, 1234567890123
            mul r1, r2, r3
            div r1, r2, r3
            rem r1, r2, r3
            fadd f1, f2, f3
            fdiv f1, f2, f3
            fneg f1, f2
            fsqrt f3, f4
            feq r1, f2, f3
            fcvt f1, r2
            fcvti r1, f2
            fli f1, 2.5
            ld r1, 8(r2)
            lw r1, -4(r2)
            lbu r1, 0(r2)
            sd r1, 8(r2)
            sw r1, 8(r2)
            sb r1, 8(r2)
            fld f1, 16(r2)
            fsd f1, 16(r2)
            x: beq r1, r2, x
            bne r1, r2, x
            bltu r1, r2, x
            jmp x
            jr r1
            call x
            callr r1
            ret
            halt
        ";
        let p = assemble(source).unwrap();
        let rendered: String =
            p.text().iter().map(disassemble).collect::<Vec<_>>().join("\n");
        let p2 = assemble(&rendered).unwrap();
        assert_eq!(p.text(), p2.text());
    }

    #[test]
    fn immediate_alu_prints_i_suffix() {
        let p = assemble("add r1, r2, 5").unwrap();
        assert_eq!(disassemble(&p.text()[0]), "addi r1, r2, 5");
    }
}
