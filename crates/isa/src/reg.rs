//! Register names and identifiers.
//!
//! The virtual ISA has 32 integer registers (`r0`..`r31`) and 32
//! floating-point registers (`f0`..`f31`). `r0` reads as zero and ignores
//! writes. `r31` (alias `ra`) receives the return address of `call`, and
//! `r30` (alias `sp`) is the conventional stack pointer.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: usize = 32;

/// An architectural integer register (`r0`..`r31`).
///
/// `r0` is hardwired to zero.
///
/// # Examples
///
/// ```
/// use clustered_isa::IntReg;
/// let ra = IntReg::RA;
/// assert_eq!(ra.index(), 31);
/// assert_eq!(ra.to_string(), "ra");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: IntReg = IntReg(0);
    /// The conventional stack pointer `r30`.
    pub const SP: IntReg = IntReg(30);
    /// The link (return-address) register `r31`.
    pub const RA: IntReg = IntReg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use clustered_isa::IntReg;
    /// assert!(IntReg::new(5).is_some());
    /// assert!(IntReg::new(32).is_none());
    /// ```
    pub fn new(index: u8) -> Option<IntReg> {
        (index < NUM_INT_REGS as u8).then_some(IntReg(index))
    }

    /// The register index, in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IntReg::SP => write!(f, "sp"),
            IntReg::RA => write!(f, "ra"),
            IntReg(i) => write!(f, "r{i}"),
        }
    }
}

/// An architectural floating-point register (`f0`..`f31`).
///
/// # Examples
///
/// ```
/// use clustered_isa::FpReg;
/// let f = FpReg::new(3).unwrap();
/// assert_eq!(f.to_string(), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= 32`.
    pub fn new(index: u8) -> Option<FpReg> {
        (index < NUM_FP_REGS as u8).then_some(FpReg(index))
    }

    /// The register index, in `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A register in the unified (integer + floating-point) namespace.
///
/// The rename and steering stages of the timing simulator track data
/// dependences without caring which file a register lives in; `ArchReg`
/// is the identifier they use.
///
/// # Examples
///
/// ```
/// use clustered_isa::{ArchReg, IntReg, FpReg};
/// let a = ArchReg::Int(IntReg::RA);
/// let b = ArchReg::Fp(FpReg::new(0).unwrap());
/// assert!(a.is_int());
/// assert!(!b.is_int());
/// assert_ne!(a.unified_index(), b.unified_index());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArchReg {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl ArchReg {
    /// Whether this names an integer register.
    pub fn is_int(self) -> bool {
        matches!(self, ArchReg::Int(_))
    }

    /// A dense index in `0..64`: integer registers map to `0..32`,
    /// floating-point registers to `32..64`.
    pub fn unified_index(self) -> usize {
        match self {
            ArchReg::Int(r) => r.index() as usize,
            ArchReg::Fp(r) => NUM_INT_REGS + r.index() as usize,
        }
    }

    /// Inverse of [`ArchReg::unified_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn from_unified_index(index: usize) -> ArchReg {
        if index < NUM_INT_REGS {
            ArchReg::Int(IntReg(index as u8))
        } else {
            assert!(index < NUM_INT_REGS + NUM_FP_REGS, "register index out of range");
            ArchReg::Fp(FpReg((index - NUM_INT_REGS) as u8))
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchReg::Int(r) => r.fmt(f),
            ArchReg::Fp(r) => r.fmt(f),
        }
    }
}

impl From<IntReg> for ArchReg {
    fn from(r: IntReg) -> ArchReg {
        ArchReg::Int(r)
    }
}

impl From<FpReg> for ArchReg {
    fn from(r: FpReg) -> ArchReg {
        ArchReg::Fp(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_bounds() {
        assert_eq!(IntReg::new(0), Some(IntReg::ZERO));
        assert_eq!(IntReg::new(31), Some(IntReg::RA));
        assert_eq!(IntReg::new(32), None);
        assert_eq!(IntReg::new(255), None);
    }

    #[test]
    fn fp_reg_bounds() {
        assert!(FpReg::new(31).is_some());
        assert!(FpReg::new(32).is_none());
    }

    #[test]
    fn zero_register() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::RA.is_zero());
    }

    #[test]
    fn display_aliases() {
        assert_eq!(IntReg::new(7).unwrap().to_string(), "r7");
        assert_eq!(IntReg::SP.to_string(), "sp");
        assert_eq!(IntReg::RA.to_string(), "ra");
        assert_eq!(FpReg::new(12).unwrap().to_string(), "f12");
    }

    #[test]
    fn unified_index_round_trip() {
        for i in 0..64 {
            let r = ArchReg::from_unified_index(i);
            assert_eq!(r.unified_index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unified_index_out_of_range() {
        let _ = ArchReg::from_unified_index(64);
    }
}
