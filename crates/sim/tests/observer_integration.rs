//! End-to-end checks that [`MetricsObserver`] sees the same machine
//! the statistics counters describe, and that the observer seam does
//! not perturb simulation results.

use clustered_sim::{
    CacheModel, FixedPolicy, MetricsObserver, Processor, ReconfigPolicy, SimConfig, SimStats,
    SteeringKind,
};
use clustered_workloads::by_name;

fn run_observed(
    cfg: SimConfig,
    policy: Box<dyn ReconfigPolicy>,
    instructions: u64,
) -> (SimStats, MetricsObserver) {
    let w = by_name("gzip").expect("gzip workload exists");
    let stream = w.trace().map(Result::unwrap);
    let mut cpu = Processor::with_observer(
        cfg,
        stream,
        policy,
        SteeringKind::default(),
        MetricsObserver::new(1_000),
    )
    .expect("valid config");
    let stats = cpu.run(instructions).expect("no stall");
    let observer = cpu.observer().clone();
    (stats, observer)
}

#[test]
fn observer_counts_agree_with_stats() {
    let (stats, m) = run_observed(SimConfig::default(), Box::new(FixedPolicy::new(4)), 30_000);
    assert_eq!(m.committed(), stats.committed);
    assert_eq!(m.dispatched(), stats.dispatched);
    assert_eq!(m.last_cycle, stats.cycles);
    assert_eq!(m.rob_occupancy.count(), stats.cycles, "one ROB sample per cycle");
    assert_eq!(m.reg_transfer_hops.count(), stats.reg_transfers);
    assert_eq!(m.reg_transfer_hops.sum(), stats.reg_transfer_hops);
    assert_eq!(m.cache_transfer_hops.count(), stats.cache_transfers);
    assert_eq!(m.cache_transfer_hops.sum(), stats.cache_transfer_hops);
    // Every instruction issues at least once and loads/stores hit the
    // cache unless forwarded.
    assert!(m.issued() >= stats.committed);
    assert!(m.cache_latency.count() > 0);
    assert!(!m.timeline.is_empty(), "30k instructions span >1k cycles");
}

#[test]
fn observer_sees_decentralized_reconfigurations_and_flushes() {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    // A policy oscillating between 4 and 16 clusters forces real
    // drain + flush reconfigurations.
    struct Oscillate {
        n: u64,
    }
    impl ReconfigPolicy for Oscillate {
        fn name(&self) -> String {
            "oscillate".to_string()
        }
        fn initial_clusters(&self) -> usize {
            4
        }
        fn on_commit(&mut self, _e: &clustered_sim::CommitEvent) -> Option<usize> {
            self.n += 1;
            match self.n % 4_000 {
                0 => Some(4),
                2_000 => Some(16),
                _ => None,
            }
        }
    }
    let (stats, m) = run_observed(cfg, Box::new(Oscillate { n: 0 }), 20_000);
    assert!(stats.reconfigurations > 0, "policy must have fired");
    assert_eq!(m.reconfigs.len() as u64, stats.reconfigurations);
    assert_eq!(m.flushes.len() as u64, stats.reconfigurations);
    assert_eq!(
        m.flushes.iter().map(|f| f.stall_cycles).sum::<u64>(),
        stats.flush_stall_cycles
    );
    assert_eq!(
        m.flushes.iter().map(|f| f.writebacks).sum::<u64>(),
        stats.flush_writebacks
    );
    for r in &m.reconfigs {
        assert_ne!(r.from, r.to);
        assert!(r.cycle <= stats.cycles);
    }
}

#[test]
fn observed_and_unobserved_runs_are_identical() {
    let w = by_name("gzip").expect("gzip workload exists");
    let stream = w.trace().map(Result::unwrap);
    let mut plain = Processor::new(SimConfig::default(), stream, Box::new(FixedPolicy::new(8)))
        .expect("valid config");
    let baseline = plain.run(20_000).expect("no stall");
    let (observed, _) = run_observed(SimConfig::default(), Box::new(FixedPolicy::new(8)), 20_000);
    assert_eq!(baseline, observed, "observer must not change simulated behaviour");
}
