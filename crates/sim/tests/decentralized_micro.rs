//! Micro tests of decentralized-cache-specific mechanisms: bank
//! prediction effects, store broadcast/dummy-slot ordering, and the
//! reconfiguration flush.

use clustered_emu::trace;
use clustered_isa::assemble;
use clustered_sim::{
    CacheModel, CommitEvent, FixedPolicy, Processor, ReconfigPolicy, SimConfig, SimStats,
};

fn decentralized() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    cfg
}

fn run(source: &str, cfg: SimConfig, policy: Box<dyn ReconfigPolicy>) -> SimStats {
    let program = assemble(source).expect("valid test program");
    let stream = trace(program).map(|r| r.expect("well-formed"));
    let mut cpu = Processor::new(cfg, stream, policy).expect("valid config");
    cpu.run(5_000_000).expect("no stall");
    assert!(cpu.finished(), "program must run to completion");
    *cpu.stats()
}

/// A single-location load stream always hits the same bank: the bank
/// predictor must become near-perfect.
#[test]
fn constant_address_stream_predicts_perfectly() {
    let s = run(
        ".data
         buf: .space 8
         .text
         la r2, buf
         li r1, 3000
         loop: ld r3, 0(r2)
         addi r1, r1, -1
         bnez r1, loop
         halt",
        decentralized(),
        Box::new(FixedPolicy::new(16)),
    );
    assert!(s.bank_predictions >= 3000);
    assert!(
        s.bank_accuracy() > 0.99,
        "constant bank must be learned: {:.3}",
        s.bank_accuracy()
    );
}

/// A pseudo-random address stream defeats the bank predictor — the
/// §5 cost the paper highlights.
#[test]
fn random_address_stream_defeats_bank_prediction() {
    let s = run(
        ".data
         buf: .space 65536
         .text
         la r2, buf
         li r21, 88172645463325252
         li r1, 3000
         loop:
         li r22, 6364136223846793005
         mul r21, r21, r22
         addi r21, r21, 1442695040888963407
         srli r4, r21, 30
         andi r4, r4, 8184
         add r5, r2, r4
         ld r3, 0(r5)
         addi r1, r1, -1
         bnez r1, loop
         halt",
        decentralized(),
        Box::new(FixedPolicy::new(16)),
    );
    assert!(
        s.bank_accuracy() < 0.5,
        "random banks cannot be predicted: {:.3}",
        s.bank_accuracy()
    );
    assert!(s.ipc() > 0.05, "mispredicted banks must still complete");
}

/// Store-to-load ordering across clusters: a load after a store to the
/// same address must observe the forwarding path (or at least wait for
/// the broadcast) rather than racing past it.
#[test]
fn cross_bank_store_load_ordering_forwards() {
    let s = run(
        ".data
         buf: .space 64
         .text
         la r2, buf
         li r1, 2000
         loop:
         sd r1, 0(r2)
         ld r3, 0(r2)
         sd r1, 8(r2)
         ld r4, 8(r2)
         addi r1, r1, -1
         bnez r1, loop
         halt",
        decentralized(),
        Box::new(FixedPolicy::new(16)),
    );
    assert!(
        s.lsq_forwards > 1_000,
        "same-word store→load pairs should forward: {}",
        s.lsq_forwards
    );
}

/// Reconfiguring the decentralized machine flushes dirty lines and
/// invalidates the L1: the first accesses afterwards miss again.
#[test]
fn reconfiguration_flush_invalidates_the_l1() {
    struct SwitchAt {
        seq: u64,
        to: usize,
        fired: bool,
    }
    impl ReconfigPolicy for SwitchAt {
        fn name(&self) -> String {
            "switch-at".into()
        }
        fn initial_clusters(&self) -> usize {
            16
        }
        fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
            if !self.fired && event.seq >= self.seq {
                self.fired = true;
                Some(self.to)
            } else {
                None
            }
        }
    }
    // Dirty a small buffer, then keep re-reading it after the switch.
    let source = "
         .data
         buf: .space 512
         .text
         la r2, buf
         li r1, 64
         dirty: sd r1, 0(r2)
         addi r2, r2, 8
         addi r1, r1, -1
         bnez r1, dirty
         li r9, 4000
         reread:
         la r2, buf
         li r1, 64
         inner: ld r3, 0(r2)
         addi r2, r2, 8
         addi r1, r1, -1
         bnez r1, inner
         addi r9, r9, -1
         bnez r9, reread
         halt";
    let with_switch = run(
        source,
        decentralized(),
        Box::new(SwitchAt { seq: 5_000, to: 4, fired: false }),
    );
    assert_eq!(with_switch.reconfigurations, 1);
    assert!(
        with_switch.flush_writebacks > 0,
        "dirtied lines must be written back at the flush"
    );
    let without = run(source, decentralized(), Box::new(FixedPolicy::new(16)));
    assert_eq!(without.flush_writebacks, 0);
    assert!(
        with_switch.l1_misses > without.l1_misses,
        "the flush must cost extra misses: {} vs {}",
        with_switch.l1_misses,
        without.l1_misses
    );
}

/// The same program on the centralized model performs no cache
/// transfers from bank mispredictions (there is no bank steering).
#[test]
fn centralized_model_has_no_bank_predictions() {
    let s = run(
        ".data
         buf: .space 8
         .text
         la r2, buf
         li r1, 1000
         loop: ld r3, 0(r2)
         addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::default(),
        Box::new(FixedPolicy::new(16)),
    );
    assert_eq!(s.bank_predictions, 0);
    assert_eq!(s.bank_mispredictions, 0);
}
