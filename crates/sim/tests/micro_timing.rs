//! Micro-benchmarks with analytically predictable timing: tiny
//! hand-written programs whose pipeline behaviour can be reasoned
//! about, pinning the simulator's first-order timing properties.

use clustered_emu::trace;
use clustered_isa::assemble;
use clustered_sim::{FixedPolicy, Processor, SimConfig, SimStats};

fn run(source: &str, cfg: SimConfig, clusters: usize) -> SimStats {
    let program = assemble(source).expect("valid test program");
    let stream = trace(program).map(|r| r.expect("well-formed"));
    let mut cpu =
        Processor::new(cfg, stream, Box::new(FixedPolicy::new(clusters))).expect("valid config");
    cpu.run(5_000_000).expect("no stall");
    assert!(cpu.finished(), "program must run to completion (is it endless?)");
    *cpu.stats()
}

/// A long serial ALU chain: IPC must approach (but never exceed) 1 —
/// dependent single-cycle operations execute back to back.
#[test]
fn serial_chain_runs_at_ipc_one() {
    let s = run(
        "li r1, 2000
         loop: addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, 1
         addi r1, r1, -8
         bnez r1, loop
         halt",
        SimConfig::monolithic(),
        1,
    );
    // The r1 chain carries the 8 addis (8 cycles per iteration); the
    // bnez issues in parallel, so the analytic IPC is 9/8 = 1.125.
    let ipc = s.ipc();
    assert!(ipc <= 1.15, "serial chain cannot beat 9/8 IPC: {ipc:.3}");
    assert!(ipc > 0.95, "back-to-back dependent issue broken: {ipc:.3}");
}

/// Independent operations on a wide monolithic machine: IPC must be
/// limited by fetch (8/cycle across 2 basic blocks), not by the chain.
#[test]
fn independent_ops_exceed_ipc_four() {
    // 16 independent accumulator chains.
    let mut body = String::from("li r1, 2000\nloop:\n");
    for r in 2..=17 {
        body.push_str(&format!("addi r{r}, r{r}, 1\n"));
    }
    body.push_str("addi r1, r1, -1\nbnez r1, loop\nhalt");
    let s = run(&body, SimConfig::monolithic(), 1);
    assert!(s.ipc() > 4.0, "independent work should run wide: {:.3}", s.ipc());
}

/// An unpipelined divide chain: ~latency cycles per divide.
#[test]
fn divide_chain_costs_full_latency() {
    let s = run(
        "li r1, 200
         li r2, 1
         loop: div r2, r2, r2
         addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::monolithic(),
        1,
    );
    let cfg = SimConfig::default();
    let cycles_per_iter = s.cycles as f64 / 200.0;
    assert!(
        cycles_per_iter >= cfg.exec.int_div as f64 * 0.9,
        "divides must serialise at ~{} cycles each, got {cycles_per_iter:.1}",
        cfg.exec.int_div
    );
}

/// Perfectly predictable branches leave the misprediction counter at
/// (almost) zero; a data-dependent coin-flip branch does not.
#[test]
fn predictability_separates_mispredict_counts() {
    let predictable = run(
        "li r1, 5000
         loop: addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::default(),
        4,
    );
    assert!(
        predictable.mispredicts < 20,
        "loop branch should be learned: {} mispredicts",
        predictable.mispredicts
    );
    let random = run(
        "li r1, 5000
         li r21, 88172645463325252
         loop:
         li r22, 6364136223846793005
         mul r21, r21, r22
         addi r21, r21, 1442695040888963407
         srli r4, r21, 40
         andi r4, r4, 1
         beqz r4, skip
         addi r5, r5, 1
         skip:
         addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::default(),
        4,
    );
    assert!(
        random.mispredicts > 1_000,
        "coin-flip branch cannot be predicted: {} mispredicts",
        random.mispredicts
    );
}

/// Store-to-load forwarding: a load immediately after a store to the
/// same word must be far faster than a cache round trip.
#[test]
fn store_forwarding_beats_cache_access() {
    let forwarded = run(
        ".data
         buf: .space 8
         .text
         la r2, buf
         li r1, 2000
         loop:
         sd r3, 0(r2)
         ld r3, 0(r2)
         addi r3, r3, 1
         addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::monolithic(),
        1,
    );
    assert!(forwarded.lsq_forwards > 1_500, "forwards: {}", forwarded.lsq_forwards);
    // Serial chain through memory: sd → ld (forward ≈1c) → addi.
    let cycles_per_iter = forwarded.cycles as f64 / 2000.0;
    assert!(
        cycles_per_iter < 10.0,
        "forwarding path too slow: {cycles_per_iter:.1} cycles/iteration"
    );
}

/// The same dependent-load chain gets slower as its data moves out in
/// the hierarchy: L1-resident vs L2-resident pointer chases.
#[test]
fn load_latency_orders_by_residency() {
    let chase = |stride: usize, span: usize| {
        // Build a pointer ring of `span` bytes, nodes every `stride`.
        let nodes = span / stride;
        let mut source = String::from(".data\nring: .space ");
        source.push_str(&span.to_string());
        source.push('\n');
        source.push_str(".text\nla r2, ring\nli r9, 20000\n");
        // Initialise: node i points to node i+1, last node wraps to
        // the ring head.
        source.push_str(&format!(
            "la r3, ring\nli r4, {nodes}\ninit:\naddi r5, r3, {stride}\nsd r5, 0(r3)\n\
             mov r3, r5\naddi r4, r4, -1\nbnez r4, init\n"
        ));
        source.push_str(&format!(
            "la r3, ring\nli r6, {last}\nadd r6, r6, r3\nsd r3, 0(r6)\n",
            last = (nodes - 1) * stride
        ));
        source.push_str(
            "la r1, ring\nchase:\nld r1, 0(r1)\naddi r9, r9, -1\nbnez r9, chase\nhalt",
        );
        run(&source, SimConfig::monolithic(), 1).cycles
    };
    let near = chase(64, 16 * 1024); // fits the 32KB L1
    let far = chase(64, 256 * 1024); // larger than L1, inside L2
    assert!(
        far > near * 2,
        "L2-resident chase must be much slower: near {near}, far {far}"
    );
}

/// Hop latency directly scales the communication penalty of a wide
/// machine (the §6 "slow wires" result in miniature).
#[test]
fn doubled_hop_latency_hurts_wide_configurations() {
    let mut program = String::from(".data\nbuf: .space 65536\n.text\n");
    program.push_str(
        "la r3, buf\nli r1, 30000\nloop:\nfld f1, 0(r3)\nfadd f1, f1, f2\nfsd f1, 0(r3)\n\
         addi r3, r3, 8\naddi r1, r1, -1\nbnez r1, loop\nhalt",
    );
    let fast = run(&program, SimConfig::default(), 16);
    let mut slow_cfg = SimConfig::default();
    slow_cfg.interconnect.hop_latency = 2;
    let slow = run(&program, slow_cfg, 16);
    assert!(
        slow.cycles > fast.cycles,
        "doubling hop latency must cost cycles: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

/// Register transfers only happen between clusters: the same program
/// on one cluster communicates zero times.
#[test]
fn single_cluster_never_transfers() {
    let s = run(
        "li r1, 3000
         loop: add r2, r2, r1
         addi r1, r1, -1
         bnez r1, loop
         halt",
        SimConfig::default(),
        1,
    );
    assert_eq!(s.reg_transfers, 0);
    assert_eq!(s.avg_active_clusters(), 1.0);
}
