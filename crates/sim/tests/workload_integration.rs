//! Integration tests: the full pipeline driven by real workload traces.
//!
//! These check the *qualitative* properties the paper's evaluation
//! depends on — not absolute IPC values.

use clustered_sim::{
    CacheModel, FixedPolicy, Processor, SimConfig, SimStats, Topology,
};
use clustered_workloads::by_name;

fn run(name: &str, cfg: SimConfig, clusters: usize, instructions: u64) -> SimStats {
    let w = by_name(name).expect("known workload");
    let stream = w.trace().map(|r| r.expect("workload cannot fault"));
    let mut cpu =
        Processor::new(cfg, stream, Box::new(FixedPolicy::new(clusters))).expect("valid config");
    // Short warm-up, then measure.
    cpu.run(20_000).expect("no stall");
    let before = *cpu.stats();
    cpu.run(instructions).expect("no stall");
    cpu.stats().delta_since(&before)
}

#[test]
fn all_workloads_simulate_on_default_config() {
    for w in clustered_workloads::all() {
        let s = run(w.name(), SimConfig::default(), 16, 30_000);
        let ipc = s.ipc();
        assert!(
            (0.05..16.0).contains(&ipc),
            "{}: implausible IPC {ipc}",
            w.name()
        );
        assert!(s.committed >= 30_000);
    }
}

#[test]
fn monolithic_beats_clustered_on_low_ilp_code() {
    // The monolithic Table-3 baseline has zero communication cost, so a
    // dependence-bound code must do at least as well there as on a
    // 16-cluster ring.
    let mono = run("parser", SimConfig::monolithic(), 1, 40_000);
    let ring16 = run("parser", SimConfig::default(), 16, 40_000);
    assert!(
        mono.ipc() > ring16.ipc() * 0.95,
        "monolithic {} vs 16-cluster {}",
        mono.ipc(),
        ring16.ipc()
    );
}

#[test]
fn distant_ilp_code_scales_with_clusters() {
    // swim has independent loop iterations far apart: 16 clusters (480
    // in-flight) should clearly beat 2 clusters (~60 in-flight).
    let few = run("swim", SimConfig::default(), 2, 40_000);
    let many = run("swim", SimConfig::default(), 16, 40_000);
    assert!(
        many.ipc() > few.ipc() * 1.1,
        "expected swim to gain from clusters: 2→{:.3}, 16→{:.3}",
        few.ipc(),
        many.ipc()
    );
}

#[test]
fn branchy_code_prefers_fewer_clusters() {
    // vpr cannot fill a deep window (mispredicts + serial chains), so
    // paying 16-cluster communication must not help.
    let few = run("vpr", SimConfig::default(), 4, 40_000);
    let many = run("vpr", SimConfig::default(), 16, 40_000);
    assert!(
        few.ipc() >= many.ipc() * 0.98,
        "expected vpr to prefer 4 clusters: 4→{:.3}, 16→{:.3}",
        few.ipc(),
        many.ipc()
    );
}

#[test]
fn distant_ilp_counter_separates_workload_classes() {
    let swim = run("swim", SimConfig::default(), 16, 40_000);
    let parser = run("parser", SimConfig::default(), 16, 40_000);
    let swim_frac = swim.distant_issues as f64 / swim.committed as f64;
    let parser_frac = parser.distant_issues as f64 / parser.committed as f64;
    assert!(
        swim_frac > parser_frac + 0.1,
        "distant ILP should separate swim ({swim_frac:.3}) from parser ({parser_frac:.3})"
    );
}

#[test]
fn mispredict_intervals_ordered_as_designed() {
    let swim = run("swim", SimConfig::default(), 16, 40_000);
    let vpr = run("vpr", SimConfig::default(), 16, 40_000);
    assert!(
        swim.mispredict_interval() > 4.0 * vpr.mispredict_interval(),
        "swim interval {} should dwarf vpr interval {}",
        swim.mispredict_interval(),
        vpr.mispredict_interval()
    );
}

#[test]
fn grid_interconnect_helps_wide_configurations() {
    let mut grid_cfg = SimConfig::default();
    grid_cfg.interconnect.topology = Topology::Grid;
    let ring = run("swim", SimConfig::default(), 16, 40_000);
    let grid = run("swim", grid_cfg, 16, 40_000);
    assert!(
        grid.ipc() >= ring.ipc() * 0.98,
        "grid should not be slower than ring: ring {:.3}, grid {:.3}",
        ring.ipc(),
        grid.ipc()
    );
}

#[test]
fn decentralized_cache_model_runs_and_predicts_banks() {
    let mut cfg = SimConfig::default();
    cfg.cache.model = CacheModel::Decentralized;
    let s = run("swim", cfg, 16, 40_000);
    assert!(s.bank_predictions > 1_000, "bank predictor unused");
    assert!(s.bank_accuracy() > 0.2, "bank accuracy {:.3}", s.bank_accuracy());
    assert!(s.ipc() > 0.05);
}

#[test]
fn register_transfers_grow_with_cluster_count() {
    let few = run("galgel", SimConfig::default(), 2, 40_000);
    let many = run("galgel", SimConfig::default(), 16, 40_000);
    let few_rate = few.reg_transfers as f64 / few.committed as f64;
    let many_rate = many.reg_transfers as f64 / many.committed as f64;
    assert!(
        many_rate > few_rate,
        "wider machine must communicate more: 2→{few_rate:.3}, 16→{many_rate:.3}"
    );
    assert!(many.avg_transfer_hops() > few.avg_transfer_hops());
}

#[test]
fn memory_bound_code_misses_in_l1() {
    let s = run("swim", SimConfig::default(), 16, 40_000);
    assert!(
        s.l1_hit_rate() < 0.995,
        "swim streams 1.5MB through a 32KB L1; hit rate {:.4}",
        s.l1_hit_rate()
    );
    assert!(s.l2_misses < s.l1_misses);
}
