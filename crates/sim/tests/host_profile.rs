//! End-to-end checks of the host-profiled cycle loop: profiling must
//! never change simulated behaviour, and the profile it produces must
//! be internally consistent with the run it measured.

use clustered_sim::{
    FixedPolicy, HostProfiler, HostStage, Processor, SimConfig, SimStats, SteeringKind,
};
use clustered_workloads::by_name;

fn run_profiled(instructions: u64, sample_interval: u64) -> (SimStats, HostProfiler) {
    let w = by_name("gzip").expect("gzip workload exists");
    let stream = w.trace().map(Result::unwrap);
    let mut cpu = Processor::with_observer(
        SimConfig::default(),
        stream,
        Box::new(FixedPolicy::new(8)),
        SteeringKind::default(),
        HostProfiler::new(sample_interval),
    )
    .expect("valid config");
    let stats = cpu.run(instructions).expect("no stall");
    let profiler = cpu.observer().clone();
    (stats, profiler)
}

/// The acceptance criterion for the profiler gate: a profiler-on run
/// changes no `SimStats` counter. Together with
/// `observed_and_unobserved_runs_are_identical` (which pins the
/// profiler-*off* loop) this brackets both sides of the
/// `WANTS_HOST_PROFILE` branch.
#[test]
fn profiled_and_plain_runs_have_identical_stats() {
    let w = by_name("gzip").expect("gzip workload exists");
    let stream = w.trace().map(Result::unwrap);
    let mut plain = Processor::new(SimConfig::default(), stream, Box::new(FixedPolicy::new(8)))
        .expect("valid config");
    let baseline = plain.run(20_000).expect("no stall");
    let (profiled, _) = run_profiled(20_000, 1_000);
    assert_eq!(baseline, profiled, "host profiling must not change simulated behaviour");
}

#[test]
fn profile_is_consistent_with_the_run() {
    let (stats, p) = run_profiled(30_000, 1_000);

    // Stage attribution: one sample per simulated cycle, and the stage
    // shares partition the measured loop time.
    assert_eq!(p.cycles(), stats.cycles, "one stage sample per cycle");
    assert!(p.loop_nanos() > 0, "a real run takes real time");
    let share_sum: f64 = HostStage::ALL.iter().map(|&s| p.stage_share(s)).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "stage shares sum to 1, got {share_sum}");

    // Load skew: FixedPolicy(8) keeps 8 clusters active, so events
    // drain from more than one shard and the skew summary is defined.
    assert!(p.drained_total() > 0, "a gzip run drains events");
    let active_shards = p.drained_events().iter().filter(|&&n| n > 0).count();
    assert!(active_shards > 1, "events spread across shards, saw {active_shards}");
    assert!(p.drained_skew() >= 1.0, "skew is max/mean over active shards");
    assert_eq!(
        p.drained_events().iter().sum::<u64>(),
        p.drained_total(),
        "per-shard attribution is complete"
    );

    // Busy-cycle accounting: the profiler samples the queued mask at
    // end-of-cycle (after dispatch has refilled it), so it is a
    // different instant than the issue-time `cluster_busy_cycles` in
    // SimStats — the counts need not match exactly, but both must be
    // plausible per-cycle tallies of the same machine.
    let profiler_busy: u64 = p.cluster_busy_cycles().iter().sum();
    assert!(profiler_busy > 0, "an active run has busy clusters");
    for (c, &busy) in p.cluster_busy_cycles().iter().enumerate() {
        assert!(busy <= stats.cycles, "cluster {c} busy {busy} of {} cycles", stats.cycles);
    }
    assert!(
        p.fully_quiescent_cycles() <= stats.cycles,
        "quiescent cycles bounded by the run length"
    );

    // Timeline: slices cover the run in order, with no drops at this
    // cap, and their stage nanos re-sum to (at most) the totals.
    assert!(!p.slices().is_empty());
    assert_eq!(p.dropped_slices(), 0);
    let mut prev_end = 0;
    for s in p.slices() {
        assert!(s.start_cycle >= prev_end);
        assert!(s.end_cycle > s.start_cycle);
        prev_end = s.end_cycle;
    }
    let sliced: u64 = p.slices().iter().map(|s| s.stage_nanos.iter().sum::<u64>()).sum();
    assert!(sliced <= p.loop_nanos(), "slices never claim more time than measured");
}

#[test]
fn reset_discards_warmup_from_the_profile() {
    let w = by_name("gzip").expect("gzip workload exists");
    let stream = w.trace().map(Result::unwrap);
    let mut cpu = Processor::with_observer(
        SimConfig::default(),
        stream,
        Box::new(FixedPolicy::new(8)),
        SteeringKind::default(),
        HostProfiler::new(500),
    )
    .expect("valid config");
    cpu.run(5_000).expect("no stall");
    let warm = cpu.stats().cycles;
    cpu.observer_mut().reset();
    let stats = cpu.run(10_000).expect("no stall");
    let p = cpu.observer();
    assert_eq!(p.cycles(), stats.cycles - warm, "profile covers only the measured window");
    for s in p.slices() {
        assert!(s.start_cycle >= warm, "no slice reaches back into the warmup");
    }
}
