//! Randomized equivalence of the flat pending-ring scheduler against a
//! reference model built the way the original implementation was: a
//! `BinaryHeap` of pending wakeups and per-group `BTreeSet`s of ready
//! instructions. The production [`Cluster`] replaced those structures
//! with a circular bucket ring and sorted vecs for speed; this suite
//! pins the claim that the replacement is *observationally identical* —
//! same selections, same order, same units, on arbitrary monotone
//! schedules, including ready times past the ring window and jumps
//! that wrap it.
//!
//! Run with `cargo test -p clustered-sim --features slow-tests`.
#![cfg(feature = "slow-tests")]

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use clustered_sim::{Cluster, ClusterParams, FuGroup, FU_GROUPS};

const GROUPS: [FuGroup; FU_GROUPS] =
    [FuGroup::IntAlu, FuGroup::IntMulDiv, FuGroup::FpAlu, FuGroup::FpMulDiv];

/// xorshift64* — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish draw in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The pre-ring scheduler, kept deliberately naive: pending wakeups in
/// a min-heap, ready instructions in ordered sets, selection walking
/// groups and units in the same order the production code does.
struct ModelCluster {
    pending: BinaryHeap<Reverse<(u64, u64, usize)>>,
    ready: [BTreeSet<u64>; FU_GROUPS],
    fu_busy: [Vec<u64>; FU_GROUPS],
}

impl ModelCluster {
    fn new(units: &[usize; FU_GROUPS]) -> ModelCluster {
        ModelCluster {
            pending: BinaryHeap::new(),
            ready: Default::default(),
            fu_busy: [
                vec![0; units[0]],
                vec![0; units[1]],
                vec![0; units[2]],
                vec![0; units[3]],
            ],
        }
    }

    fn enqueue(&mut self, group: FuGroup, ready_at: u64, seq: u64) {
        self.pending.push(Reverse((ready_at, seq, group.index())));
    }

    fn select(&mut self, now: u64, out: &mut Vec<(u64, FuGroup, usize)>) {
        while let Some(&Reverse((t, seq, gi))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            self.ready[gi].insert(seq);
        }
        for gi in 0..FU_GROUPS {
            for unit in 0..self.fu_busy[gi].len() {
                if self.fu_busy[gi][unit] > now {
                    continue;
                }
                match self.ready[gi].pop_first() {
                    Some(seq) => out.push((seq, GROUPS[gi], unit)),
                    None => break,
                }
            }
        }
    }

    fn occupy(&mut self, group: FuGroup, unit: usize, until: u64) {
        self.fu_busy[group.index()][unit] = until;
    }
}

fn params_with_units(units: &[usize; FU_GROUPS]) -> ClusterParams {
    ClusterParams {
        int_alu: units[0],
        int_muldiv: units[1],
        fp_alu: units[2],
        fp_muldiv: units[3],
        ..ClusterParams::default()
    }
}

/// Drives one randomized schedule through both schedulers and asserts
/// identical selections at every step.
fn run_schedule(seed: u64) {
    let mut rng = Rng(seed);
    let units = [
        1 + rng.below(3) as usize,
        1 + rng.below(2) as usize,
        1 + rng.below(3) as usize,
        1 + rng.below(2) as usize,
    ];
    let params = params_with_units(&units);
    let mut real = Cluster::new(&params);
    let mut model = ModelCluster::new(&units);

    let mut now = 0u64;
    let mut seq = 0u64;
    let steps = 400 + rng.below(400);
    let mut got = Vec::new();
    let mut want = Vec::new();
    for _ in 0..steps {
        // Mostly small steps; occasionally a jump past the ring window
        // to force far-overflow drains and occupancy-bitmap wraps. The
        // pipeline's contract: `now` advances between selects, and a
        // cycle's enqueues land before its select with `ready_at >=
        // now` — never in the past.
        now += match rng.below(20) {
            0 => 200 + rng.below(600),
            n => 1 + n % 4,
        };
        for _ in 0..rng.below(6) {
            let group = GROUPS[rng.below(FU_GROUPS as u64) as usize];
            // Ready anywhere from this cycle to far beyond the window.
            let ready_at = now + rng.below(700);
            real.enqueue(group, ready_at, seq);
            model.enqueue(group, ready_at, seq);
            seq += 1;
        }
        got.clear();
        want.clear();
        real.select(now, &mut got);
        model.select(now, &mut want);
        assert_eq!(got, want, "seed {seed}: selections diverged at cycle {now}");
        for &(_, group, unit) in &got {
            let until = now + 1 + rng.below(12);
            real.occupy(group, unit, until);
            model.occupy(group, unit, until);
        }
    }
    // Drain both to quiescence: everything pending must issue in the
    // same order once the schedule stops feeding new work.
    let mut guard = 0;
    while !real.is_idle() {
        now += 1 + rng.below(3);
        got.clear();
        want.clear();
        real.select(now, &mut got);
        model.select(now, &mut want);
        assert_eq!(got, want, "seed {seed}: drain diverged at cycle {now}");
        guard += 1;
        assert!(guard < 100_000, "seed {seed}: cluster failed to drain");
    }
    assert!(model.pending.is_empty() && model.ready.iter().all(BTreeSet::is_empty));
}

#[test]
fn flat_scheduler_matches_heap_model_on_random_schedules() {
    for seed in 1..=200u64 {
        run_schedule(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    }
}

#[test]
fn flat_scheduler_matches_heap_model_under_bursts() {
    // Heavier enqueue pressure with tiny unit counts: long ready
    // queues, sustained structural stalls, repeated same-cycle selects.
    for seed in 1..=50u64 {
        let mut rng = Rng(seed);
        let units = [1, 1, 1, 1];
        let params = params_with_units(&units);
        let mut real = Cluster::new(&params);
        let mut model = ModelCluster::new(&units);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut got = Vec::new();
        let mut want = Vec::new();
        for step in 0..600u64 {
            if step % 7 == 0 {
                for _ in 0..20 {
                    let group = GROUPS[rng.below(FU_GROUPS as u64) as usize];
                    let ready_at = now + rng.below(40);
                    real.enqueue(group, ready_at, seq);
                    model.enqueue(group, ready_at, seq);
                    seq += 1;
                }
            }
            now += 1 + rng.below(2);
            got.clear();
            want.clear();
            real.select(now, &mut got);
            model.select(now, &mut want);
            assert_eq!(got, want, "seed {seed}: burst selections diverged at cycle {now}");
            for &(_, group, unit) in &got {
                let until = now + 1 + rng.below(4);
                real.occupy(group, unit, until);
                model.occupy(group, unit, until);
            }
        }
    }
}
