//! Instruction steering heuristics (paper §2.1).
//!
//! The paper's default steers an instruction to the cluster producing
//! most of its operands, prioritising the cluster of the predicted
//! *critical* operand, and falls back to the least-loaded cluster on a
//! tie or when issue-queue imbalance exceeds an empirically chosen
//! threshold. `Mod_N` and `First_Fit` (Baniasadi & Moshovos) are
//! provided as the comparison points the paper says its heuristic can
//! approximate.

/// Which steering algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringKind {
    /// Operand-producer steering with criticality priority and a
    /// load-imbalance threshold (the paper's default).
    Producer {
        /// Maximum tolerated issue-queue occupancy excess over the
        /// least-loaded cluster before falling back to it.
        imbalance_threshold: usize,
    },
    /// Steer `n` consecutive instructions to one cluster, then move to
    /// its neighbour (minimises imbalance).
    ModN(usize),
    /// Fill one cluster before moving to its neighbour (minimises
    /// communication).
    FirstFit,
}

impl Default for SteeringKind {
    fn default() -> SteeringKind {
        // Threshold chosen empirically, as in the paper.
        SteeringKind::Producer { imbalance_threshold: 4 }
    }
}

/// Everything the steering stage knows about one instruction and the
/// current machine state.
#[derive(Debug, Clone, Copy)]
pub struct SteerRequest<'a> {
    /// Active clusters (instructions may only go to `0..active`).
    pub active: usize,
    /// Relevant issue-queue occupancy per cluster.
    pub occupancy: &'a [usize],
    /// Relevant issue-queue capacity.
    pub capacity: usize,
    /// Whether each cluster has a free destination register of the
    /// needed kind (ignore for instructions without a destination).
    pub has_free_reg: &'a [bool],
    /// Whether the instruction needs a destination register.
    pub needs_reg: bool,
    /// Cluster of the predicted-critical source operand's producer.
    pub critical_producer: Option<usize>,
    /// Cluster of the other source operand's producer.
    pub other_producer: Option<usize>,
    /// For loads/stores under the decentralized cache: the cluster
    /// owning the predicted bank (takes priority, §5).
    pub bank_cluster: Option<usize>,
}

/// Stateful steering logic.
#[derive(Debug, Clone)]
pub struct Steering {
    kind: SteeringKind,
    /// Mod_N / First_Fit cursor.
    cursor: usize,
    /// Instructions steered to the cursor cluster in the current group.
    run: usize,
}

impl Steering {
    /// Creates the steering stage.
    pub fn new(kind: SteeringKind) -> Steering {
        Steering { kind, cursor: 0, run: 0 }
    }

    /// Which heuristic this stage runs.
    pub fn kind(&self) -> SteeringKind {
        self.kind
    }

    /// Picks a cluster for one instruction, or `None` if no active
    /// cluster can currently accept it (dispatch must stall).
    pub fn choose(&mut self, req: &SteerRequest<'_>) -> Option<usize> {
        debug_assert!(req.active >= 1 && req.active <= req.occupancy.len());
        let fits = |c: usize| {
            req.occupancy[c] < req.capacity && (!req.needs_reg || req.has_free_reg[c])
        };
        let least_loaded = (0..req.active).filter(|&c| fits(c)).min_by_key(|&c| req.occupancy[c]);
        match self.kind {
            SteeringKind::Producer { imbalance_threshold } => {
                let preferred = req
                    .bank_cluster
                    .or(req.critical_producer)
                    .or(req.other_producer)
                    .filter(|&c| c < req.active);
                let fallback = least_loaded?;
                match preferred {
                    Some(c) if fits(c) => {
                        let imbalance = req.occupancy[c].saturating_sub(req.occupancy[fallback]);
                        if imbalance > imbalance_threshold {
                            Some(fallback)
                        } else {
                            Some(c)
                        }
                    }
                    _ => Some(fallback),
                }
            }
            SteeringKind::ModN(n) => {
                if self.cursor >= req.active {
                    self.cursor = 0;
                    self.run = 0;
                }
                if self.run >= n || !fits(self.cursor) {
                    // Move to the first acceptable neighbour.
                    let start = (self.cursor + 1) % req.active;
                    let next = (0..req.active).map(|i| (start + i) % req.active).find(|&c| fits(c))?;
                    self.cursor = next;
                    self.run = 0;
                }
                self.run += 1;
                Some(self.cursor)
            }
            SteeringKind::FirstFit => {
                if self.cursor >= req.active {
                    self.cursor = 0;
                }
                if fits(self.cursor) {
                    return Some(self.cursor);
                }
                let start = self.cursor;
                let next =
                    (1..=req.active).map(|i| (start + i) % req.active).find(|&c| fits(c))?;
                self.cursor = next;
                Some(next)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req<'a>(
        active: usize,
        occupancy: &'a [usize],
        has_free_reg: &'a [bool],
    ) -> SteerRequest<'a> {
        SteerRequest {
            active,
            occupancy,
            capacity: 15,
            has_free_reg,
            needs_reg: true,
            critical_producer: None,
            other_producer: None,
            bank_cluster: None,
        }
    }

    const FREE: [bool; 4] = [true; 4];

    #[test]
    fn producer_follows_critical_operand() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [3, 3, 3, 3];
        let r = SteerRequest { critical_producer: Some(2), ..req(4, &occ, &FREE) };
        assert_eq!(s.choose(&r), Some(2));
    }

    #[test]
    fn producer_prefers_bank_over_operands() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [3, 3, 3, 3];
        let r = SteerRequest {
            critical_producer: Some(2),
            bank_cluster: Some(1),
            ..req(4, &occ, &FREE)
        };
        assert_eq!(s.choose(&r), Some(1));
    }

    #[test]
    fn producer_falls_back_on_imbalance() {
        let mut s = Steering::new(SteeringKind::Producer { imbalance_threshold: 4 });
        let occ = [9, 1, 3, 3];
        let r = SteerRequest { critical_producer: Some(0), ..req(4, &occ, &FREE) };
        assert_eq!(s.choose(&r), Some(1), "imbalance 8 > 4 must fall back");
        let occ = [4, 1, 3, 3];
        let r = SteerRequest { critical_producer: Some(0), ..req(4, &occ, &FREE) };
        assert_eq!(s.choose(&r), Some(0), "imbalance 3 <= 4 keeps producer cluster");
    }

    #[test]
    fn producer_ignores_disabled_producer_cluster() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [5, 2, 0, 0];
        let r = SteerRequest { critical_producer: Some(3), ..req(2, &occ, &FREE) };
        assert_eq!(s.choose(&r), Some(1), "producer outside active set → least loaded");
    }

    #[test]
    fn full_cluster_rejected() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [15, 3, 3, 3];
        let r = SteerRequest { critical_producer: Some(0), ..req(4, &occ, &FREE) };
        assert_ne!(s.choose(&r), Some(0));
    }

    #[test]
    fn no_free_reg_rejected() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [1, 2, 3, 3];
        let regs = [false, true, true, true];
        let r = SteerRequest { critical_producer: Some(0), ..req(4, &occ, &regs) };
        assert_eq!(s.choose(&r), Some(1));
        // Without a destination the register constraint is ignored.
        let r = SteerRequest {
            critical_producer: Some(0),
            needs_reg: false,
            ..req(4, &occ, &regs)
        };
        assert_eq!(s.choose(&r), Some(0));
    }

    #[test]
    fn stall_when_everything_full() {
        let mut s = Steering::new(SteeringKind::default());
        let occ = [15, 15, 3, 3];
        assert_eq!(s.choose(&req(2, &occ, &FREE)), None);
    }

    #[test]
    fn mod_n_rotates_in_groups() {
        let mut s = Steering::new(SteeringKind::ModN(3));
        let occ = [0, 0, 0, 0];
        let picks: Vec<_> = (0..9).map(|_| s.choose(&req(4, &occ, &FREE)).unwrap()).collect();
        assert_eq!(picks, [0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn first_fit_fills_then_moves() {
        let mut s = Steering::new(SteeringKind::FirstFit);
        let mut occ = [14, 0, 0, 0];
        assert_eq!(s.choose(&req(4, &occ, &FREE)), Some(0));
        occ[0] = 15;
        assert_eq!(s.choose(&req(4, &occ, &FREE)), Some(1));
    }

    #[test]
    fn active_shrink_resets_cursors() {
        let mut s = Steering::new(SteeringKind::FirstFit);
        let occ = [15, 15, 15, 0];
        assert_eq!(s.choose(&req(4, &occ, &FREE)), Some(3));
        // Now only 2 clusters are active; cursor 3 must not be chosen.
        let occ = [3, 0, 0, 0];
        assert_eq!(s.choose(&req(2, &occ, &FREE)), Some(0));
    }
}
