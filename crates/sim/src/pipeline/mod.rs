//! The cycle-level clustered out-of-order processor.
//!
//! Trace-driven: the [`Processor`] consumes the dynamic instruction
//! stream produced by `clustered-emu` and models fetch (with a real
//! branch predictor and misprediction stalls), rename/steering,
//! per-cluster issue, inter-cluster operand transfers on a contended
//! interconnect, the LSQ/cache hierarchy of either cache model, and
//! in-order commit — with the active-cluster count under the control
//! of a [`ReconfigPolicy`].
//!
//! # Module layout
//!
//! This module holds the shared machine state ([`Processor`]) and the
//! cycle loop ([`Processor::run`]/`step_cycle`); each pipeline stage
//! lives in its own submodule operating on that state:
//!
//! - `domain` — the per-cluster [`ClusterDomain`]: the state one
//!   cluster owns exclusively (calendar shard, scheduler ring,
//!   occupancies, value-copy tables).
//! - `events` — the global event coordinator and every event handler
//!   (writeback, address resolution, LSQ arrival, store broadcast).
//! - `commit` — in-order retirement, policy requests, and
//!   reconfiguration.
//! - `issue` — per-cluster select/issue with quiescence skipping.
//! - `dispatch` — rename, steering, and structural-hazard checks.
//! - `fetch` — branch prediction and the fetch queue.
//! - `pool` — the scoped spin-barrier pool behind `--intra-jobs`.
//!
//! # Sharding, quiescence, and intra-run parallelism
//!
//! The event queue is sharded per physical cluster and the issue stage
//! keeps a bitmask of clusters with queued instructions, so a cycle's
//! cost scales with the *busy* clusters, not the configured width:
//! quiescent clusters — including every cluster beyond the active
//! count — are skipped in O(1). Event order is still the global
//! `(time, tick)` order of a single queue, so the computed schedule is
//! bit-identical to the pre-sharding simulator (see DESIGN.md and the
//! oracle pin in `tests/shard_equivalence.rs`).
//!
//! With [`SimConfig::intra_jobs`] non-zero the drain and issue stages
//! run their per-domain halves (gather, select) across a scoped
//! thread pool and apply the results on the main thread in the
//! sequential order — same schedule, pinned bit-identical by
//! `tests/parallel_equivalence.rs`.

mod commit;
mod dispatch;
mod domain;
mod events;
mod fetch;
mod issue;
mod pool;

use crate::bankpred::BankPredictor;
use crate::bpred::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::cluster::FuGroup;
use crate::config::{CacheModel, ConfigError, SimConfig, MAX_CLUSTERS};
use crate::crit::CriticalityPredictor;
use crate::interconnect::Interconnect;
use crate::lsq::LsqSlice;
use crate::observe::{NullObserver, SimObserver};
use crate::reconfig::ReconfigPolicy;
use crate::stats::SimStats;
use crate::steer::{Steering, SteeringKind};
use clustered_emu::{DecodedInst, TraceSource};
use clustered_isa::{ArchReg, OpClass};
use domain::ClusterDomain;
use events::{EventCoordinator, EventKind};
use pool::IntraPool;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

const ABSENT: u64 = u64::MAX;

/// Waiter slot marking a store's data operand.
const STORE_VALUE_SLOT: u8 = 2;

/// Minimum per-phase fan-out (due shards, busy clusters) before a
/// phase is worth handing to the pool: below this the barrier costs
/// more than the work. Purely a host-side gate — the simulated
/// schedule is identical either way.
const FANOUT_MIN: usize = 4;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// No instruction committed for a long time — an internal modelling
    /// bug rather than a program property.
    Stalled {
        /// The cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::Stalled { cycle } => {
                write!(f, "pipeline made no progress near cycle {cycle}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[derive(Debug)]
struct Fetched {
    d: DecodedInst,
    fetched_at: u64,
    mispredicted: bool,
}

// `RobEntry::copies_mask` carries one validity bit per cluster.
const _: () = assert!(MAX_CLUSTERS <= 16, "copies_mask is a u16");

/// One in-flight instruction.
///
/// Cluster-valued fields are `u8` (`MAX_CLUSTERS` is 16) and the bank
/// index `u16`, trimming the entry the commit stage copies and the
/// dispatch stage fills; the former 128-byte per-cluster `copies`
/// table lives in the [`ClusterDomain`] value-copy tables, indexed by
/// this entry's physical ROB slot, so the hot scalar stream no longer
/// strides over it (ROADMAP "backend wall, round two"; measured in
/// EXPERIMENTS.md).
#[derive(Debug)]
struct RobEntry {
    d: DecodedInst,
    class: OpClass,
    cluster: u8,
    dest: Option<ArchReg>,
    /// Physical register to free at commit: (cluster, domain index).
    frees: Option<(u8, u8)>,
    srcs_outstanding: u8,
    /// When each gating source operand arrived (criticality training).
    src_arrival: [u64; 2],
    /// Which gating source slots this instruction has.
    src_present: [bool; 2],
    ready_at: u64,
    done: bool,
    done_at: u64,
    distant: bool,
    mispredicted: bool,
    /// Bit `c` ⇔ the domain-`c` value-copy table holds this entry's
    /// arrival cycle at cluster `c` (under the entry's physical slot).
    /// The mask is what dispatch resets on slot reuse, so the copy
    /// tables are never re-filled with `ABSENT`.
    copies_mask: u16,
    /// Consumers waiting on this result: (seq, cluster, source slot —
    /// 0/1 for issue-gating operands, [`STORE_VALUE_SLOT`] for a
    /// store's data).
    waiters: Vec<(u64, u8, u8)>,
    /// Stores: cycle the AGU produced the address (`ABSENT` until then).
    agu_done: u64,
    /// Stores: cycle the data value is available in the store's cluster
    /// (`ABSENT` until known).
    store_value_at: u64,
    /// Memory: resolved bank and its cluster. The bank is `u16`: the
    /// centralized model's bank count is a free parameter, only
    /// validated to a power of two.
    bank: u16,
    bank_cluster: u8,
    /// LSQ slice the entry's slot was allocated in.
    alloc_slice: u8,
    /// Active cluster count when dispatched.
    active_at_dispatch: u8,
}

impl RobEntry {
    /// An empty slot for the ROB ring's initial allocation. Every
    /// field is overwritten by [`RobRing::push_slot`]'s caller before
    /// the entry is observable.
    fn vacant() -> RobEntry {
        RobEntry {
            d: DecodedInst {
                seq: 0,
                pc: 0,
                class: OpClass::IntAlu,
                srcs: [None; 2],
                dest: None,
                mem: None,
                branch: None,
            },
            class: OpClass::IntAlu,
            cluster: 0,
            dest: None,
            frees: None,
            srcs_outstanding: 0,
            src_arrival: [0; 2],
            src_present: [false; 2],
            ready_at: 0,
            done: false,
            done_at: 0,
            distant: false,
            mispredicted: false,
            copies_mask: 0,
            waiters: Vec::new(),
            agu_done: ABSENT,
            store_value_at: ABSENT,
            bank: 0,
            bank_cluster: 0,
            alloc_slice: 0,
            active_at_dispatch: 0,
        }
    }
}

/// The re-order buffer: fixed slots in a power-of-two ring.
///
/// A `VecDeque<RobEntry>` moved every ~400-byte entry twice — once
/// built on the stack and pushed at dispatch, once popped at commit —
/// and the waiter `Vec` inside had to be recycled through a side pool
/// to survive those moves. Entries now live in place: dispatch writes
/// the tail slot's fields directly, commit copies out the handful of
/// scalars retirement needs and advances the head, and each slot's
/// waiter vector keeps its allocation for the slot's next occupant.
///
/// Indexing is by *logical* position (0 = oldest), which keeps
/// [`Processor::rob_index`]'s `seq - head_seq` arithmetic unchanged.
struct RobRing {
    slots: Box<[RobEntry]>,
    /// Physical index of logical position 0.
    head: usize,
    len: usize,
    mask: usize,
}

impl RobRing {
    fn new(capacity: usize) -> RobRing {
        let cap = capacity.next_power_of_two();
        RobRing {
            slots: (0..cap).map(|_| RobEntry::vacant()).collect(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.slots[self.head])
    }

    /// Opens the tail slot for in-place initialisation. The caller
    /// must overwrite every field; `waiters` is cleared here and its
    /// capacity carries over from the slot's previous occupant.
    fn push_slot(&mut self) -> &mut RobEntry {
        debug_assert!(self.len <= self.mask, "ROB ring overfull");
        let idx = (self.head + self.len) & self.mask;
        self.len += 1;
        let slot = &mut self.slots[idx];
        slot.waiters.clear();
        slot
    }

    /// Retires logical position 0; its slot becomes reusable.
    fn advance_head(&mut self) {
        debug_assert!(self.len > 0, "advancing an empty ROB");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Physical slot of logical position `i` — stable for the entry's
    /// whole lifetime, keying the per-domain value-copy tables.
    #[inline]
    fn slot_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "ROB slot of {i} out of {}", self.len);
        (self.head + i) & self.mask
    }

    /// Physical slot count (the rounded-up power of two).
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl std::ops::Index<usize> for RobRing {
    type Output = RobEntry;
    #[inline]
    fn index(&self, i: usize) -> &RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        &self.slots[(self.head + i) & self.mask]
    }
}

impl std::ops::IndexMut<usize> for RobRing {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        &mut self.slots[(self.head + i) & self.mask]
    }
}

/// The simulated processor.
///
/// Generic over the dynamic-instruction source and over an observer
/// receiving per-event callbacks; see the crate-level documentation
/// for a complete example. The default [`NullObserver`] costs nothing
/// — its empty hooks monomorphize away.
pub struct Processor<T, O = NullObserver> {
    cfg: SimConfig,
    trace: T,
    policy: Box<dyn ReconfigPolicy>,
    net: Interconnect,
    mem: MemHierarchy,
    bpred: BranchPredictor,
    bankpred: BankPredictor,
    crit: CriticalityPredictor,
    steering: Steering,
    /// One [`ClusterDomain`] per physical cluster: the scheduler ring,
    /// calendar shard, IQ/free-reg occupancy, and value-availability
    /// state that cluster owns exclusively. Everything cross-cluster —
    /// register copies, interconnect hops, LSQ/cache traffic, commit —
    /// goes through the event coordinator or runs on the main thread.
    domains: Vec<ClusterDomain>,
    lsq: Vec<LsqSlice>,
    rob: RobRing,
    rename: [Option<u64>; 64],
    arch_home: [usize; 64],
    fetch_queue: VecDeque<Fetched>,
    /// Reused fetch-stage scratch buffer for one decoded run (the
    /// instructions up to and including the next control transfer).
    fetch_run: Vec<DecodedInst>,
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    dispatch_stall_until: u64,
    trace_done: bool,
    /// Global `(time, tick)` ordering state over the domains' calendar
    /// shards.
    events: EventCoordinator,
    /// Reused batch-drain merge scratch: `(time, tick, shard, kind)`.
    drain_scratch: Vec<(u64, u64, u32, EventKind)>,
    /// Bit `c` set ⇔ cluster `c` has queued (dispatched, operands
    /// ready or pending) instructions; the issue stage visits only set
    /// bits. Maintained by [`Processor::cluster_enqueue`] and the
    /// issue loop.
    queued_mask: u32,
    /// Loads whose forwarding store has not produced its data yet, as
    /// (store seq, load seq, LSQ slice) in arrival order. Bounded by
    /// LSQ capacity and near-empty in practice, so a flat vector beats
    /// the former per-load hash map: no hashing on the store
    /// writeback path and no per-store `Vec` allocation.
    loads_waiting_data: Vec<(u64, u64, usize)>,
    /// Scratch for draining `loads_waiting_data` matches without
    /// holding a borrow across `proceed_load`.
    waiting_scratch: Vec<(u64, usize)>,
    now: u64,
    active: usize,
    pending_reconfig: Option<usize>,
    reconfig_request: Option<usize>,
    stats: SimStats,
    observer: O,
}

/// Occupancy of the machine's structures at one instant (see
/// [`Processor::occupancy_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Re-order-buffer entries in flight.
    pub rob: usize,
    /// Fetch-queue entries waiting to dispatch.
    pub fetch_queue: usize,
    /// Clusters currently enabled; the per-cluster vectors below cover
    /// exactly these.
    pub active: usize,
    /// Free physical registers per *active* cluster, `[int, fp]`.
    pub free_regs: Vec<[usize; 2]>,
    /// Issue-queue entries in use per *active* cluster, `[int, fp]`.
    pub iq_used: Vec<[usize; 2]>,
    /// Load/store-queue slots in use per slice. All slices are
    /// reported — a slice beyond `active` should be empty, so a
    /// non-zero count there is itself diagnostic.
    pub lsq_used: Vec<usize>,
}

/// Rounds a requested cluster count to the nearest legal value: in
/// `1..=total`, and — when `pow2` (the decentralized model, whose bank
/// interleaving masks addresses) — a power of two, rounding down.
fn legal_cluster_count(request: usize, total: usize, pow2: bool) -> usize {
    let clamped = request.clamp(1, total);
    if !pow2 || clamped.is_power_of_two() {
        clamped
    } else {
        clamped.next_power_of_two() / 2
    }
}

impl<T: TraceSource> Processor<T> {
    /// Builds a processor over `trace` governed by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn new(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
    ) -> Result<Processor<T>, SimError> {
        Self::with_steering(cfg, trace, policy, SteeringKind::default())
    }

    /// Builds a processor with an explicit steering heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_steering(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
    ) -> Result<Processor<T>, SimError> {
        Processor::with_observer(cfg, trace, policy, steering, NullObserver)
    }
}

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    /// Builds a processor whose pipeline events are reported to
    /// `observer` (see [`SimObserver`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_observer(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
        observer: O,
    ) -> Result<Processor<T, O>, SimError> {
        cfg.validate()?;
        let count = cfg.clusters.count;
        // Architectural registers are homed round-robin across the
        // physical clusters and occupy a register there.
        let mut reserved = [[0usize; 2]; MAX_CLUSTERS];
        let mut arch_home = [0usize; 64];
        for r in 0..64 {
            let home = r % count;
            arch_home[r] = home;
            reserved[home][usize::from(r >= 32)] += 1;
        }
        let rob = RobRing::new(cfg.frontend.rob_size);
        let rob_slots = rob.capacity();
        let mut domains: Vec<ClusterDomain> =
            (0..count).map(|_| ClusterDomain::new(&cfg.clusters, rob_slots)).collect();
        for (c, d) in domains.iter_mut().enumerate() {
            assert!(
                reserved[c][0] < cfg.clusters.int_regs && reserved[c][1] < cfg.clusters.fp_regs,
                "architectural state exceeds the cluster register file"
            );
            d.free_regs[0] = cfg.clusters.int_regs - reserved[c][0];
            d.free_regs[1] = cfg.clusters.fp_regs - reserved[c][1];
        }
        let lsq = match cfg.cache.model {
            CacheModel::Centralized => vec![LsqSlice::new(cfg.cache.lsq_per_cluster * count)],
            CacheModel::Decentralized => {
                (0..count).map(|_| LsqSlice::new(cfg.cache.lsq_per_cluster)).collect()
            }
        };
        let initial = legal_cluster_count(
            policy.initial_clusters(),
            count,
            cfg.cache.model == CacheModel::Decentralized,
        );
        Ok(Processor {
            net: Interconnect::new(&cfg.interconnect, count),
            mem: MemHierarchy::new(&cfg.cache, count),
            bpred: BranchPredictor::new(&cfg.bpred),
            bankpred: BankPredictor::new(&cfg.bankpred),
            crit: CriticalityPredictor::new(cfg.crit.table_size),
            steering: Steering::new(steering),
            domains,
            lsq,
            rob,
            rename: [None; 64],
            arch_home,
            fetch_queue: VecDeque::with_capacity(cfg.frontend.fetch_queue),
            fetch_run: Vec::with_capacity(cfg.frontend.fetch_width),
            fetch_stall_until: 0,
            awaiting_redirect: false,
            dispatch_stall_until: 0,
            trace_done: false,
            events: EventCoordinator::new(count),
            drain_scratch: Vec::new(),
            queued_mask: 0,
            loads_waiting_data: Vec::new(),
            waiting_scratch: Vec::new(),
            now: 0,
            active: initial,
            pending_reconfig: None,
            reconfig_request: None,
            stats: SimStats::default(),
            observer,
            cfg,
            trace,
            policy,
        })
    }

    /// Accumulated statistics (monotonic; snapshot and use
    /// [`SimStats::delta_since`] to measure an interval).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably (e.g. to drain collected data
    /// between measurement windows).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// The currently active cluster count.
    pub fn active_clusters(&self) -> usize {
        self.active
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// A snapshot of structure occupancies, for debugging and
    /// introspection. The per-cluster vectors cover only the `active`
    /// clusters — disabled clusters hold no instructions, and
    /// reporting their idle resources made `diag` output misleading.
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        OccupancySnapshot {
            rob: self.rob.len(),
            fetch_queue: self.fetch_queue.len(),
            active: self.active,
            free_regs: self.domains[..self.active].iter().map(|d| d.free_regs).collect(),
            iq_used: self.domains[..self.active].iter().map(|d| d.iq_used).collect(),
            lsq_used: self.lsq.iter().map(LsqSlice::occupancy).collect(),
        }
    }

    /// Whether the instruction source is exhausted and the pipeline
    /// has drained.
    pub fn finished(&self) -> bool {
        self.trace_done && self.fetch_queue.is_empty() && self.rob.is_empty()
    }

    /// Runs until `instructions` more have committed, the trace ends,
    /// or an error occurs. Returns the statistics snapshot.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if the pipeline stops making progress (an
    /// internal invariant violation, not a program property).
    pub fn run(&mut self, instructions: u64) -> Result<SimStats, SimError> {
        // `intra_jobs` is a host-execution knob: the parallel path
        // computes the bit-identical schedule (pinned by
        // `tests/parallel_equivalence.rs`), it just drains/selects the
        // domains on more threads. Below two participants there is no
        // pool — `intra_jobs == 1` still exercises the batched path,
        // single-threaded.
        let threads = self.cfg.intra_jobs.min(self.domains.len());
        if threads >= 2 {
            let state = pool::PoolState::new();
            std::thread::scope(|scope| {
                // Shuts the workers down even if `run_loop` panics;
                // otherwise the scope's implicit join would deadlock.
                let _guard = pool::ShutdownGuard(&state);
                for t in 1..threads {
                    let state = &state;
                    scope.spawn(move || pool::worker(state, t, threads));
                }
                let intra = IntraPool::new(&state, threads);
                self.run_loop(instructions, Some(&intra))
            })
        } else {
            self.run_loop(instructions, None)
        }
    }

    fn run_loop(
        &mut self,
        instructions: u64,
        pool: Option<&IntraPool>,
    ) -> Result<SimStats, SimError> {
        let target = self.stats.committed + instructions;
        let mut last_progress = (self.stats.committed, self.now);
        while self.stats.committed < target && !self.finished() {
            self.step_cycle(pool);
            if self.stats.committed != last_progress.0 {
                last_progress = (self.stats.committed, self.now);
            } else if self.now - last_progress.1 > 1_000_000 {
                return Err(SimError::Stalled { cycle: self.now });
            }
        }
        Ok(self.stats)
    }

    /// Advances the machine one cycle.
    ///
    /// `WANTS_HOST_PROFILE` is a `const`, so each monomorphization
    /// keeps exactly one of the two loop bodies: the default
    /// [`NullObserver`](crate::NullObserver) build compiles to
    /// [`step_cycle_plain`](Self::step_cycle_plain) — byte-for-byte the
    /// pre-profiler loop — and pays nothing for the instrumentation.
    fn step_cycle(&mut self, pool: Option<&IntraPool>) {
        if O::WANTS_HOST_PROFILE {
            self.step_cycle_profiled(pool);
        } else {
            self.step_cycle_plain(pool);
        }
        // `WANTS_AUDIT` is likewise a `const`: the default build
        // compiles the snapshot assembly away entirely. The snapshot
        // only *reads* machine state, so audited runs compute the
        // bit-identical schedule.
        if O::WANTS_AUDIT {
            self.deliver_audit();
        }
    }

    /// Assembles the end-of-cycle [`crate::AuditCheck`] snapshot and
    /// hands it to the observer. Called only when `O::WANTS_AUDIT`.
    fn deliver_audit(&mut self) {
        let (events_pushed, events_popped, events_pending) =
            self.events.conservation(&self.domains);
        // The auditor's dense `[domain][cluster]` view, assembled from
        // the per-domain owners; audit is off the hot path.
        let mut iq_used = [[0usize; MAX_CLUSTERS]; 2];
        for (c, d) in self.domains.iter().enumerate() {
            iq_used[0][c] = d.iq_used[0];
            iq_used[1][c] = d.iq_used[1];
        }
        let check = crate::audit::AuditCheck {
            cycle: self.now,
            stats: &self.stats,
            rob_len: self.rob.len(),
            rob_capacity: self.cfg.frontend.rob_size,
            fetch_queue_len: self.fetch_queue.len(),
            fetch_queue_capacity: self.cfg.frontend.fetch_queue,
            iq_used: &iq_used,
            iq_capacity: [self.cfg.clusters.int_iq, self.cfg.clusters.fp_iq],
            lsq: &self.lsq,
            active_clusters: self.active,
            configured_clusters: self.domains.len(),
            events_pushed,
            events_popped,
            events_pending,
        };
        self.observer.on_audit(&check);
    }

    fn step_cycle_plain(&mut self, pool: Option<&IntraPool>) {
        self.now += 1;
        if self.cfg.intra_jobs == 0 {
            self.drain_events();
        } else {
            self.drain_events_batched(pool);
        }
        self.commit();
        self.apply_reconfig();
        if self.cfg.intra_jobs == 0 {
            self.issue();
        } else {
            self.issue_split(pool);
        }
        self.dispatch();
        self.fetch();
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.active_cluster_cycles += self.active as u64;
        self.stats.cycles_at_config[self.active - 1] += 1;
        self.observer.on_cycle(self.now, self.active, self.rob.len());
    }

    /// The same cycle as [`step_cycle_plain`](Self::step_cycle_plain),
    /// bracketed by monotonic-clock reads so each stage's wall-clock is
    /// attributed to its bucket. The stage sequence and every simulated
    /// effect are identical — the timers and the end-of-cycle health
    /// sample only *read* state — so profiled `SimStats` match the
    /// plain loop bit for bit (pinned by the host-profile tests).
    fn step_cycle_profiled(&mut self, pool: Option<&IntraPool>) {
        use crate::host::{QueueHealth, HOST_STAGE_COUNT};
        use std::time::Instant;
        self.now += 1;
        let mut marks = [Instant::now(); HOST_STAGE_COUNT + 1];
        if self.cfg.intra_jobs == 0 {
            self.drain_events();
        } else {
            self.drain_events_batched(pool);
        }
        marks[1] = Instant::now();
        self.commit();
        self.apply_reconfig();
        marks[2] = Instant::now();
        if self.cfg.intra_jobs == 0 {
            self.issue();
        } else {
            self.issue_split(pool);
        }
        marks[3] = Instant::now();
        self.dispatch();
        marks[4] = Instant::now();
        self.fetch();
        marks[5] = Instant::now();
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.active_cluster_cycles += self.active as u64;
        self.stats.cycles_at_config[self.active - 1] += 1;
        self.observer.on_cycle(self.now, self.active, self.rob.len());
        marks[6] = Instant::now();
        let mut nanos = [0u64; HOST_STAGE_COUNT];
        for (i, n) in nanos.iter_mut().enumerate() {
            *n = marks[i + 1].duration_since(marks[i]).as_nanos() as u64;
        }
        self.observer.on_stage_nanos(&nanos);
        let (calendar_events, overflow_events, floor) = self.events.health(&self.domains);
        self.observer.on_queue_health(&QueueHealth {
            cycle: self.now,
            calendar_events,
            overflow_events,
            floor,
            queued_mask: self.queued_mask,
            active_clusters: self.active,
            configured_clusters: self.domains.len(),
            intra_threads: if self.cfg.intra_jobs == 0 {
                0
            } else {
                pool.map_or(1, IntraPool::threads)
            },
        });
    }

    /// Index of in-flight instruction `seq` in the ROB, or `None` if
    /// it is not there (already committed, or never dispatched).
    ///
    /// Invariant: every `seq` held by the scheduler — event payloads,
    /// rename-map entries, waiter lists, issue selections — names an
    /// in-flight ROB entry, with one deliberate exception: store
    /// broadcasts (`EventKind::StoreResolved`) may land after their
    /// store committed. Callers on that path treat `None` as "already
    /// committed"; everywhere else `None` means the simulator state is
    /// corrupt, which is a `debug_assert` at the call site and a
    /// dropped event — never a panic — in release builds.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.d.seq;
        let idx = seq.checked_sub(head)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    /// Queues `seq` for issue in `cluster` and marks the cluster
    /// non-quiescent. Every enqueue must come through here so
    /// `queued_mask` stays in sync with the clusters' queues.
    fn cluster_enqueue(&mut self, cluster: usize, group: FuGroup, ready_at: u64, seq: u64) {
        self.domains[cluster].sched.enqueue(group, ready_at, seq);
        self.queued_mask |= 1 << cluster;
    }
}

impl<T, O> fmt::Debug for Processor<T, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Processor")
            .field("cycle", &self.now)
            .field("active", &self.active)
            .field("committed", &self.stats.committed)
            .field("rob_occupancy", &self.rob.len())
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}
