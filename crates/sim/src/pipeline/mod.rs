//! The cycle-level clustered out-of-order processor.
//!
//! Trace-driven: the [`Processor`] consumes the dynamic instruction
//! stream produced by `clustered-emu` and models fetch (with a real
//! branch predictor and misprediction stalls), rename/steering,
//! per-cluster issue, inter-cluster operand transfers on a contended
//! interconnect, the LSQ/cache hierarchy of either cache model, and
//! in-order commit — with the active-cluster count under the control
//! of a [`ReconfigPolicy`].
//!
//! # Module layout
//!
//! This module holds the shared machine state ([`Processor`]) and the
//! cycle loop ([`Processor::run`]/`step_cycle`); each pipeline stage
//! lives in its own submodule operating on that state:
//!
//! - `events` — the sharded event queues and every event handler
//!   (writeback, address resolution, LSQ arrival, store broadcast).
//! - `commit` — in-order retirement, policy requests, and
//!   reconfiguration.
//! - `issue` — per-cluster select/issue with quiescence skipping.
//! - `dispatch` — rename, steering, and structural-hazard checks.
//! - `fetch` — branch prediction and the fetch queue.
//!
//! # Sharding and quiescence
//!
//! The event queue is sharded per physical cluster and the issue stage
//! keeps a bitmask of clusters with queued instructions, so a cycle's
//! cost scales with the *busy* clusters, not the configured width:
//! quiescent clusters — including every cluster beyond the active
//! count — are skipped in O(1). Event order is still the global
//! `(time, tick)` order of a single queue, so the computed schedule is
//! bit-identical to the pre-sharding simulator (see DESIGN.md and the
//! oracle pin in `tests/shard_equivalence.rs`).

mod commit;
mod dispatch;
mod events;
mod fetch;
mod issue;

use crate::bankpred::BankPredictor;
use crate::bpred::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::cluster::{Cluster, FuGroup};
use crate::config::{CacheModel, ConfigError, SimConfig, MAX_CLUSTERS};
use crate::crit::CriticalityPredictor;
use crate::interconnect::Interconnect;
use crate::lsq::LsqSlice;
use crate::observe::{NullObserver, SimObserver};
use crate::reconfig::ReconfigPolicy;
use crate::stats::SimStats;
use crate::steer::{Steering, SteeringKind};
use clustered_emu::{DecodedInst, TraceSource};
use clustered_isa::{ArchReg, OpClass};
use events::EventShards;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

const ABSENT: u64 = u64::MAX;

/// Waiter slot marking a store's data operand.
const STORE_VALUE_SLOT: u8 = 2;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// No instruction committed for a long time — an internal modelling
    /// bug rather than a program property.
    Stalled {
        /// The cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::Stalled { cycle } => {
                write!(f, "pipeline made no progress near cycle {cycle}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[derive(Debug)]
struct Fetched {
    d: DecodedInst,
    fetched_at: u64,
    mispredicted: bool,
}

// `RobEntry::copies_mask` carries one validity bit per cluster.
const _: () = assert!(MAX_CLUSTERS <= 16, "copies_mask is a u16");

#[derive(Debug)]
struct RobEntry {
    d: DecodedInst,
    class: OpClass,
    cluster: usize,
    dest: Option<ArchReg>,
    /// Physical register to free at commit: (cluster, domain index).
    frees: Option<(usize, usize)>,
    srcs_outstanding: u8,
    /// When each gating source operand arrived (criticality training).
    src_arrival: [u64; 2],
    /// Which gating source slots this instruction has.
    src_present: [bool; 2],
    ready_at: u64,
    done: bool,
    done_at: u64,
    distant: bool,
    mispredicted: bool,
    /// Cycles-per-cluster availability of this entry's result. Slot
    /// `c` is meaningful only when bit `c` of `copies_mask` is set —
    /// the mask is what dispatch resets, so slot reuse costs two bytes
    /// instead of re-filling this whole array with `ABSENT`.
    copies: [u64; MAX_CLUSTERS],
    /// Bit `c` ⇔ `copies[c]` holds this entry's arrival at cluster `c`.
    copies_mask: u16,
    /// Consumers waiting on this result: (seq, cluster, source slot —
    /// 0/1 for issue-gating operands, [`STORE_VALUE_SLOT`] for a
    /// store's data).
    waiters: Vec<(u64, usize, u8)>,
    /// Stores: cycle the AGU produced the address (`ABSENT` until then).
    agu_done: u64,
    /// Stores: cycle the data value is available in the store's cluster
    /// (`ABSENT` until known).
    store_value_at: u64,
    /// Memory: resolved bank and its cluster.
    bank: usize,
    bank_cluster: usize,
    /// LSQ slice the entry's slot was allocated in.
    alloc_slice: usize,
    /// Active cluster count when dispatched.
    active_at_dispatch: usize,
}

impl RobEntry {
    /// An empty slot for the ROB ring's initial allocation. Every
    /// field is overwritten by [`RobRing::push_slot`]'s caller before
    /// the entry is observable.
    fn vacant() -> RobEntry {
        RobEntry {
            d: DecodedInst {
                seq: 0,
                pc: 0,
                class: OpClass::IntAlu,
                srcs: [None; 2],
                dest: None,
                mem: None,
                branch: None,
            },
            class: OpClass::IntAlu,
            cluster: 0,
            dest: None,
            frees: None,
            srcs_outstanding: 0,
            src_arrival: [0; 2],
            src_present: [false; 2],
            ready_at: 0,
            done: false,
            done_at: 0,
            distant: false,
            mispredicted: false,
            copies: [ABSENT; MAX_CLUSTERS],
            copies_mask: 0,
            waiters: Vec::new(),
            agu_done: ABSENT,
            store_value_at: ABSENT,
            bank: 0,
            bank_cluster: 0,
            alloc_slice: 0,
            active_at_dispatch: 0,
        }
    }
}

/// The re-order buffer: fixed slots in a power-of-two ring.
///
/// A `VecDeque<RobEntry>` moved every ~400-byte entry twice — once
/// built on the stack and pushed at dispatch, once popped at commit —
/// and the waiter `Vec` inside had to be recycled through a side pool
/// to survive those moves. Entries now live in place: dispatch writes
/// the tail slot's fields directly, commit copies out the handful of
/// scalars retirement needs and advances the head, and each slot's
/// waiter vector keeps its allocation for the slot's next occupant.
///
/// Indexing is by *logical* position (0 = oldest), which keeps
/// [`Processor::rob_index`]'s `seq - head_seq` arithmetic unchanged.
struct RobRing {
    slots: Box<[RobEntry]>,
    /// Physical index of logical position 0.
    head: usize,
    len: usize,
    mask: usize,
}

impl RobRing {
    fn new(capacity: usize) -> RobRing {
        let cap = capacity.next_power_of_two();
        RobRing {
            slots: (0..cap).map(|_| RobEntry::vacant()).collect(),
            head: 0,
            len: 0,
            mask: cap - 1,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn front(&self) -> Option<&RobEntry> {
        (self.len > 0).then(|| &self.slots[self.head])
    }

    /// Opens the tail slot for in-place initialisation. The caller
    /// must overwrite every field; `waiters` is cleared here and its
    /// capacity carries over from the slot's previous occupant.
    fn push_slot(&mut self) -> &mut RobEntry {
        debug_assert!(self.len <= self.mask, "ROB ring overfull");
        let idx = (self.head + self.len) & self.mask;
        self.len += 1;
        let slot = &mut self.slots[idx];
        slot.waiters.clear();
        slot
    }

    /// Retires logical position 0; its slot becomes reusable.
    fn advance_head(&mut self) {
        debug_assert!(self.len > 0, "advancing an empty ROB");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }
}

impl std::ops::Index<usize> for RobRing {
    type Output = RobEntry;
    #[inline]
    fn index(&self, i: usize) -> &RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        &self.slots[(self.head + i) & self.mask]
    }
}

impl std::ops::IndexMut<usize> for RobRing {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut RobEntry {
        debug_assert!(i < self.len, "ROB index {i} out of {}", self.len);
        &mut self.slots[(self.head + i) & self.mask]
    }
}

/// The simulated processor.
///
/// Generic over the dynamic-instruction source and over an observer
/// receiving per-event callbacks; see the crate-level documentation
/// for a complete example. The default [`NullObserver`] costs nothing
/// — its empty hooks monomorphize away.
pub struct Processor<T, O = NullObserver> {
    cfg: SimConfig,
    trace: T,
    policy: Box<dyn ReconfigPolicy>,
    net: Interconnect,
    mem: MemHierarchy,
    bpred: BranchPredictor,
    bankpred: BankPredictor,
    crit: CriticalityPredictor,
    steering: Steering,
    clusters: Vec<Cluster>,
    /// Issue-queue occupancy, `[domain][cluster]`. Dense (rather than
    /// a field of [`Cluster`]) because dispatch builds a steering
    /// snapshot over every active cluster per instruction — one array
    /// walk instead of striding across sixteen `Cluster` structs.
    iq_used: [[usize; MAX_CLUSTERS]; 2],
    /// Free physical registers, `[domain][cluster]`; dense for the
    /// same reason.
    free_regs: [[usize; MAX_CLUSTERS]; 2],
    lsq: Vec<LsqSlice>,
    rob: RobRing,
    rename: [Option<u64>; 64],
    arch_home: [usize; 64],
    arch_avail: [[u64; MAX_CLUSTERS]; 64],
    fetch_queue: VecDeque<Fetched>,
    /// Reused fetch-stage scratch buffer for one decoded run (the
    /// instructions up to and including the next control transfer).
    fetch_run: Vec<DecodedInst>,
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    dispatch_stall_until: u64,
    trace_done: bool,
    /// Reused issue-selection scratch buffer.
    selected: Vec<(u64, FuGroup, usize)>,
    /// Per-cluster event queues in one global `(time, tick)` order.
    events: EventShards,
    /// Bit `c` set ⇔ cluster `c` has queued (dispatched, operands
    /// ready or pending) instructions; the issue stage visits only set
    /// bits. Maintained by [`Processor::cluster_enqueue`] and the
    /// issue loop.
    queued_mask: u32,
    /// Loads whose forwarding store has not produced its data yet, as
    /// (store seq, load seq, LSQ slice) in arrival order. Bounded by
    /// LSQ capacity and near-empty in practice, so a flat vector beats
    /// the former per-load hash map: no hashing on the store
    /// writeback path and no per-store `Vec` allocation.
    loads_waiting_data: Vec<(u64, u64, usize)>,
    /// Scratch for draining `loads_waiting_data` matches without
    /// holding a borrow across `proceed_load`.
    waiting_scratch: Vec<(u64, usize)>,
    now: u64,
    active: usize,
    pending_reconfig: Option<usize>,
    reconfig_request: Option<usize>,
    stats: SimStats,
    observer: O,
}

/// Occupancy of the machine's structures at one instant (see
/// [`Processor::occupancy_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Re-order-buffer entries in flight.
    pub rob: usize,
    /// Fetch-queue entries waiting to dispatch.
    pub fetch_queue: usize,
    /// Clusters currently enabled; the per-cluster vectors below cover
    /// exactly these.
    pub active: usize,
    /// Free physical registers per *active* cluster, `[int, fp]`.
    pub free_regs: Vec<[usize; 2]>,
    /// Issue-queue entries in use per *active* cluster, `[int, fp]`.
    pub iq_used: Vec<[usize; 2]>,
    /// Load/store-queue slots in use per slice. All slices are
    /// reported — a slice beyond `active` should be empty, so a
    /// non-zero count there is itself diagnostic.
    pub lsq_used: Vec<usize>,
}

/// Rounds a requested cluster count to the nearest legal value: in
/// `1..=total`, and — when `pow2` (the decentralized model, whose bank
/// interleaving masks addresses) — a power of two, rounding down.
fn legal_cluster_count(request: usize, total: usize, pow2: bool) -> usize {
    let clamped = request.clamp(1, total);
    if !pow2 || clamped.is_power_of_two() {
        clamped
    } else {
        clamped.next_power_of_two() / 2
    }
}

impl<T: TraceSource> Processor<T> {
    /// Builds a processor over `trace` governed by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn new(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
    ) -> Result<Processor<T>, SimError> {
        Self::with_steering(cfg, trace, policy, SteeringKind::default())
    }

    /// Builds a processor with an explicit steering heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_steering(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
    ) -> Result<Processor<T>, SimError> {
        Processor::with_observer(cfg, trace, policy, steering, NullObserver)
    }
}

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    /// Builds a processor whose pipeline events are reported to
    /// `observer` (see [`SimObserver`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_observer(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
        observer: O,
    ) -> Result<Processor<T, O>, SimError> {
        cfg.validate()?;
        let count = cfg.clusters.count;
        // Architectural registers are homed round-robin across the
        // physical clusters and occupy a register there.
        let mut reserved = [[0usize; 2]; MAX_CLUSTERS];
        let mut arch_home = [0usize; 64];
        for r in 0..64 {
            let home = r % count;
            arch_home[r] = home;
            reserved[home][usize::from(r >= 32)] += 1;
        }
        let clusters: Vec<Cluster> = (0..count).map(|_| Cluster::new(&cfg.clusters)).collect();
        let mut free_regs = [[0usize; MAX_CLUSTERS]; 2];
        for c in 0..count {
            assert!(
                reserved[c][0] < cfg.clusters.int_regs && reserved[c][1] < cfg.clusters.fp_regs,
                "architectural state exceeds the cluster register file"
            );
            free_regs[0][c] = cfg.clusters.int_regs - reserved[c][0];
            free_regs[1][c] = cfg.clusters.fp_regs - reserved[c][1];
        }
        let lsq = match cfg.cache.model {
            CacheModel::Centralized => vec![LsqSlice::new(cfg.cache.lsq_per_cluster * count)],
            CacheModel::Decentralized => {
                (0..count).map(|_| LsqSlice::new(cfg.cache.lsq_per_cluster)).collect()
            }
        };
        let initial = legal_cluster_count(
            policy.initial_clusters(),
            count,
            cfg.cache.model == CacheModel::Decentralized,
        );
        Ok(Processor {
            net: Interconnect::new(&cfg.interconnect, count),
            mem: MemHierarchy::new(&cfg.cache, count),
            bpred: BranchPredictor::new(&cfg.bpred),
            bankpred: BankPredictor::new(&cfg.bankpred),
            crit: CriticalityPredictor::new(cfg.crit.table_size),
            steering: Steering::new(steering),
            clusters,
            iq_used: [[0; MAX_CLUSTERS]; 2],
            free_regs,
            lsq,
            rob: RobRing::new(cfg.frontend.rob_size),
            rename: [None; 64],
            arch_home,
            arch_avail: [[0; MAX_CLUSTERS]; 64],
            fetch_queue: VecDeque::with_capacity(cfg.frontend.fetch_queue),
            fetch_run: Vec::with_capacity(cfg.frontend.fetch_width),
            fetch_stall_until: 0,
            awaiting_redirect: false,
            dispatch_stall_until: 0,
            trace_done: false,
            selected: Vec::new(),
            events: EventShards::new(count),
            queued_mask: 0,
            loads_waiting_data: Vec::new(),
            waiting_scratch: Vec::new(),
            now: 0,
            active: initial,
            pending_reconfig: None,
            reconfig_request: None,
            stats: SimStats::default(),
            observer,
            cfg,
            trace,
            policy,
        })
    }

    /// Accumulated statistics (monotonic; snapshot and use
    /// [`SimStats::delta_since`] to measure an interval).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably (e.g. to drain collected data
    /// between measurement windows).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// The currently active cluster count.
    pub fn active_clusters(&self) -> usize {
        self.active
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// A snapshot of structure occupancies, for debugging and
    /// introspection. The per-cluster vectors cover only the `active`
    /// clusters — disabled clusters hold no instructions, and
    /// reporting their idle resources made `diag` output misleading.
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        OccupancySnapshot {
            rob: self.rob.len(),
            fetch_queue: self.fetch_queue.len(),
            active: self.active,
            free_regs: (0..self.active).map(|c| [self.free_regs[0][c], self.free_regs[1][c]]).collect(),
            iq_used: (0..self.active).map(|c| [self.iq_used[0][c], self.iq_used[1][c]]).collect(),
            lsq_used: self.lsq.iter().map(LsqSlice::occupancy).collect(),
        }
    }

    /// Whether the instruction source is exhausted and the pipeline
    /// has drained.
    pub fn finished(&self) -> bool {
        self.trace_done && self.fetch_queue.is_empty() && self.rob.is_empty()
    }

    /// Runs until `instructions` more have committed, the trace ends,
    /// or an error occurs. Returns the statistics snapshot.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if the pipeline stops making progress (an
    /// internal invariant violation, not a program property).
    pub fn run(&mut self, instructions: u64) -> Result<SimStats, SimError> {
        let target = self.stats.committed + instructions;
        let mut last_progress = (self.stats.committed, self.now);
        while self.stats.committed < target && !self.finished() {
            self.step_cycle();
            if self.stats.committed != last_progress.0 {
                last_progress = (self.stats.committed, self.now);
            } else if self.now - last_progress.1 > 1_000_000 {
                return Err(SimError::Stalled { cycle: self.now });
            }
        }
        Ok(self.stats)
    }

    /// Advances the machine one cycle.
    ///
    /// `WANTS_HOST_PROFILE` is a `const`, so each monomorphization
    /// keeps exactly one of the two loop bodies: the default
    /// [`NullObserver`](crate::NullObserver) build compiles to
    /// [`step_cycle_plain`](Self::step_cycle_plain) — byte-for-byte the
    /// pre-profiler loop — and pays nothing for the instrumentation.
    fn step_cycle(&mut self) {
        if O::WANTS_HOST_PROFILE {
            self.step_cycle_profiled();
        } else {
            self.step_cycle_plain();
        }
        // `WANTS_AUDIT` is likewise a `const`: the default build
        // compiles the snapshot assembly away entirely. The snapshot
        // only *reads* machine state, so audited runs compute the
        // bit-identical schedule.
        if O::WANTS_AUDIT {
            self.deliver_audit();
        }
    }

    /// Assembles the end-of-cycle [`crate::AuditCheck`] snapshot and
    /// hands it to the observer. Called only when `O::WANTS_AUDIT`.
    fn deliver_audit(&mut self) {
        let (events_pushed, events_popped, events_pending) = self.events.conservation();
        let check = crate::audit::AuditCheck {
            cycle: self.now,
            stats: &self.stats,
            rob_len: self.rob.len(),
            rob_capacity: self.cfg.frontend.rob_size,
            fetch_queue_len: self.fetch_queue.len(),
            fetch_queue_capacity: self.cfg.frontend.fetch_queue,
            iq_used: &self.iq_used,
            iq_capacity: [self.cfg.clusters.int_iq, self.cfg.clusters.fp_iq],
            lsq: &self.lsq,
            active_clusters: self.active,
            configured_clusters: self.clusters.len(),
            events_pushed,
            events_popped,
            events_pending,
        };
        self.observer.on_audit(&check);
    }

    fn step_cycle_plain(&mut self) {
        self.now += 1;
        self.drain_events();
        self.commit();
        self.apply_reconfig();
        self.issue();
        self.dispatch();
        self.fetch();
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.active_cluster_cycles += self.active as u64;
        self.stats.cycles_at_config[self.active - 1] += 1;
        self.observer.on_cycle(self.now, self.active, self.rob.len());
    }

    /// The same cycle as [`step_cycle_plain`](Self::step_cycle_plain),
    /// bracketed by monotonic-clock reads so each stage's wall-clock is
    /// attributed to its bucket. The stage sequence and every simulated
    /// effect are identical — the timers and the end-of-cycle health
    /// sample only *read* state — so profiled `SimStats` match the
    /// plain loop bit for bit (pinned by the host-profile tests).
    fn step_cycle_profiled(&mut self) {
        use crate::host::{QueueHealth, HOST_STAGE_COUNT};
        use std::time::Instant;
        self.now += 1;
        let mut marks = [Instant::now(); HOST_STAGE_COUNT + 1];
        self.drain_events();
        marks[1] = Instant::now();
        self.commit();
        self.apply_reconfig();
        marks[2] = Instant::now();
        self.issue();
        marks[3] = Instant::now();
        self.dispatch();
        marks[4] = Instant::now();
        self.fetch();
        marks[5] = Instant::now();
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.active_cluster_cycles += self.active as u64;
        self.stats.cycles_at_config[self.active - 1] += 1;
        self.observer.on_cycle(self.now, self.active, self.rob.len());
        marks[6] = Instant::now();
        let mut nanos = [0u64; HOST_STAGE_COUNT];
        for (i, n) in nanos.iter_mut().enumerate() {
            *n = marks[i + 1].duration_since(marks[i]).as_nanos() as u64;
        }
        self.observer.on_stage_nanos(&nanos);
        let (calendar_events, overflow_events, floor) = self.events.health();
        self.observer.on_queue_health(&QueueHealth {
            cycle: self.now,
            calendar_events,
            overflow_events,
            floor,
            queued_mask: self.queued_mask,
            active_clusters: self.active,
            configured_clusters: self.clusters.len(),
        });
    }

    /// Index of in-flight instruction `seq` in the ROB, or `None` if
    /// it is not there (already committed, or never dispatched).
    ///
    /// Invariant: every `seq` held by the scheduler — event payloads,
    /// rename-map entries, waiter lists, issue selections — names an
    /// in-flight ROB entry, with one deliberate exception: store
    /// broadcasts (`EventKind::StoreResolved`) may land after their
    /// store committed. Callers on that path treat `None` as "already
    /// committed"; everywhere else `None` means the simulator state is
    /// corrupt, which is a `debug_assert` at the call site and a
    /// dropped event — never a panic — in release builds.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let head = self.rob.front()?.d.seq;
        let idx = seq.checked_sub(head)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    /// Queues `seq` for issue in `cluster` and marks the cluster
    /// non-quiescent. Every enqueue must come through here so
    /// `queued_mask` stays in sync with the clusters' queues.
    fn cluster_enqueue(&mut self, cluster: usize, group: FuGroup, ready_at: u64, seq: u64) {
        self.clusters[cluster].enqueue(group, ready_at, seq);
        self.queued_mask |= 1 << cluster;
    }
}

impl<T, O> fmt::Debug for Processor<T, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Processor")
            .field("cycle", &self.now)
            .field("active", &self.active)
            .field("committed", &self.stats.committed)
            .field("rob_occupancy", &self.rob.len())
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}
