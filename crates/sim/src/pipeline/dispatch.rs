//! Dispatch: rename, steering, and structural-hazard checks.

use super::{Processor, ABSENT, STORE_VALUE_SLOT};
use crate::cluster::{Domain, FuGroup};
use crate::config::{CacheModel, MAX_CLUSTERS};
use crate::observe::{SimObserver, TransferKind};
use crate::steer::SteerRequest;
use clustered_emu::TraceSource;
use clustered_isa::{ArchReg, OpClass};

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    pub(super) fn dispatch(&mut self) {
        if self.pending_reconfig.is_some() || self.now < self.dispatch_stall_until {
            return;
        }
        for _ in 0..self.cfg.frontend.dispatch_width {
            if self.rob.len() >= self.cfg.frontend.rob_size {
                self.stats.dispatch_stall_rob += 1;
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                self.stats.dispatch_stall_fetch += 1;
                break;
            };
            if front.fetched_at >= self.now {
                self.stats.dispatch_stall_fetch += 1;
                break;
            }
            if !self.try_dispatch_one() {
                self.stats.dispatch_stall_resources += 1;
                break;
            }
        }
    }

    /// Architectural register `r`'s in-flight producer: its seq and
    /// ROB index, or `None` when the value is architectural.
    ///
    /// Rename-map entries are cleared at commit, so a mapping whose
    /// producer is no longer in flight is corrupt state: asserted in
    /// debug builds; release builds degrade to treating the value as
    /// architectural rather than panicking.
    fn renamed_producer(&self, r: usize) -> Option<(u64, usize)> {
        let pseq = self.rename[r]?;
        let idx = self.rob_index(pseq);
        debug_assert!(idx.is_some(), "rename map names retired producer {pseq}");
        idx.map(|i| (pseq, i))
    }

    /// Attempts to dispatch the head of the fetch queue; returns false
    /// on a structural stall.
    fn try_dispatch_one(&mut self) -> bool {
        let front = self.fetch_queue.front().expect("checked by caller");
        let d = front.d;
        let mispredicted = front.mispredicted;
        // Already decoded at (or before) fetch: no `Inst` in sight.
        let class = d.class;
        let sources = d.srcs;
        let dest = d.dest;
        let domain = Domain::of(class);

        // Producer clusters and criticality estimates for steering.
        let mut producer: [Option<usize>; 2] = [None; 2];
        let mut estimate: [u64; 2] = [0; 2];
        for (i, src) in sources.iter().enumerate() {
            let Some(r) = src else { continue };
            let r = r.unified_index();
            match self.renamed_producer(r) {
                Some((_, pidx)) => {
                    let p = &self.rob[pidx];
                    producer[i] = Some(p.cluster as usize);
                    estimate[i] = if p.done { p.done_at } else { ABSENT };
                }
                None => {
                    let home = self.arch_home[r];
                    producer[i] = Some(home);
                    estimate[i] = self.domains[home].arch_avail[r];
                }
            }
        }
        // Pick the predicted-critical operand: a trained table when
        // enabled (the paper's configuration), otherwise the
        // dispatch-time arrival estimate.
        let critical_slot = if producer[0].is_none() || producer[1].is_none() {
            usize::from(producer[0].is_none())
        } else if self.cfg.crit.enabled {
            self.crit.predict(d.pc)
        } else {
            usize::from(estimate[1] > estimate[0])
        };
        let (critical, other) = (producer[critical_slot], producer[1 - critical_slot]);

        // Decentralized loads/stores prefer the predicted bank's
        // cluster; the predictor's full-width output is masked to the
        // active count (paper §5).
        let is_memref = matches!(class, OpClass::Load | OpClass::Store);
        let decentralized = self.cfg.cache.model == CacheModel::Decentralized;
        // Prediction (lookup only) happens here because steering needs
        // the bank; training and statistics happen only once dispatch
        // actually consumes the instruction, so a structurally stalled
        // memref retried every cycle is not re-trained or double-counted.
        let predicted_bank = if decentralized && is_memref {
            let full_mask = self.cfg.clusters.count - 1;
            (self.bankpred.predict(d.pc) as usize & full_mask) & (self.active - 1)
        } else {
            0
        };
        let bank_cluster = (decentralized && is_memref).then_some(predicted_bank);

        // LSQ capacity: loads need their own slice, stores need every
        // active slice (dummy slots); the centralized pool needs one
        // slot either way.
        match (self.cfg.cache.model, class) {
            (CacheModel::Centralized, OpClass::Load | OpClass::Store)
                if !self.lsq[0].has_space() => {
                    return false;
                }
            (CacheModel::Decentralized, OpClass::Store)
                if !(0..self.active).all(|k| self.lsq[k].has_space()) => {
                    return false;
                }
            _ => {}
        }

        let dest_domain = dest.map(|r| usize::from(!r.is_int()));
        // A decentralized load also needs a slot in the steered
        // cluster's LSQ slice: fold that into the steering mask so a
        // stateful heuristic (Mod_N cursor) never picks a cluster the
        // dispatch then has to reject. (Loads to the zero register have
        // no destination but still occupy a slice slot, hence the
        // `needs_reg` widening.)
        let load_needs_slice = decentralized && class == OpClass::Load;
        let needs_reg = dest.is_some() || load_needs_slice;
        let mut has_free_reg = [false; MAX_CLUSTERS];
        for (c, free) in has_free_reg.iter_mut().enumerate().take(self.active) {
            *free = match dest_domain {
                Some(k) => self.domains[c].free_regs[k] > 0,
                None => true,
            } && (!load_needs_slice || self.lsq[c].has_space());
        }
        // The steering heuristics want a dense occupancy slice; gather
        // it from the domain owners (a few words per instruction).
        let mut occ = [0usize; MAX_CLUSTERS];
        for (c, d) in self.domains.iter().enumerate() {
            occ[c] = d.iq_used[domain.index()];
        }
        let request = SteerRequest {
            active: self.active,
            occupancy: &occ[..self.domains.len()],
            capacity: self.domains[0].sched.iq_cap[domain.index()],
            has_free_reg: &has_free_reg[..self.domains.len()],
            needs_reg,
            critical_producer: critical,
            other_producer: other,
            bank_cluster,
        };
        let Some(cluster) = self.steering.choose(&request) else { return false };

        // All structural checks passed: consume the fetch-queue entry.
        self.fetch_queue.pop_front();
        self.stats.dispatched += 1;
        self.observer.on_dispatch(self.now, d.seq, cluster);
        if decentralized && is_memref {
            // Train the bank predictor in program order and account
            // accuracy, now that this memref definitely dispatches.
            // Memref records without an address are rejected by the
            // trace loader; a decoded one slipping through is corrupt
            // state, degraded to skipping the training.
            if let Some(m) = d.mem {
                let full_mask = self.cfg.clusters.count - 1;
                let actual_full = (m.addr >> 3) as usize & full_mask;
                self.bankpred.update(d.pc, actual_full as u8);
                self.stats.bank_predictions += 1;
                if predicted_bank != actual_full & (self.active - 1) {
                    self.stats.bank_mispredictions += 1;
                }
            } else {
                debug_assert!(false, "memref {} without an address", d.seq);
            }
        }
        self.domains[cluster].iq_used[domain.index()] += 1;
        if let Some(k) = dest_domain {
            self.domains[cluster].free_regs[k] -= 1;
        }
        let alloc_slice = match (self.cfg.cache.model, class) {
            (CacheModel::Centralized, OpClass::Load | OpClass::Store) => {
                self.lsq[0].allocate();
                if class == OpClass::Store {
                    self.lsq[0].add_unresolved_store(d.seq);
                }
                0
            }
            (CacheModel::Decentralized, OpClass::Load) => {
                self.lsq[cluster].allocate();
                cluster
            }
            (CacheModel::Decentralized, OpClass::Store) => {
                for k in 0..self.active {
                    self.lsq[k].allocate();
                    self.lsq[k].add_unresolved_store(d.seq);
                }
                cluster
            }
            _ => 0,
        };

        // Rename: record what this destination frees at commit.
        let frees = dest.map(|r| {
            let ri = r.unified_index();
            let k = u8::from(!r.is_int());
            match self.renamed_producer(ri) {
                Some((_, pidx)) => (self.rob[pidx].cluster, k),
                None => (self.arch_home[ri] as u8, k),
            }
        });

        // Open the tail ROB slot and initialise it in place — the old
        // stack-built entry cost a full-struct move into the deque.
        let seq = d.seq;
        let ready_at = self.now + 1 + self.net.latency(0, cluster);
        let active = self.active;
        let idx = self.rob.len();
        {
            debug_assert!(cluster < MAX_CLUSTERS && active <= MAX_CLUSTERS);
            let e = self.rob.push_slot();
            e.d = d;
            e.class = class;
            e.cluster = cluster as u8;
            e.dest = dest;
            e.frees = frees;
            e.srcs_outstanding = 0;
            e.src_arrival = [0; 2];
            e.src_present = [false; 2];
            e.ready_at = ready_at;
            e.done = false;
            e.done_at = 0;
            e.distant = false;
            e.mispredicted = mispredicted;
            e.copies_mask = 0;
            e.agu_done = ABSENT;
            e.store_value_at = ABSENT;
            e.bank = 0;
            e.bank_cluster = 0;
            e.alloc_slice = alloc_slice as u8;
            e.active_at_dispatch = active as u8;
        }

        // Resolve sources: architectural and completed values get (or
        // schedule) a local copy; in-flight producers get a waiter,
        // registered directly on the producer's slot.
        let mut store_value_waited = false;
        for (i, src) in sources.iter().enumerate() {
            let Some(src) = src else { continue };
            // A store's second source is its data: it gates completion
            // but not address generation.
            let store_value = class == OpClass::Store && i == 1;
            if !store_value {
                self.rob[idx].src_present[i] = true;
            }
            let r = src.unified_index();
            match self.renamed_producer(r) {
                Some((_, pidx)) => {
                    if self.rob[pidx].done {
                        let arrival = self.value_arrival(pidx, cluster);
                        let e = &mut self.rob[idx];
                        if store_value {
                            e.store_value_at = arrival;
                        } else {
                            e.src_arrival[i] = arrival;
                            e.ready_at = e.ready_at.max(arrival);
                        }
                    } else if store_value {
                        store_value_waited = true;
                        self.rob[pidx].waiters.push((seq, cluster as u8, STORE_VALUE_SLOT));
                    } else {
                        self.rob[idx].srcs_outstanding += 1;
                        self.rob[pidx].waiters.push((seq, cluster as u8, i as u8));
                    }
                }
                None => {
                    let arrival = self.arch_value_arrival(r, cluster);
                    let e = &mut self.rob[idx];
                    if store_value {
                        e.store_value_at = arrival;
                    } else {
                        e.src_arrival[i] = arrival;
                        e.ready_at = e.ready_at.max(arrival);
                    }
                }
            }
        }
        if class == OpClass::Store && self.rob[idx].store_value_at == ABSENT && !store_value_waited
        {
            // Stores of the zero register have no data dependence.
            self.rob[idx].store_value_at = 0;
        }
        if let Some(r) = dest.map(ArchReg::unified_index) {
            self.rename[r] = Some(seq);
        }
        if self.rob[idx].srcs_outstanding == 0 {
            let (group, ready_at) = (FuGroup::of(class), self.rob[idx].ready_at);
            self.cluster_enqueue(cluster, group, ready_at, seq);
        }
        true
    }

    fn arch_value_arrival(&mut self, r: usize, to: usize) -> u64 {
        if self.domains[to].arch_avail[r] != ABSENT {
            return self.domains[to].arch_avail[r];
        }
        let home = self.arch_home[r];
        let base = self.domains[home].arch_avail[r];
        let arrival = self.net.transfer(home, to, base.max(self.now));
        let hops = self.net.distance(home, to);
        self.stats.reg_transfers += 1;
        self.stats.reg_transfer_hops += hops;
        self.observer.on_transfer(self.now, TransferKind::Register, home, to, hops);
        self.domains[to].arch_avail[r] = arrival;
        arrival
    }
}
