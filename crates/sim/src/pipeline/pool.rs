//! The scoped spin-barrier pool behind `--intra-jobs`.
//!
//! Intra-run parallelism runs two phases of each cycle across worker
//! threads: the event-drain *gather* (each due shard empties into its
//! own domain's scratch) and the issue-stage *select* (each busy
//! cluster picks its issue set). Both phases touch exactly one
//! [`ClusterDomain`] per cluster and nothing else — that ownership
//! partition is the whole point of the domain refactor — so workers
//! can share the domain slice with no locks: worker `t` visits
//! clusters `t, t + threads, …`, a disjoint partition by construction.
//!
//! The pool is deliberately primitive: one generation counter the
//! main thread bumps to start a phase, one completion counter the
//! workers bump when done, spin-then-yield waiting on both sides.
//! Phases are issued up to twice per simulated cycle (hundreds of
//! nanoseconds apart), so parking a thread through the OS would cost
//! more than the work; busy-wait with [`std::hint::spin_loop`] is the
//! only latency-viable handoff. Workers live in a
//! [`std::thread::scope`] owned by [`Processor::run`], which also
//! holds a [`ShutdownGuard`] so the scope's implicit join cannot
//! deadlock even if the simulation loop panics.
//!
//! Determinism: the pool only changes *which host thread* runs a
//! domain's gather/select, never the simulated order — gathered
//! events are merged by global `(time, tick)` and selections are
//! applied in ascending cluster order afterwards, both on the main
//! thread. `tests/parallel_equivalence.rs` pins bit-identity against
//! the sequential oracle across thread counts.
//!
//! [`Processor::run`]: super::Processor::run

// The only unsafe code in the crate (`lib.rs` is `deny(unsafe_code)`):
// the raw-pointer domain partition below, with the safety argument on
// `work_partition`.
#![allow(unsafe_code)]

use super::domain::ClusterDomain;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Phase tag: per-cluster issue select into `domain.selected`.
const PHASE_SELECT: usize = 0;
/// Phase tag: per-shard due-event gather into `domain.gathered`.
const PHASE_GATHER: usize = 1;

/// Spins before each busy-wait starts yielding the CPU to the OS.
///
/// Small on purpose: on an unloaded multicore host a phase handoff
/// lands within a few dozen spins, so a short window captures the
/// fast path, while on an oversubscribed host (more participants than
/// cores — CI containers are routinely single-core) every spin beyond
/// the window only starves the thread that would make progress.
/// Yield-based handoff there costs a scheduler pass per phase instead
/// of a burned timeslice.
const SPINS_BEFORE_YIELD: u32 = 128;

/// Shared coordination state between the main thread and the workers.
/// All fields are atomics so the whole protocol is lock-free; the
/// parameter fields (`phase` … `len`) are published by the `Release`
/// bump of `generation` and read after the workers' `Acquire` load of
/// it, so `Relaxed` suffices on the fields themselves.
#[derive(Debug, Default)]
pub(super) struct PoolState {
    /// Bumped (`Release`) to start a phase; `u64::MAX` means shut down.
    generation: AtomicU64,
    /// Workers finished with the current generation (main excluded).
    done: AtomicUsize,
    /// Set when a worker's phase body panicked; the main thread
    /// re-raises after the barrier so the panic is not swallowed.
    poisoned: AtomicBool,
    /// Phase tag for the current generation.
    phase: AtomicUsize,
    /// Cluster mask to visit this phase.
    mask: AtomicU32,
    /// Simulated cycle for this phase.
    now: AtomicU64,
    /// Event-queue floor (gather phase only).
    floor: AtomicU64,
    /// The domain slice: base pointer (as usize) and length,
    /// republished every phase because the slice lives in the
    /// `Processor` the main thread owns.
    domains: AtomicUsize,
    len: AtomicUsize,
}

impl PoolState {
    pub(super) fn new() -> PoolState {
        PoolState::default()
    }

    /// Tells every worker to exit its wait loop and return.
    /// Idempotent; safe to call from a `Drop` guard.
    pub(super) fn shutdown(&self) {
        self.generation.store(u64::MAX, Ordering::Release);
    }
}

/// Shuts the pool down on drop, so a panic unwinding out of the
/// simulation loop releases the workers before `thread::scope` joins
/// them — without this, a main-thread panic would deadlock the join.
pub(super) struct ShutdownGuard<'a>(pub(super) &'a PoolState);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// One phase's parameters, as published through [`PoolState`].
#[derive(Clone, Copy)]
struct Phase {
    tag: usize,
    mask: u32,
    now: u64,
    floor: u64,
}

/// Runs worker `t`'s share of the phase: clusters `t, t + threads, …`
/// restricted to the phase's mask.
///
/// # Safety
///
/// `ptr..ptr + len` must be a live, exclusively-borrowed
/// `[ClusterDomain]` for the whole phase, with every participant —
/// the main thread included — working through *this same provenance*
/// (the pointer published in [`PoolState`]) and distinct `t` values
/// over a common `threads`. The strided partition then gives each
/// participant a disjoint set of elements, so the `&mut` references
/// formed here never alias.
unsafe fn work_partition(
    ptr: *mut ClusterDomain,
    len: usize,
    t: usize,
    threads: usize,
    phase: Phase,
) {
    let mut c = t;
    while c < len {
        if phase.mask >> c & 1 == 1 {
            // SAFETY: `c < len` and the strided partition makes `c`
            // unique to this participant (see function-level contract).
            let d = unsafe { &mut *ptr.add(c) };
            match phase.tag {
                PHASE_SELECT => {
                    d.selected.clear();
                    d.sched.select(phase.now, &mut d.selected);
                }
                _ => d.gather_due(phase.now, phase.floor),
            }
        }
        c += threads;
    }
}

/// The worker-thread body: wait for a generation, run the partition,
/// report done, repeat until shutdown.
pub(super) fn worker(state: &PoolState, t: usize, threads: usize) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let generation = loop {
            let g = state.generation.load(Ordering::Acquire);
            if g != seen {
                break g;
            }
            if spins < SPINS_BEFORE_YIELD {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        };
        if generation == u64::MAX {
            return;
        }
        seen = generation;
        let ptr = state.domains.load(Ordering::Relaxed) as *mut ClusterDomain;
        let len = state.len.load(Ordering::Relaxed);
        let phase = Phase {
            tag: state.phase.load(Ordering::Relaxed),
            mask: state.mask.load(Ordering::Relaxed),
            now: state.now.load(Ordering::Relaxed),
            floor: state.floor.load(Ordering::Relaxed),
        };
        // A panicking phase body must still reach the `done` bump or
        // the main thread's barrier would hang; catch, flag, re-raise
        // from the main thread after the barrier.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the main thread published a live `&mut
            // [ClusterDomain]` for this generation and participates
            // with its own `t` over the same `threads`; see
            // `work_partition`'s contract.
            unsafe { work_partition(ptr, len, t, threads, phase) }
        }))
        .is_err();
        if panicked {
            state.poisoned.store(true, Ordering::Release);
        }
        state.done.fetch_add(1, Ordering::Release);
        if panicked {
            // This worker is done for good; the main thread notices
            // `poisoned` at the barrier it just completed and panics.
            return;
        }
    }
}

/// The main thread's handle on a running pool: issues phases and acts
/// as worker 0 in each.
#[derive(Debug)]
pub(super) struct IntraPool<'a> {
    state: &'a PoolState,
    /// Total participants, main thread included; `threads - 1` workers.
    threads: usize,
}

impl<'a> IntraPool<'a> {
    pub(super) fn new(state: &'a PoolState, threads: usize) -> IntraPool<'a> {
        debug_assert!(threads >= 2, "a pool below two participants is pointless");
        IntraPool { state, threads }
    }

    /// Participants in each phase, main thread included.
    pub(super) fn threads(&self) -> usize {
        self.threads
    }

    /// Issue-select phase over the clusters in `mask`.
    pub(super) fn select(&self, domains: &mut [ClusterDomain], mask: u32, now: u64) {
        self.run_phase(domains, PHASE_SELECT, mask, now, 0);
    }

    /// Event-gather phase over the shards in `mask`.
    pub(super) fn gather(&self, domains: &mut [ClusterDomain], mask: u32, now: u64, floor: u64) {
        self.run_phase(domains, PHASE_GATHER, mask, now, floor);
    }

    fn run_phase(&self, domains: &mut [ClusterDomain], tag: usize, mask: u32, now: u64, floor: u64) {
        let state = self.state;
        let ptr = domains.as_mut_ptr();
        let len = domains.len();
        let phase = Phase { tag, mask, now, floor };
        state.phase.store(tag, Ordering::Relaxed);
        state.mask.store(mask, Ordering::Relaxed);
        state.now.store(now, Ordering::Relaxed);
        state.floor.store(floor, Ordering::Relaxed);
        state.domains.store(ptr as usize, Ordering::Relaxed);
        state.len.store(len, Ordering::Relaxed);
        state.done.store(0, Ordering::Relaxed);
        state.generation.fetch_add(1, Ordering::Release);
        // Work the main thread's own partition — through the SAME raw
        // pointer the workers use, not through `domains`, so every
        // `&mut ClusterDomain` in flight shares one provenance while
        // workers hold derived pointers.
        //
        // SAFETY: `domains` is exclusively borrowed for this whole
        // call, participants use distinct `t` over `self.threads`
        // (workers are spawned with `t in 1..threads`), and the slice
        // is not otherwise touched until the barrier below completes.
        unsafe { work_partition(ptr, len, 0, self.threads, phase) };
        let mut spins = 0u32;
        while state.done.load(Ordering::Acquire) != self.threads - 1 {
            if spins < SPINS_BEFORE_YIELD {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if state.poisoned.load(Ordering::Acquire) {
            // A worker's phase body panicked (it still reached the
            // barrier). Release the rest and propagate.
            state.shutdown();
            panic!("intra-run pool worker panicked during a phase");
        }
    }
}
