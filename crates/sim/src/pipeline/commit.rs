//! In-order commit: retirement, policy requests, and reconfiguration.

use super::{legal_cluster_count, Processor, RobEntry};
use crate::config::CacheModel;
use crate::observe::SimObserver;
use crate::reconfig::CommitEvent;
use clustered_emu::{BranchKind, TraceSource};
use clustered_isa::OpClass;

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    pub(super) fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.frontend.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.done_at > self.now {
                break;
            }
            let e = self.rob.pop_front().expect("just peeked");
            n += 1;
            self.retire(e);
        }
        self.take_policy_request();
    }

    fn retire(&mut self, mut e: RobEntry) {
        // Waiters were drained at writeback; recycle whatever capacity
        // the entry still holds.
        let waiters = std::mem::take(&mut e.waiters);
        self.recycle_waiters(waiters);
        // Stores write their bank at commit (tags, port, stats); the
        // data is buffered so commit itself does not wait.
        match e.class {
            OpClass::Store => {
                let mem_access = e.d.mem.expect("store without address");
                let ready = self.mem.access(
                    &mut self.net,
                    e.bank,
                    e.bank_cluster,
                    mem_access.addr,
                    true,
                    self.now,
                    &mut self.stats,
                );
                self.observer.on_cache_access(self.now, e.bank, true, ready);
                self.lsq[e.alloc_slice].release();
                let forward_slice = self.forward_slice(e.bank);
                self.lsq[forward_slice].remove_store_data(mem_access.addr >> 3, e.d.seq);
                self.stats.stores += 1;
                self.stats.memrefs += 1;
            }
            OpClass::Load => {
                self.lsq[e.alloc_slice].release();
                self.stats.loads += 1;
                self.stats.memrefs += 1;
            }
            _ => {}
        }
        if let Some((cluster, domain)) = e.frees {
            self.clusters[cluster].free_regs[domain] += 1;
        }
        if let Some(dest) = e.dest {
            let r = dest.unified_index();
            if self.rename[r] == Some(e.d.seq) {
                self.rename[r] = None;
                self.arch_home[r] = e.cluster;
                self.arch_avail[r] = e.copies;
            }
        }
        self.stats.committed += 1;
        if e.distant {
            self.stats.distant_issues += 1;
        }
        let mut is_cond = false;
        let mut is_call = false;
        let mut is_return = false;
        if let Some(b) = e.d.branch {
            self.stats.branches += 1;
            is_cond = b.kind == BranchKind::Conditional;
            is_call = matches!(b.kind, BranchKind::Call | BranchKind::IndirectCall);
            is_return = b.kind == BranchKind::Return;
            if is_cond {
                self.stats.cond_branches += 1;
            }
            if e.mispredicted {
                self.stats.mispredicts += 1;
            }
        }
        let event = CommitEvent {
            seq: e.d.seq,
            pc: e.d.pc,
            cycle: self.now,
            is_branch: e.d.branch.is_some(),
            is_cond_branch: is_cond,
            is_call,
            is_return,
            is_memref: e.d.mem.is_some(),
            distant: e.distant,
            mispredicted: e.mispredicted,
        };
        self.observer.on_commit(&event);
        if let Some(request) = self.policy.on_commit(&event) {
            self.reconfig_request = Some(request);
        }
        // Decision telemetry is drained only for observers that opt
        // in; the branch is a compile-time constant, so NullObserver
        // runs carry no polling at all.
        if O::WANTS_DECISIONS {
            if let Some(decision) = self.policy.take_decision() {
                self.observer.on_decision(&decision);
            }
        }
    }

    fn take_policy_request(&mut self) {
        let Some(request) = self.reconfig_request.take() else { return };
        let request = legal_cluster_count(
            request,
            self.cfg.clusters.count,
            self.cfg.cache.model == CacheModel::Decentralized,
        );
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                if request != self.active {
                    self.observer.on_reconfig(self.now, self.active, request);
                    self.active = request;
                    self.stats.reconfigurations += 1;
                }
            }
            CacheModel::Decentralized => {
                // A request back to the current configuration cancels a
                // not-yet-applied switch instead of scheduling a
                // drain + flush to the configuration already in use.
                self.pending_reconfig = (request != self.active).then_some(request);
            }
        }
    }

    pub(super) fn apply_reconfig(&mut self) {
        let Some(target) = self.pending_reconfig else { return };
        // The bank interleaving changes, so the pipeline drains and the
        // L1 is flushed to L2 while the processor stalls (paper §5).
        if !self.rob.is_empty() {
            return;
        }
        let (writebacks, stall) = self.mem.flush_l1();
        self.stats.flush_writebacks += writebacks;
        self.stats.flush_stall_cycles += stall;
        self.dispatch_stall_until = self.now + stall;
        self.observer.on_flush_stall(self.now, stall, writebacks);
        self.observer.on_reconfig(self.now, self.active, target);
        self.active = target;
        self.stats.reconfigurations += 1;
        self.pending_reconfig = None;
    }
}
