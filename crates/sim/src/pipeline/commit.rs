//! In-order commit: retirement, policy requests, and reconfiguration.

use super::{legal_cluster_count, Processor, ABSENT};
use crate::config::CacheModel;
use crate::observe::SimObserver;
use crate::reconfig::CommitEvent;
use clustered_emu::{BranchKind, TraceSource};
use clustered_isa::OpClass;

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    pub(super) fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.frontend.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.done_at > self.now {
                break;
            }
            n += 1;
            self.retire_head();
        }
        self.take_policy_request();
    }

    /// Retires the oldest ROB entry. The scalars retirement needs are
    /// copied out of the head slot and the head advances — the entry
    /// itself (and its waiter vector's capacity) stays in the slot for
    /// its next occupant.
    fn retire_head(&mut self) {
        let e = &self.rob[0];
        debug_assert!(e.waiters.is_empty(), "retiring a producer with undrained waiters");
        let d = e.d;
        let class = e.class;
        let cluster = e.cluster as usize;
        let dest = e.dest;
        let frees = e.frees;
        let distant = e.distant;
        let mispredicted = e.mispredicted;
        let bank = e.bank as usize;
        let bank_cluster = e.bank_cluster as usize;
        let alloc_slice = e.alloc_slice as usize;
        let copies_mask = e.copies_mask;
        // The entry's value-copy rows live under its *physical* slot in
        // the domains; resolve it before the head moves.
        let slot = self.rob.slot_of(0);
        self.rob.advance_head();
        // Stores write their bank at commit (tags, port, stats); the
        // data is buffered so commit itself does not wait.
        match class {
            OpClass::Store => {
                // The loader rejects memref records without an address,
                // so a bare store here is corrupt simulator state:
                // asserted in debug builds, degraded to skipping the
                // cache write in release builds.
                if let Some(mem_access) = d.mem {
                    let ready = self.mem.access(
                        &mut self.net,
                        bank,
                        bank_cluster,
                        mem_access.addr,
                        true,
                        self.now,
                        &mut self.stats,
                    );
                    self.observer.on_cache_access(self.now, bank, true, ready);
                    let forward_slice = self.forward_slice(bank);
                    self.lsq[forward_slice].remove_store_data(mem_access.addr >> 3, d.seq);
                } else {
                    debug_assert!(false, "store {} without an address at commit", d.seq);
                }
                self.lsq[alloc_slice].release();
                self.stats.stores += 1;
                self.stats.memrefs += 1;
            }
            OpClass::Load => {
                self.lsq[alloc_slice].release();
                self.stats.loads += 1;
                self.stats.memrefs += 1;
            }
            _ => {}
        }
        if let Some((cluster, domain)) = frees {
            self.domains[cluster as usize].free_regs[domain as usize] += 1;
        }
        if let Some(dest) = dest {
            let r = dest.unified_index();
            if self.rename[r] == Some(d.seq) {
                self.rename[r] = None;
                self.arch_home[r] = cluster;
                // Scatter the retiring value's per-cluster arrival
                // cycles into the domains' architectural tables.
                // Unwitnessed slots are stale values from the ROB
                // slot's previous occupant; materialize them as absent.
                for (c, dom) in self.domains.iter_mut().enumerate() {
                    dom.arch_avail[r] = if copies_mask >> c & 1 == 1 {
                        dom.value_copies[slot]
                    } else {
                        ABSENT
                    };
                }
            }
        }
        self.stats.committed += 1;
        if distant {
            self.stats.distant_issues += 1;
        }
        let mut is_cond = false;
        let mut is_call = false;
        let mut is_return = false;
        if let Some(b) = d.branch {
            self.stats.branches += 1;
            is_cond = b.kind == BranchKind::Conditional;
            is_call = matches!(b.kind, BranchKind::Call | BranchKind::IndirectCall);
            is_return = b.kind == BranchKind::Return;
            if is_cond {
                self.stats.cond_branches += 1;
            }
            if mispredicted {
                self.stats.mispredicts += 1;
            }
        }
        let event = CommitEvent {
            seq: d.seq,
            pc: d.pc,
            cycle: self.now,
            is_branch: d.branch.is_some(),
            is_cond_branch: is_cond,
            is_call,
            is_return,
            is_memref: d.mem.is_some(),
            distant,
            mispredicted,
        };
        self.observer.on_commit(&event);
        if let Some(request) = self.policy.on_commit(&event) {
            self.reconfig_request = Some(request);
        }
        // Decision telemetry is drained only for observers that opt
        // in; the branch is a compile-time constant, so NullObserver
        // runs carry no polling at all.
        if O::WANTS_DECISIONS {
            if let Some(decision) = self.policy.take_decision() {
                self.observer.on_decision(&decision);
            }
        }
    }

    fn take_policy_request(&mut self) {
        let Some(request) = self.reconfig_request.take() else { return };
        let request = legal_cluster_count(
            request,
            self.cfg.clusters.count,
            self.cfg.cache.model == CacheModel::Decentralized,
        );
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                if request != self.active {
                    self.observer.on_reconfig(self.now, self.active, request);
                    self.active = request;
                    self.stats.reconfigurations += 1;
                }
            }
            CacheModel::Decentralized => {
                // A request back to the current configuration cancels a
                // not-yet-applied switch instead of scheduling a
                // drain + flush to the configuration already in use.
                self.pending_reconfig = (request != self.active).then_some(request);
            }
        }
    }

    pub(super) fn apply_reconfig(&mut self) {
        let Some(target) = self.pending_reconfig else { return };
        // The bank interleaving changes, so the pipeline drains and the
        // L1 is flushed to L2 while the processor stalls (paper §5).
        if !self.rob.is_empty() {
            return;
        }
        let (writebacks, stall) = self.mem.flush_l1();
        self.stats.flush_writebacks += writebacks;
        self.stats.flush_stall_cycles += stall;
        self.dispatch_stall_until = self.now + stall;
        self.observer.on_flush_stall(self.now, stall, writebacks);
        self.observer.on_reconfig(self.now, self.active, target);
        self.active = target;
        self.stats.reconfigurations += 1;
        self.pending_reconfig = None;
    }
}
