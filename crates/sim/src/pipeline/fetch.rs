//! Fetch: branch prediction and the fetch queue.

use super::{Fetched, Processor};
use crate::observe::SimObserver;
use clustered_emu::DynInst;

impl<T: Iterator<Item = DynInst>, O: SimObserver> Processor<T, O> {
    pub(super) fn fetch(&mut self) {
        if self.trace_done || self.awaiting_redirect || self.now < self.fetch_stall_until {
            return;
        }
        let mut fetched = 0;
        let mut blocks = 0;
        while fetched < self.cfg.frontend.fetch_width
            && self.fetch_queue.len() < self.cfg.frontend.fetch_queue
        {
            let Some(d) = self.trace.next() else {
                self.trace_done = true;
                break;
            };
            let mut mispredicted = false;
            let mut block_ended = false;
            if let Some(outcome) = d.branch {
                let prediction = self.bpred.predict_and_update(d.pc, &outcome);
                mispredicted = !prediction.correct;
                block_ended = true;
            }
            self.fetch_queue.push_back(Fetched { d, fetched_at: self.now, mispredicted });
            fetched += 1;
            if mispredicted {
                // Wrong path: fetch stalls until the branch resolves.
                self.awaiting_redirect = true;
                break;
            }
            if block_ended {
                blocks += 1;
                if blocks >= self.cfg.frontend.max_basic_blocks {
                    break;
                }
            }
        }
    }
}
