//! Fetch: branch prediction and the fetch queue, consumed in
//! block-sized runs.
//!
//! The trace source hands fetch whole *runs* — pre-decoded
//! instructions up to and including the next control transfer (see
//! [`TraceSource::next_run`]) — so the body of a basic block is pushed
//! with no per-instruction branch matching and the branch predictor is
//! consulted exactly once, at the run tail. A run is capped by the
//! remaining fetch width and fetch-queue space, so the per-cycle fetch
//! limits (and therefore the computed schedule) are identical to the
//! former one-instruction-at-a-time loop; the shard-oracle suite pins
//! this bit-for-bit.

use super::{Fetched, Processor};
use crate::observe::SimObserver;
use clustered_emu::TraceSource;

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    pub(super) fn fetch(&mut self) {
        if self.trace_done || self.awaiting_redirect || self.now < self.fetch_stall_until {
            return;
        }
        let mut fetched = 0;
        let mut blocks = 0;
        let mut run = std::mem::take(&mut self.fetch_run);
        loop {
            let budget = (self.cfg.frontend.fetch_width - fetched)
                .min(self.cfg.frontend.fetch_queue - self.fetch_queue.len());
            if budget == 0 {
                break;
            }
            debug_assert!(run.is_empty());
            if self.trace.next_run(budget, &mut run) == 0 {
                self.trace_done = true;
                break;
            }
            fetched += run.len();
            // Only the run tail may be a control transfer (the
            // `TraceSource` contract), so the body needs no branch
            // checks and the predictor runs once per block.
            let tail = run.pop().expect("next_run returned a non-zero count");
            for d in run.drain(..) {
                debug_assert!(d.branch.is_none(), "control transfer inside a run body");
                self.fetch_queue.push_back(Fetched { d, fetched_at: self.now, mispredicted: false });
            }
            let Some(outcome) = tail.branch else {
                // Run ended at the budget or the trace tail, not a branch.
                self.fetch_queue.push_back(Fetched {
                    d: tail,
                    fetched_at: self.now,
                    mispredicted: false,
                });
                continue;
            };
            let prediction = self.bpred.predict_and_update(tail.pc, &outcome);
            let mispredicted = !prediction.correct;
            self.fetch_queue.push_back(Fetched { d: tail, fetched_at: self.now, mispredicted });
            if mispredicted {
                // Wrong path: fetch stalls until the branch resolves.
                self.awaiting_redirect = true;
                break;
            }
            blocks += 1;
            if blocks >= self.cfg.frontend.max_basic_blocks {
                break;
            }
        }
        run.clear();
        self.fetch_run = run;
        self.stats.fetched += fetched as u64;
    }
}
