//! Per-cluster state domains: the explicit ownership structure of the
//! paper's partitioned machine.
//!
//! A [`ClusterDomain`] owns everything one physical cluster can touch
//! without talking to its neighbours: its calendar shard of the event
//! queue, its flat scheduler ring, its issue-queue and free-register
//! occupancy, its per-architectural-register value-availability table,
//! and its slice of the in-flight value-copy timestamps. Cross-cluster
//! effects — register copies, interconnect hops, LSQ/cache traffic,
//! commit-time scatter — never write another domain's fields directly;
//! they flow through the typed boundary messages of the backend
//! ([`EventKind`](super::events::EventKind) events ordered by the
//! global `(time, tick)` coordinator, interconnect transfer
//! reservations, and the commit stage's architectural scatter), which
//! is what makes phase-parallel execution over the domains sound (see
//! DESIGN.md, "Cluster domains and intra-run parallelism").

use super::events::{EventKind, Shard};
use crate::cluster::{Cluster, FuGroup};
use crate::config::ClusterParams;

/// One cluster's exclusively-owned simulation state.
///
/// The struct exists to make the partition *checkable*: a scoped-pool
/// worker is handed `&mut ClusterDomain` for its clusters and nothing
/// else, so the compiler (and the raw-pointer partition in
/// `pipeline::pool`) can rely on phase work touching only this state.
#[derive(Debug)]
pub(super) struct ClusterDomain {
    /// The cluster's issue scheduler (ready/pending rings, FU busy).
    pub(super) sched: Cluster,
    /// The cluster's calendar shard of the global event queue.
    pub(super) shard: Shard,
    /// Issue-queue occupancy, `[int, fp]`.
    pub(super) iq_used: [usize; 2],
    /// Free physical registers, `[int, fp]`.
    pub(super) free_regs: [usize; 2],
    /// Cycle each architectural register's value is (or becomes)
    /// available *in this cluster*; `ABSENT` until a copy is routed
    /// here. Written by dispatch's transfer bookkeeping and commit's
    /// scatter — both boundary crossings, both on the coordinator
    /// thread.
    pub(super) arch_avail: [u64; 64],
    /// Arrival cycle of each in-flight instruction's result *in this
    /// cluster*, indexed by physical ROB slot. Slot `s` is meaningful
    /// only while bit `self_index` of that entry's `copies_mask` is
    /// set — the mask (in the ROB entry) is what dispatch resets, so
    /// the 16-cluster copy table costs the scalar stream nothing.
    pub(super) value_copies: Box<[u64]>,
    /// Issue-stage selection scratch: what `sched.select` picked this
    /// cycle, applied to shared state in a separate (sequential) phase.
    pub(super) selected: Vec<(u64, FuGroup, usize)>,
    /// Drain-stage gather scratch: this shard's due events for the
    /// current round as `(time, tick, kind)`, merged and executed by
    /// the coordinator in global `(time, tick)` order.
    pub(super) gathered: Vec<(u64, u64, EventKind)>,
}

impl ClusterDomain {
    /// Builds one cluster's domain; `rob_slots` is the physical ROB
    /// ring capacity (a power of two) sizing the value-copy table.
    pub(super) fn new(params: &ClusterParams, rob_slots: usize) -> ClusterDomain {
        ClusterDomain {
            sched: Cluster::new(params),
            shard: Shard::new(),
            iq_used: [0; 2],
            free_regs: [0; 2],
            arch_avail: [0; 64],
            value_copies: vec![0; rob_slots].into_boxed_slice(),
            selected: Vec::new(),
            gathered: Vec::new(),
        }
    }

    /// Moves every due event (`time <= now`) out of this domain's
    /// shard into `gathered`, whole buckets at a time.
    ///
    /// Callable from a pool worker: it touches only this domain. Due
    /// times span at most the `[floor, now]` window (in practice the
    /// current and previous cycle), and within the calendar window
    /// each undelivered time owns its bucket exclusively, so taking
    /// whole head buckets in time order yields exactly the events
    /// `pop_due` would have delivered — each bucket already in tick
    /// order, the cross-shard `(time, tick)` merge restoring the
    /// global order.
    pub(super) fn gather_due(&mut self, now: u64, floor: u64) {
        while self.shard.len() > 0 {
            let (time, _, idx) = self.shard.head(floor);
            if time > now {
                break;
            }
            self.shard.take_bucket(idx, time, &mut self.gathered);
        }
    }
}
