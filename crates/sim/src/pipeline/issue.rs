//! Per-cluster select/issue, skipping quiescent clusters.
//!
//! The stage walks `queued_mask` — the set of clusters with dispatched
//! instructions awaiting issue — in ascending cluster order, which is
//! exactly the order the pre-sharding loop visited all clusters in. A
//! skipped cluster would have selected nothing and scheduled nothing,
//! so skipping it changes no machine state and consumes no event
//! ticks: the computed schedule is bit-identical, the cost is
//! proportional to busy clusters only.

use super::events::EventKind;
use crate::cluster::{latency_of, Domain};
use crate::observe::SimObserver;
use crate::reconfig::DISTANT_DEPTH;
use clustered_emu::TraceSource;
use clustered_isa::OpClass;

use super::Processor;

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    pub(super) fn issue(&mut self) {
        let head_seq = self.rob.front().map(|e| e.d.seq);
        let mut selected = std::mem::take(&mut self.selected);
        let busy = self.queued_mask.count_ones() as usize;
        self.stats.quiescent_cluster_cycles += (self.clusters.len() - busy) as u64;
        let mut m = self.queued_mask;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            self.stats.cluster_busy_cycles[c] += 1;
            selected.clear();
            self.clusters[c].select(self.now, &mut selected);
            if self.clusters[c].queued() == 0 {
                self.queued_mask &= !(1 << c);
            }
            for &(seq, group, unit) in &selected {
                let Some(idx) = self.rob_index(seq) else {
                    debug_assert!(false, "issued seq {seq} not in the ROB");
                    continue;
                };
                let class = self.rob[idx].class;
                let (lat, pipelined) = latency_of(&self.cfg.exec, class);
                let busy_until = if pipelined { self.now + 1 } else { self.now + lat };
                self.clusters[c].occupy(group, unit, busy_until);
                self.iq_used[Domain::of(class).index()][c] -= 1;
                self.observer.on_issue(self.now, seq, c);
                self.rob[idx].distant =
                    head_seq.is_some_and(|h| seq - h >= DISTANT_DEPTH);
                // Train the criticality predictor with the operand that
                // arrived last.
                if self.rob[idx].src_present == [true, true] {
                    let [a0, a1] = self.rob[idx].src_arrival;
                    self.crit.update(self.rob[idx].d.pc, usize::from(a1 >= a0));
                }
                match class {
                    OpClass::Load => self
                        .schedule(c, self.now + self.cfg.exec.int_alu, EventKind::LoadAddr { seq }),
                    OpClass::Store => self
                        .schedule(c, self.now + self.cfg.exec.int_alu, EventKind::StoreAddr { seq }),
                    _ => self.schedule(c, self.now + lat, EventKind::WriteBack { seq }),
                }
            }
        }
        self.selected = selected;
    }
}
