//! Per-cluster select/issue, skipping quiescent clusters.
//!
//! The stage walks `queued_mask` — the set of clusters with dispatched
//! instructions awaiting issue — in ascending cluster order, which is
//! exactly the order the pre-sharding loop visited all clusters in. A
//! skipped cluster would have selected nothing and scheduled nothing,
//! so skipping it changes no machine state and consumes no event
//! ticks: the computed schedule is bit-identical, the cost is
//! proportional to busy clusters only.
//!
//! The stage factors into a *select* half (the cluster's scheduler
//! picks this cycle's issue set into its own domain's scratch) and an
//! *apply* half (ROB updates, stats, event scheduling — shared
//! state). Select reads and writes only the owning [`ClusterDomain`],
//! and apply on cluster `c` never touches another cluster's scheduler
//! — an issued instruction wakes consumers via *events*, never by a
//! same-cycle direct enqueue — so running every select before every
//! apply ([`Processor::issue_split`], the `--intra-jobs` path, with
//! the selects optionally fanned over the pool) computes exactly the
//! schedule of the interleaved sequential loop ([`Processor::issue`]).
//!
//! [`ClusterDomain`]: super::domain::ClusterDomain

use super::events::EventKind;
use super::pool::IntraPool;
use super::FANOUT_MIN;
use crate::cluster::{latency_of, Domain};
use crate::observe::SimObserver;
use crate::reconfig::DISTANT_DEPTH;
use clustered_emu::TraceSource;
use clustered_isa::OpClass;

use super::Processor;

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    /// The sequential oracle: per busy cluster, select then apply,
    /// interleaved in ascending cluster order.
    pub(super) fn issue(&mut self) {
        let busy = self.queued_mask.count_ones() as usize;
        self.stats.quiescent_cluster_cycles += (self.domains.len() - busy) as u64;
        let mut m = self.queued_mask;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            self.select_cluster(c);
            self.apply_cluster(c);
        }
    }

    /// The phase-split form used with `--intra-jobs`: every busy
    /// cluster selects first (fanned over `pool` when wide enough),
    /// then applies in ascending order — the same schedule as
    /// [`issue`](Self::issue), per the module-level argument.
    pub(super) fn issue_split(&mut self, pool: Option<&IntraPool>) {
        let mask = self.queued_mask;
        let busy = mask.count_ones() as usize;
        self.stats.quiescent_cluster_cycles += (self.domains.len() - busy) as u64;
        match pool {
            Some(pool) if busy >= FANOUT_MIN => pool.select(&mut self.domains, mask, self.now),
            _ => {
                let mut m = mask;
                while m != 0 {
                    let c = m.trailing_zeros() as usize;
                    m &= m - 1;
                    self.select_cluster(c);
                }
            }
        }
        let mut m = mask;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            self.apply_cluster(c);
        }
    }

    /// The select half: the cluster's scheduler fills its domain's
    /// `selected` scratch. Touches only that domain (pool-safe).
    fn select_cluster(&mut self, c: usize) {
        let d = &mut self.domains[c];
        d.selected.clear();
        d.sched.select(self.now, &mut d.selected);
    }

    /// The apply half: commits cluster `c`'s selections to shared
    /// state — FU occupancy, ROB flags, criticality training, stats,
    /// and the writeback/AGU events. Main-thread only.
    fn apply_cluster(&mut self, c: usize) {
        let head_seq = self.rob.front().map(|e| e.d.seq);
        self.stats.cluster_busy_cycles[c] += 1;
        if self.domains[c].sched.queued() == 0 {
            self.queued_mask &= !(1 << c);
        }
        let selected = std::mem::take(&mut self.domains[c].selected);
        for &(seq, group, unit) in &selected {
            let Some(idx) = self.rob_index(seq) else {
                debug_assert!(false, "issued seq {seq} not in the ROB");
                continue;
            };
            let class = self.rob[idx].class;
            let (lat, pipelined) = latency_of(&self.cfg.exec, class);
            let busy_until = if pipelined { self.now + 1 } else { self.now + lat };
            self.domains[c].sched.occupy(group, unit, busy_until);
            self.domains[c].iq_used[Domain::of(class).index()] -= 1;
            self.observer.on_issue(self.now, seq, c);
            self.rob[idx].distant = head_seq.is_some_and(|h| seq - h >= DISTANT_DEPTH);
            // Train the criticality predictor with the operand that
            // arrived last.
            if self.rob[idx].src_present == [true, true] {
                let [a0, a1] = self.rob[idx].src_arrival;
                self.crit.update(self.rob[idx].d.pc, usize::from(a1 >= a0));
            }
            match class {
                OpClass::Load => self
                    .schedule(c, self.now + self.cfg.exec.int_alu, EventKind::LoadAddr { seq }),
                OpClass::Store => self
                    .schedule(c, self.now + self.cfg.exec.int_alu, EventKind::StoreAddr { seq }),
                _ => self.schedule(c, self.now + lat, EventKind::WriteBack { seq }),
            }
        }
        self.domains[c].selected = selected;
    }
}
