//! Sharded event queues and the event handlers of the backend.
//!
//! Events — writebacks, AGU completions, LSQ arrivals, and store
//! broadcasts — are queued per destination cluster in [`EventShards`]
//! but drained in one global `(time, tick)` order, so the schedule is
//! exactly the one a single machine-wide queue would compute while
//! quiescent clusters cost nothing (see DESIGN.md, "Sharded event
//! model").

use super::{Processor, ABSENT, STORE_VALUE_SLOT};
use crate::cluster::FuGroup;
use crate::config::CacheModel;
use crate::observe::{SimObserver, TransferKind};
use clustered_emu::TraceSource;
use clustered_isa::OpClass;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// The shard frontier is a u32 bitmask, one bit per physical cluster.
const _: () = assert!(crate::config::MAX_CLUSTERS <= 32, "frontier mask is a u32");

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum EventKind {
    /// Result available: wake consumers, redirect fetch, etc.
    WriteBack { seq: u64 },
    /// A load's effective address left its AGU.
    LoadAddr { seq: u64 },
    /// A store's effective address left its AGU (its data may still be
    /// outstanding).
    StoreAddr { seq: u64 },
    /// A load arrived at LSQ slice `slice`.
    LoadAtLsq { seq: u64, slice: usize },
    /// A store's address (and data) became visible at LSQ slice
    /// `slice`. Carries everything needed because the store may have
    /// committed before the broadcast lands.
    StoreResolved {
        seq: u64,
        slice: usize,
        word: u64,
        own: bool,
        forward_here: bool,
    },
}

/// Calendar window per shard, in cycles; a power of two. Nothing in
/// the machine schedules farther ahead than a memory round trip (~200
/// cycles at the default latencies), but events beyond the window are
/// still correct: they wait in a shared overflow heap until the window
/// reaches them. The window is sized just past that lookahead on
/// purpose — 16 shards of bucket headers are walked by every push and
/// pop, so calendar memory is hot-loop working set, not slack space.
const CAL_WINDOW: usize = 512;
const CAL_MASK: usize = CAL_WINDOW - 1;
const CAL_WORDS: usize = CAL_WINDOW / 64;

// The per-shard occupancy summary is a single u64, one bit per word.
const _: () = assert!(CAL_WORDS <= 64, "calendar summary bitmap is a u64");

/// One time-indexed bucket of a shard's calendar: events of a single
/// cycle, appended (and therefore delivered) in tick order.
#[derive(Debug, Default, Clone)]
struct Bucket {
    /// Next entry to deliver; earlier entries are already popped.
    next: usize,
    /// `(time, tick, kind)` in push order.
    items: Vec<(u64, u64, EventKind)>,
}

/// One cluster's event calendar: a ring of [`CAL_WINDOW`] buckets
/// indexed by `time % CAL_WINDOW`, with a two-level occupancy bitmap
/// so the earliest pending bucket is found in a handful of bit
/// operations. Push and pop are plain `Vec` appends/reads — no
/// heap sift — which is what makes the event machinery cheap.
#[derive(Debug)]
struct Shard {
    buckets: Vec<Bucket>,
    /// Bit `i % 64` of `occ[i / 64]` ⇔ `buckets[i]` has undelivered
    /// entries.
    occ: [u64; CAL_WORDS],
    /// Bit `w` ⇔ `occ[w] != 0`.
    summary: u64,
    len: usize,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            buckets: vec![Bucket::default(); CAL_WINDOW],
            occ: [0; CAL_WORDS],
            summary: 0,
            len: 0,
        }
    }

    fn insert(&mut self, time: u64, tick: u64, kind: EventKind) {
        let idx = time as usize & CAL_MASK;
        let b = &mut self.buckets[idx];
        if b.items.is_empty() {
            self.occ[idx >> 6] |= 1 << (idx & 63);
            self.summary |= 1 << (idx >> 6);
        }
        b.items.push((time, tick, kind));
        self.len += 1;
    }

    /// First occupied bucket at or (circularly) after ring position
    /// `from`. The shard must be non-empty.
    fn find_first(&self, from: usize) -> usize {
        let w = from >> 6;
        let bits = self.occ[w] & (!0u64 << (from & 63));
        if bits != 0 {
            return (w << 6) | bits.trailing_zeros() as usize;
        }
        let after = if w + 1 == CAL_WORDS { 0 } else { self.summary & (!0u64 << (w + 1)) };
        debug_assert!(self.summary != 0, "searching an empty shard");
        let sw = if after != 0 {
            after.trailing_zeros() as usize
        } else {
            // Wrap: the earliest bucket is circularly before `from`.
            self.summary.trailing_zeros() as usize
        };
        let bits = if sw == w { self.occ[w] & !(!0u64 << (from & 63)) } else { self.occ[sw] };
        (sw << 6) | bits.trailing_zeros() as usize
    }

    /// The earliest undelivered event, as `(time, tick, bucket)`.
    /// `floor` must lower-bound every undelivered time, which makes
    /// ring order from `floor` equal to time order.
    fn head(&self, floor: u64) -> (u64, u64, usize) {
        let idx = self.find_first(floor as usize & CAL_MASK);
        let b = &self.buckets[idx];
        let (t, k, _) = b.items[b.next];
        (t, k, idx)
    }

    /// Pops the head of bucket `idx` — the shard's earliest event,
    /// whose time the caller already knows (`time`, its cached head) —
    /// and returns the kind plus the shard's new head `(time, tick)`
    /// when it lives in the *same* bucket. Within the window exactly
    /// one time maps to a bucket, so a non-exhausted bucket's next
    /// entry is the shard head without touching the occupancy bitmaps;
    /// `None` means the bucket emptied and the caller must rescan.
    fn pop_at(&mut self, idx: usize, time: u64) -> (EventKind, Option<(u64, u64)>) {
        let b = &mut self.buckets[idx];
        debug_assert_eq!(b.items[b.next].0, time, "cached head time desynced from bucket");
        let (_, _, kind) = b.items[b.next];
        b.next += 1;
        self.len -= 1;
        if b.next == b.items.len() {
            b.items.clear();
            b.next = 0;
            self.occ[idx >> 6] &= !(1 << (idx & 63));
            if self.occ[idx >> 6] == 0 {
                self.summary &= !(1 << (idx >> 6));
            }
            (kind, None)
        } else {
            (kind, Some((time, b.items[b.next].1)))
        }
    }
}

/// A winner tree over the shard head keys: `nodes[1]` holds the
/// minimum `(time, tick, shard)` of all leaves, and changing one
/// leaf's key replays only its root path — `log2(shards)` comparisons,
/// where the flat scan it replaced compared every non-empty shard on
/// every pop. Ticks are globally unique, so the minimum (and therefore
/// the drain order) is unambiguous.
#[derive(Debug)]
struct HeadTree {
    /// Implicit binary tree: internal nodes in `[1, size)`, leaf for
    /// shard `c` at `size + c`. Padding leaves stay `(MAX, MAX, _)`.
    nodes: Vec<(u64, u64, u32)>,
    size: usize,
}

impl HeadTree {
    fn new(shards: usize) -> HeadTree {
        let size = shards.next_power_of_two().max(2);
        let mut nodes = vec![(u64::MAX, u64::MAX, 0); 2 * size];
        for c in 0..shards {
            nodes[size + c].2 = c as u32;
        }
        HeadTree { nodes, size }
    }

    /// Sets shard `shard`'s head key and replays its path to the root.
    #[inline]
    fn update(&mut self, shard: usize, key: (u64, u64)) {
        let mut n = self.size + shard;
        self.nodes[n] = (key.0, key.1, shard as u32);
        while n > 1 {
            n >>= 1;
            let l = self.nodes[2 * n];
            let r = self.nodes[2 * n + 1];
            self.nodes[n] = if (l.0, l.1) <= (r.0, r.1) { l } else { r };
        }
    }

    /// The minimum head key and its shard.
    #[inline]
    fn min(&self) -> (u64, u64, u32) {
        self.nodes[1]
    }
}

/// Per-cluster event queues behind a single global ordering.
///
/// Each shard is a calendar queue ([`Shard`]); the `tick` counter is
/// *global* and strictly increasing across every push, so `(time,
/// tick)` totally orders all in-flight events regardless of shard.
/// [`EventShards::pop_due`] always returns the globally smallest due
/// pair, which makes the drain order identical to a single machine-wide
/// `(time, tick)` min-heap — the sharding only changes *where* events
/// wait, never *when* they fire. Within a bucket (one shard, one
/// cycle), append order is tick order because ticks grow with every
/// push and overflow migration always precedes a same-time insert.
///
/// The frontier is the [`HeadTree`] minimum plus `next_due`, a lower
/// bound on the earliest pending event time: on cycles with nothing
/// due, the drain returns after one comparison, so a wide machine with
/// idle clusters pays nothing for their empty queues.
#[derive(Debug)]
pub(super) struct EventShards {
    shards: Vec<Shard>,
    /// Cached earliest undelivered `(time, tick)` per shard —
    /// `(u64::MAX, u64::MAX)` when empty. Only the shard actually
    /// popped recomputes its head from calendar memory.
    heads: Vec<(u64, u64)>,
    /// Winner tree over `heads`; its root is the next event to fire.
    tree: HeadTree,
    /// Global tie-break counter, monotone across all shards.
    tick: u64,
    /// Lower bound on the earliest pending event time; exact after a
    /// scan that found nothing due, and pushes can only lower it.
    next_due: u64,
    /// Lower bound on every undelivered event time; advances with the
    /// drain. Scheduling below it would mean firing in the already-
    /// delivered past — a sim bug, asserted in debug builds.
    floor: u64,
    /// Events beyond the calendar window, ordered by `(time, tick,
    /// shard)`; migrated into their shard once the window reaches them.
    overflow: BinaryHeap<Reverse<(u64, u64, u32, EventKind)>>,
    /// Cumulative events ever pushed (calendar or overflow). With
    /// `popped` and the live totals this is the auditor's conservation
    /// law: `pushed == popped + pending`. Two u64 increments on paths
    /// that already touch the same cache lines — kept unconditionally
    /// so the invariant is checkable on any run.
    pushed: u64,
    /// Cumulative events ever delivered by [`EventShards::pop_due`].
    popped: u64,
}

impl EventShards {
    pub(super) fn new(shards: usize) -> EventShards {
        EventShards {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            heads: vec![(u64::MAX, u64::MAX); shards],
            tree: HeadTree::new(shards),
            tick: 0,
            next_due: u64::MAX,
            floor: 0,
            overflow: BinaryHeap::new(),
            pushed: 0,
            popped: 0,
        }
    }

    fn insert(&mut self, shard: usize, time: u64, tick: u64, kind: EventKind) {
        self.shards[shard].insert(time, tick, kind);
        if (time, tick) < self.heads[shard] {
            self.heads[shard] = (time, tick);
            self.tree.update(shard, (time, tick));
        }
    }

    /// Moves overflow events with `time <= limit` (and within the
    /// window) into their calendars. Called before any same-time insert
    /// so bucket append order stays tick order: an overflow event is
    /// always older (smaller tick) than a calendar push for the same
    /// cycle, because the window only ever advances.
    fn migrate_overflow_upto(&mut self, limit: u64) {
        while let Some(&Reverse((t, k, c, kind))) = self.overflow.peek() {
            if t > limit || t.saturating_sub(self.floor) >= CAL_WINDOW as u64 {
                break;
            }
            self.overflow.pop();
            self.insert(c as usize, t, k, kind);
        }
    }

    fn overflow_head_time(&self) -> u64 {
        self.overflow.peek().map_or(u64::MAX, |&Reverse((t, ..))| t)
    }

    fn push(&mut self, shard: usize, time: u64, kind: EventKind) {
        debug_assert!(time >= self.floor, "event scheduled in the delivered past");
        let time = time.max(self.floor);
        self.pushed += 1;
        self.tick += 1;
        let tick = self.tick;
        if !self.overflow.is_empty() {
            self.migrate_overflow_upto(time);
        }
        if time - self.floor >= CAL_WINDOW as u64 {
            self.overflow.push(Reverse((time, tick, shard as u32, kind)));
        } else {
            self.insert(shard, time, tick, kind);
        }
        self.next_due = self.next_due.min(time);
    }

    /// Pops the globally earliest event if it is due at `now`,
    /// returning it with the shard it waited in (the host profiler's
    /// load-skew attribution key).
    ///
    /// Reads the winner tree's root for the minimum `(time, tick)`
    /// head; ticks are globally unique, so the winner is unambiguous
    /// and matches the pop order of one machine-wide heap. Only the
    /// winning shard's calendar memory is touched. Returns `None` —
    /// after refreshing `next_due` exactly — once nothing is due, so
    /// the caller's next idle cycle is a single comparison.
    fn pop_due(&mut self, now: u64) -> Option<(usize, EventKind)> {
        if self.next_due > now {
            return None;
        }
        loop {
            if !self.overflow.is_empty() {
                self.migrate_overflow_upto(now);
            }
            // `t == u64::MAX` is the tree's "all shards empty" key,
            // not a due event — no real event is ever scheduled there
            // (times are `now` plus bounded latencies).
            match self.tree.min() {
                (t, _, c) if t <= now && t != u64::MAX => {
                    let c = c as usize;
                    // The cached head names the bucket directly; no
                    // occupancy-bitmap walk on the common path.
                    let idx = t as usize & CAL_MASK;
                    let (kind, same_bucket) = self.shards[c].pop_at(idx, t);
                    let head = if self.shards[c].len == 0 {
                        (u64::MAX, u64::MAX)
                    } else if let Some(head) = same_bucket {
                        head
                    } else {
                        let (ht, hk, _) = self.shards[c].head(self.floor);
                        (ht, hk)
                    };
                    self.heads[c] = head;
                    self.tree.update(c, head);
                    self.popped += 1;
                    return Some((c, kind));
                }
                (t, ..) => {
                    // Nothing due in the calendars; `t` and the overflow
                    // head bound every live event, so the floor may rise
                    // to their minimum.
                    let oh = self.overflow_head_time();
                    if !self.overflow.is_empty() && oh <= now {
                        // A due overflow event was blocked by the stale
                        // window: raise the floor and retry (each pass
                        // migrates at least one event, so this ends).
                        self.floor = self.floor.max(t.min(oh));
                        continue;
                    }
                    self.next_due = t.min(oh);
                    self.floor = self.floor.max(now.saturating_add(1));
                    return None;
                }
            }
        }
    }

    /// Queue-health snapshot for the host profiler:
    /// `(calendar_events, overflow_events, floor)`. O(shards) — only
    /// called from the profiled cycle loop.
    pub(super) fn health(&self) -> (usize, usize, u64) {
        let calendar: usize = self.shards.iter().map(|s| s.len).sum();
        (calendar, self.overflow.len(), self.floor)
    }

    /// Conservation snapshot for the auditor: `(pushed, popped,
    /// pending)`, where `pending` counts live calendar + overflow
    /// events. Every pushed event is either delivered or still
    /// pending: `pushed == popped + pending` at every cycle boundary.
    pub(super) fn conservation(&self) -> (u64, u64, u64) {
        let pending: usize = self.shards.iter().map(|s| s.len).sum::<usize>() + self.overflow.len();
        (self.pushed, self.popped, pending as u64)
    }
}

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    /// Queues `kind` to fire at `time` in `shard`'s event queue. The
    /// shard is a locality hint only — the drain order is global — so
    /// callers pass whichever cluster or LSQ slice the event concerns.
    pub(super) fn schedule(&mut self, shard: usize, time: u64, kind: EventKind) {
        self.events.push(shard, time, kind);
    }

    pub(super) fn drain_events(&mut self) {
        while let Some((shard, kind)) = self.events.pop_due(self.now) {
            if O::WANTS_HOST_PROFILE {
                self.observer.on_event_drained(shard);
            }
            match kind {
                EventKind::WriteBack { seq } => self.writeback(seq),
                EventKind::LoadAddr { seq } => self.load_addr(seq),
                EventKind::StoreAddr { seq } => self.store_addr(seq),
                EventKind::LoadAtLsq { seq, slice } => self.load_at_lsq(seq, slice),
                EventKind::StoreResolved { seq, slice, word, own, forward_here } => {
                    self.store_resolved(seq, slice, word, own, forward_here)
                }
            }
        }
    }

    /// A cache-related transfer between clusters: free when local,
    /// otherwise routed on the interconnect and counted.
    pub(super) fn routed_cache_transfer(&mut self, from: usize, to: usize, earliest: u64) -> u64 {
        if from == to {
            earliest
        } else {
            let hops = self.net.distance(from, to);
            self.stats.cache_transfers += 1;
            self.stats.cache_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Cache, from, to, hops);
            self.net.transfer(from, to, earliest)
        }
    }

    /// The LSQ slice holding forwarding state for a resolved bank:
    /// the central slice for the centralized model, the bank's own
    /// slice otherwise.
    pub(super) fn forward_slice(&self, bank: usize) -> usize {
        match self.cfg.cache.model {
            CacheModel::Centralized => 0,
            CacheModel::Decentralized => bank,
        }
    }

    fn writeback(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "writeback for seq {seq} not in the ROB");
            return;
        };
        let cluster = self.rob[idx].cluster;
        self.rob[idx].done = true;
        self.rob[idx].done_at = self.now;
        self.rob[idx].copies[cluster] = self.now;
        self.rob[idx].copies_mask |= 1 << cluster;

        // Wake consumers, transferring the value to their clusters.
        // Walked by index: the handlers touch only the *consumers'*
        // entries (a waiter never waits on itself) and never grow this
        // producer's list, so the slot's vector stays put and keeps
        // its capacity instead of round-tripping through a side pool.
        for w in 0..self.rob[idx].waiters.len() {
            let (wseq, wcluster, slot) = self.rob[idx].waiters[w];
            let arrival = self.value_arrival(idx, wcluster);
            self.source_arrived(wseq, arrival, slot);
        }
        self.rob[idx].waiters.clear();

        // A mispredicted control transfer restarts fetch once the
        // redirect reaches the front end (co-located with cluster 0).
        if self.rob[idx].mispredicted && self.rob[idx].d.branch.is_some() {
            let resume = self.now
                + self.net.latency(cluster, 0)
                + self.cfg.frontend.mispredict_penalty;
            self.fetch_stall_until = self.fetch_stall_until.max(resume);
            self.awaiting_redirect = false;
        }

        // A store's writeback means address *and* data are known:
        // finalise its forwarding record at the bank slice and release
        // any loads waiting on its data.
        if self.rob[idx].class == OpClass::Store {
            // Memref-without-address traces are rejected at load; see
            // `rob_index` for the release-degrade posture.
            let Some(mem_access) = self.rob[idx].d.mem else {
                debug_assert!(false, "store {seq} without an address at writeback");
                return;
            };
            let fslice = self.forward_slice(self.rob[idx].bank);
            let avail = self.now + self.net.latency(cluster, fslice);
            self.lsq[fslice].update_store_data(mem_access.addr >> 3, seq, avail);
            if !self.loads_waiting_data.is_empty() {
                let mut waiting = std::mem::take(&mut self.waiting_scratch);
                self.loads_waiting_data.retain(|&(store, load, slice)| {
                    let matches = store == seq;
                    if matches {
                        waiting.push((load, slice));
                    }
                    !matches
                });
                for (load_seq, slice) in waiting.drain(..) {
                    self.proceed_load(load_seq, slice);
                }
                self.waiting_scratch = waiting;
            }
        }
    }

    /// When `entry`'s result reaches cluster `to`, scheduling a
    /// transfer if it is not already there or en route.
    pub(super) fn value_arrival(&mut self, idx: usize, to: usize) -> u64 {
        let from = self.rob[idx].cluster;
        let done = self.rob[idx].done_at;
        if self.rob[idx].copies_mask >> to & 1 == 1 {
            return self.rob[idx].copies[to];
        }
        let arrival = if to == from {
            done
        } else {
            let a = self.net.transfer(from, to, done.max(self.now));
            let hops = self.net.distance(from, to);
            self.stats.reg_transfers += 1;
            self.stats.reg_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Register, from, to, hops);
            a
        };
        self.rob[idx].copies[to] = arrival;
        self.rob[idx].copies_mask |= 1 << to;
        arrival
    }

    fn source_arrived(&mut self, seq: u64, arrival: u64, slot: u8) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "woken consumer {seq} not in the ROB");
            return;
        };
        if slot == STORE_VALUE_SLOT {
            // A store's data operand: it does not gate address
            // generation, only the store's completion.
            self.rob[idx].store_value_at = arrival;
            if self.rob[idx].agu_done != ABSENT {
                let t = self.rob[idx].agu_done.max(arrival).max(self.now);
                let cluster = self.rob[idx].cluster;
                self.schedule(cluster, t, EventKind::WriteBack { seq });
            }
            return;
        }
        let e = &mut self.rob[idx];
        e.src_arrival[slot as usize] = arrival;
        e.ready_at = e.ready_at.max(arrival);
        e.srcs_outstanding -= 1;
        if e.srcs_outstanding == 0 {
            let (cluster, group, ready_at) = (e.cluster, FuGroup::of(e.class), e.ready_at);
            self.cluster_enqueue(cluster, group, ready_at, seq);
        }
    }

    fn broadcast_store(&mut self, idx: usize) {
        let seq = self.rob[idx].d.seq;
        let cluster = self.rob[idx].cluster;
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "store {seq} without an address at broadcast");
            return;
        };
        let addr = mem_access.addr;
        let word = addr >> 3;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                self.rob[idx].bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(
                    0,
                    at.max(self.now),
                    EventKind::StoreResolved { seq, slice: 0, word, own: true, forward_here: true },
                );
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank;
                self.rob[idx].bank_cluster = bank;
                for k in 0..active {
                    let at = self.routed_cache_transfer(cluster, k, self.now);
                    self.schedule(
                        k,
                        at.max(self.now),
                        EventKind::StoreResolved {
                            seq,
                            slice: k,
                            word,
                            own: k == cluster,
                            forward_here: k == bank,
                        },
                    );
                }
            }
        }
    }

    fn store_addr(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "store-address event for seq {seq} not in the ROB");
            return;
        };
        self.rob[idx].agu_done = self.now;
        // Address known: broadcast for disambiguation/dummy release.
        self.broadcast_store(idx);
        let value_at = self.rob[idx].store_value_at;
        if value_at != ABSENT {
            let cluster = self.rob[idx].cluster;
            self.schedule(cluster, value_at.max(self.now), EventKind::WriteBack { seq });
        }
    }

    fn load_addr(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "load-address event for seq {seq} not in the ROB");
            return;
        };
        let cluster = self.rob[idx].cluster;
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "load {seq} without an address at the AGU");
            return;
        };
        let addr = mem_access.addr;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                self.rob[idx].bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(0, at.max(self.now), EventKind::LoadAtLsq { seq, slice: 0 });
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank;
                self.rob[idx].bank_cluster = bank;
                let at = self.routed_cache_transfer(cluster, bank, self.now);
                self.schedule(bank, at.max(self.now), EventKind::LoadAtLsq { seq, slice: bank });
            }
        }
    }

    fn load_at_lsq(&mut self, seq: u64, slice: usize) {
        if self.lsq[slice].blocked(seq) {
            self.lsq[slice].park(seq);
        } else {
            self.proceed_load(seq, slice);
        }
    }

    pub(super) fn proceed_load(&mut self, seq: u64, slice: usize) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "proceeding load {seq} not in the ROB");
            return;
        };
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "load {seq} without an address at the LSQ");
            return;
        };
        let (bank, bank_cluster, cluster) =
            (self.rob[idx].bank, self.rob[idx].bank_cluster, self.rob[idx].cluster);
        let word = mem_access.addr >> 3;
        let data_at_bank = match self.lsq[slice].forward_source(word, seq) {
            Some((store_seq, avail)) => {
                if avail == ABSENT {
                    // The matching store's data is still being computed;
                    // retry when it writes back.
                    self.loads_waiting_data.push((store_seq, seq, slice));
                    return;
                }
                self.stats.lsq_forwards += 1;
                avail.max(self.now) + 1
            }
            None => {
                let ready = self.mem.access(
                    &mut self.net,
                    bank,
                    bank_cluster,
                    mem_access.addr,
                    false,
                    self.now,
                    &mut self.stats,
                );
                self.observer.on_cache_access(self.now, bank, false, ready);
                ready
            }
        };
        // Data returns to the consuming cluster: from cluster 0 for the
        // centralized cache, from the bank's cluster otherwise.
        let home = self.forward_slice(bank_cluster);
        let back = self.routed_cache_transfer(home, cluster, data_at_bank);
        self.schedule(cluster, back.max(self.now + 1), EventKind::WriteBack { seq });
    }

    fn store_resolved(&mut self, seq: u64, slice: usize, word: u64, own: bool, forward_here: bool) {
        if forward_here {
            // Only record forwarding state for stores still in flight —
            // this is the one event that legitimately outlives its ROB
            // entry; committed stores have already written the cache.
            // If the store's data is still outstanding, record a
            // placeholder that its writeback fills in.
            if let Some(idx) = self.rob_index(seq) {
                let avail = if self.rob[idx].done {
                    // The data may have been produced after the address
                    // broadcast departed; it still needs its own trip.
                    let extra = self.net.latency(self.rob[idx].cluster, slice);
                    self.now.max(self.rob[idx].done_at + extra)
                } else {
                    ABSENT
                };
                self.lsq[slice].record_store_data(word, seq, avail);
            }
        }
        if !own {
            // Dummy slot released on broadcast arrival.
            self.lsq[slice].release();
        }
        let freed = self.lsq[slice].resolve_store(seq);
        for load in freed {
            self.proceed_load(load, slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{EventKind, EventShards};

    fn wb(seq: u64) -> EventKind {
        EventKind::WriteBack { seq }
    }

    /// The sharded queue must pop in exactly the `(time, tick)` order
    /// of one global heap, regardless of which shard events sit in.
    #[test]
    fn pop_order_is_global_time_then_tick() {
        let mut s = EventShards::new(4);
        s.push(3, 10, wb(1)); // tick 1
        s.push(0, 10, wb(2)); // tick 2: same time, later tick → after
        s.push(2, 5, wb(3)); // tick 3: earlier time → first
        s.push(1, 10, wb(4)); // tick 4
        let mut order = Vec::new();
        while let Some((_, kind)) = s.pop_due(u64::MAX) {
            order.push(kind);
        }
        assert_eq!(order, vec![wb(3), wb(1), wb(2), wb(4)]);
    }

    #[test]
    fn pop_due_respects_now_and_refreshes_frontier() {
        let mut s = EventShards::new(2);
        s.push(0, 7, wb(1));
        s.push(1, 3, wb(2));
        assert_eq!(s.pop_due(2), None, "nothing due before cycle 3");
        assert_eq!(s.next_due, 3, "scan refreshed the frontier exactly");
        assert_eq!(s.pop_due(3), Some((1, wb(2))));
        assert_eq!(s.pop_due(3), None);
        assert_eq!(s.next_due, 7);
        assert_eq!(s.pop_due(7), Some((0, wb(1))));
        assert_eq!(s.pop_due(u64::MAX), None);
        assert_eq!(s.tree.min().0, u64::MAX, "drained shards leave the frontier");
        assert_eq!(s.next_due, u64::MAX);
    }

    /// Events pushed while draining (handler chains within one cycle)
    /// are seen by the same drain, as with the former single heap.
    #[test]
    fn same_cycle_chains_are_visible() {
        let mut s = EventShards::new(2);
        s.push(0, 4, wb(1));
        assert_eq!(s.pop_due(4), Some((0, wb(1))));
        s.push(1, 4, wb(2)); // a handler scheduling for the same cycle
        assert_eq!(s.pop_due(4), Some((1, wb(2))));
        assert_eq!(s.pop_due(4), None);
    }

    /// The calendar ring wraps: once the floor has advanced, a bucket
    /// index smaller than the floor's can hold a *later* time, and time
    /// order must still win over ring order.
    #[test]
    fn calendar_ring_wrap_keeps_time_order() {
        let w = super::CAL_WINDOW as u64;
        let mut s = EventShards::new(1);
        s.push(0, w - 100, wb(1));
        assert_eq!(s.pop_due(w - 100), Some((0, wb(1))));
        assert_eq!(s.pop_due(w - 100), None); // floor advances past w - 100
        s.push(0, w - 1, wb(2)); // last bucket of the ring
        s.push(0, w + 300, wb(3)); // wraps to a bucket before the floor's
        assert_eq!(s.pop_due(w + 300), Some((0, wb(2))));
        assert_eq!(s.pop_due(w + 300), Some((0, wb(3))));
        assert_eq!(s.pop_due(w + 300), None);
    }

    /// Events beyond the calendar window park in the overflow heap and
    /// still fire at their exact cycle once the window reaches them.
    #[test]
    fn far_future_events_overflow_and_return() {
        let far = 2 * super::CAL_WINDOW as u64 + 100;
        let mut s = EventShards::new(2);
        s.push(1, far, wb(1)); // beyond the window: parked
        s.push(0, 10, wb(2));
        assert_eq!(s.pop_due(10), Some((0, wb(2))));
        assert_eq!(s.pop_due(far - 1), None);
        assert_eq!(s.next_due, far, "overflow head drives the frontier");
        assert_eq!(s.pop_due(far), Some((1, wb(1))), "returns with the shard it waited in");
        assert_eq!(s.pop_due(u64::MAX), None);
        assert_eq!(s.tree.min().0, u64::MAX);
    }

    /// A push migrates older same-cycle overflow events first, so
    /// bucket append order stays tick order.
    #[test]
    fn overflow_migration_preserves_tick_order() {
        let far = 2 * super::CAL_WINDOW as u64;
        let mut s = EventShards::new(1);
        s.push(0, far, wb(1)); // tick 1: parked in overflow
        s.push(0, 5, wb(2));
        assert_eq!(s.pop_due(5), Some((0, wb(2)))); // floor: 5
        s.push(0, far - 5, wb(3)); // advances nothing: different bucket
        assert_eq!(s.pop_due(far - 5), Some((0, wb(3)))); // floor: far - 5
        s.push(0, far, wb(4)); // tick 4, same cycle: wb(1) must migrate first
        assert_eq!(s.pop_due(far), Some((0, wb(1))));
        assert_eq!(s.pop_due(far), Some((0, wb(4))));
        assert_eq!(s.pop_due(far), None);
    }

    /// `health()` reports calendar occupancy, overflow depth, and the
    /// floor watermark — the profiler's queue-health sample.
    #[test]
    fn health_snapshot_tracks_calendars_overflow_and_floor() {
        let mut s = EventShards::new(2);
        assert_eq!(s.health(), (0, 0, 0));
        s.push(0, 5, wb(1));
        s.push(1, 9, wb(2));
        s.push(1, 2 * super::CAL_WINDOW as u64, wb(3)); // parked
        assert_eq!(s.health(), (2, 1, 0));
        assert_eq!(s.pop_due(5), Some((0, wb(1))));
        assert_eq!(s.pop_due(5), None); // floor rises past `now`
        let (calendar, overflow, floor) = s.health();
        assert_eq!((calendar, overflow), (1, 1));
        assert!(floor > 5, "floor advances with the drain");
    }
}
