//! The event coordinator and every event handler of the backend.
//!
//! Events — writebacks, AGU completions, LSQ arrivals, and store
//! broadcasts — are the backend's *typed boundary messages*: the only
//! way work crosses from one [`ClusterDomain`] into another or into
//! the shared LSQ/cache/commit machinery. Each event waits in the
//! calendar [`Shard`] owned by its destination domain, but the
//! [`EventCoordinator`] drains all shards in one global `(time, tick)`
//! order, so the schedule is exactly the one a single machine-wide
//! queue would compute while quiescent clusters cost nothing (see
//! DESIGN.md, "Sharded event model").
//!
//! Two drain strategies compute that same schedule:
//!
//! - [`Processor::drain_events`] — the sequential oracle: pop the
//!   globally earliest due event, run its handler, repeat.
//! - [`Processor::drain_events_batched`] — the round-based drain used
//!   by the `--intra-jobs` path: gather every currently due event out
//!   of the shards (optionally on a scoped thread pool — gathering
//!   touches only the owning domain), merge by `(time, tick)`, then
//!   run the handlers in that order; repeat until nothing is due.
//!   Handler pushes always carry the current cycle or later with a
//!   fresh (larger) tick, so they sort after everything gathered and
//!   are picked up by the next round — the delivered order is
//!   bit-identical to the oracle's (pinned by the unit tests here and
//!   by `tests/parallel_equivalence.rs`).

use super::domain::ClusterDomain;
use super::pool::IntraPool;
use super::{Processor, ABSENT, FANOUT_MIN, STORE_VALUE_SLOT};
use crate::cluster::FuGroup;
use crate::config::CacheModel;
use crate::observe::{SimObserver, TransferKind};
use clustered_emu::TraceSource;
use clustered_isa::OpClass;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

// The shard frontier is a u32 bitmask, one bit per physical cluster.
const _: () = assert!(crate::config::MAX_CLUSTERS <= 32, "frontier mask is a u32");

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum EventKind {
    /// Result available: wake consumers, redirect fetch, etc.
    WriteBack { seq: u64 },
    /// A load's effective address left its AGU.
    LoadAddr { seq: u64 },
    /// A store's effective address left its AGU (its data may still be
    /// outstanding).
    StoreAddr { seq: u64 },
    /// A load arrived at LSQ slice `slice`.
    LoadAtLsq { seq: u64, slice: usize },
    /// A store's address (and data) became visible at LSQ slice
    /// `slice`. Carries everything needed because the store may have
    /// committed before the broadcast lands.
    StoreResolved {
        seq: u64,
        slice: usize,
        word: u64,
        own: bool,
        forward_here: bool,
    },
}

/// Calendar window per shard, in cycles; a power of two. Nothing in
/// the machine schedules farther ahead than a memory round trip (~200
/// cycles at the default latencies), but events beyond the window are
/// still correct: they wait in a shared overflow heap until the window
/// reaches them. The window is sized just past that lookahead on
/// purpose — 16 shards of bucket headers are walked by every push and
/// pop, so calendar memory is hot-loop working set, not slack space.
const CAL_WINDOW: usize = 512;
const CAL_MASK: usize = CAL_WINDOW - 1;
const CAL_WORDS: usize = CAL_WINDOW / 64;

// The per-shard occupancy summary is a single u64, one bit per word.
const _: () = assert!(CAL_WORDS <= 64, "calendar summary bitmap is a u64");

/// One time-indexed bucket of a shard's calendar: events of a single
/// cycle, appended (and therefore delivered) in tick order.
#[derive(Debug, Default, Clone)]
struct Bucket {
    /// Next entry to deliver; earlier entries are already popped.
    next: usize,
    /// `(time, tick, kind)` in push order.
    items: Vec<(u64, u64, EventKind)>,
}

/// One cluster's event calendar: a ring of [`CAL_WINDOW`] buckets
/// indexed by `time % CAL_WINDOW`, with a two-level occupancy bitmap
/// so the earliest pending bucket is found in a handful of bit
/// operations. Push and pop are plain `Vec` appends/reads — no
/// heap sift — which is what makes the event machinery cheap.
///
/// Owned by its [`ClusterDomain`]; the global ordering state (heads,
/// winner tree, tick counter, floor) lives in the shared
/// [`EventCoordinator`].
#[derive(Debug)]
pub(super) struct Shard {
    buckets: Vec<Bucket>,
    /// Bit `i % 64` of `occ[i / 64]` ⇔ `buckets[i]` has undelivered
    /// entries.
    occ: [u64; CAL_WORDS],
    /// Bit `w` ⇔ `occ[w] != 0`.
    summary: u64,
    len: usize,
}

impl Shard {
    pub(super) fn new() -> Shard {
        Shard {
            buckets: vec![Bucket::default(); CAL_WINDOW],
            occ: [0; CAL_WORDS],
            summary: 0,
            len: 0,
        }
    }

    /// Undelivered events waiting in this shard.
    pub(super) fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, time: u64, tick: u64, kind: EventKind) {
        let idx = time as usize & CAL_MASK;
        let b = &mut self.buckets[idx];
        if b.items.is_empty() {
            self.occ[idx >> 6] |= 1 << (idx & 63);
            self.summary |= 1 << (idx >> 6);
        }
        b.items.push((time, tick, kind));
        self.len += 1;
    }

    /// First occupied bucket at or (circularly) after ring position
    /// `from`. The shard must be non-empty.
    fn find_first(&self, from: usize) -> usize {
        let w = from >> 6;
        let bits = self.occ[w] & (!0u64 << (from & 63));
        if bits != 0 {
            return (w << 6) | bits.trailing_zeros() as usize;
        }
        let after = if w + 1 == CAL_WORDS { 0 } else { self.summary & (!0u64 << (w + 1)) };
        debug_assert!(self.summary != 0, "searching an empty shard");
        let sw = if after != 0 {
            after.trailing_zeros() as usize
        } else {
            // Wrap: the earliest bucket is circularly before `from`.
            self.summary.trailing_zeros() as usize
        };
        let bits = if sw == w { self.occ[w] & !(!0u64 << (from & 63)) } else { self.occ[sw] };
        (sw << 6) | bits.trailing_zeros() as usize
    }

    /// The earliest undelivered event, as `(time, tick, bucket)`.
    /// `floor` must lower-bound every undelivered time, which makes
    /// ring order from `floor` equal to time order.
    pub(super) fn head(&self, floor: u64) -> (u64, u64, usize) {
        let idx = self.find_first(floor as usize & CAL_MASK);
        let b = &self.buckets[idx];
        let (t, k, _) = b.items[b.next];
        (t, k, idx)
    }

    /// Pops the head of bucket `idx` — the shard's earliest event,
    /// whose time the caller already knows (`time`, its cached head) —
    /// and returns the kind plus the shard's new head `(time, tick)`
    /// when it lives in the *same* bucket. Within the window exactly
    /// one time maps to a bucket, so a non-exhausted bucket's next
    /// entry is the shard head without touching the occupancy bitmaps;
    /// `None` means the bucket emptied and the caller must rescan.
    fn pop_at(&mut self, idx: usize, time: u64) -> (EventKind, Option<(u64, u64)>) {
        let b = &mut self.buckets[idx];
        debug_assert_eq!(b.items[b.next].0, time, "cached head time desynced from bucket");
        let (_, _, kind) = b.items[b.next];
        b.next += 1;
        self.len -= 1;
        if b.next == b.items.len() {
            b.items.clear();
            b.next = 0;
            self.occ[idx >> 6] &= !(1 << (idx & 63));
            if self.occ[idx >> 6] == 0 {
                self.summary &= !(1 << (idx >> 6));
            }
            (kind, None)
        } else {
            (kind, Some((time, b.items[b.next].1)))
        }
    }

    /// Takes every undelivered entry of bucket `idx` into `out` and
    /// empties the bucket, returning the count. Within the window one
    /// bucket holds events of exactly one undelivered `time`, already
    /// in tick order, so this is the batch form of repeated
    /// [`Shard::pop_at`] on the same bucket.
    pub(super) fn take_bucket(
        &mut self,
        idx: usize,
        time: u64,
        out: &mut Vec<(u64, u64, EventKind)>,
    ) -> usize {
        let b = &mut self.buckets[idx];
        debug_assert!(
            b.next < b.items.len() && b.items[b.next].0 == time,
            "taking a bucket whose head is not time {time}"
        );
        let n = b.items.len() - b.next;
        out.extend_from_slice(&b.items[b.next..]);
        b.items.clear();
        b.next = 0;
        self.occ[idx >> 6] &= !(1 << (idx & 63));
        if self.occ[idx >> 6] == 0 {
            self.summary &= !(1 << (idx >> 6));
        }
        self.len -= n;
        n
    }
}

/// A winner tree over the shard head keys: `nodes[1]` holds the
/// minimum `(time, tick, shard)` of all leaves, and changing one
/// leaf's key replays only its root path — `log2(shards)` comparisons,
/// where the flat scan it replaced compared every non-empty shard on
/// every pop. Ticks are globally unique, so the minimum (and therefore
/// the drain order) is unambiguous.
#[derive(Debug)]
struct HeadTree {
    /// Implicit binary tree: internal nodes in `[1, size)`, leaf for
    /// shard `c` at `size + c`. Padding leaves stay `(MAX, MAX, _)`.
    nodes: Vec<(u64, u64, u32)>,
    size: usize,
}

impl HeadTree {
    fn new(shards: usize) -> HeadTree {
        let size = shards.next_power_of_two().max(2);
        let mut nodes = vec![(u64::MAX, u64::MAX, 0); 2 * size];
        for c in 0..shards {
            nodes[size + c].2 = c as u32;
        }
        HeadTree { nodes, size }
    }

    /// Sets shard `shard`'s head key and replays its path to the root.
    #[inline]
    fn update(&mut self, shard: usize, key: (u64, u64)) {
        let mut n = self.size + shard;
        self.nodes[n] = (key.0, key.1, shard as u32);
        while n > 1 {
            n >>= 1;
            let l = self.nodes[2 * n];
            let r = self.nodes[2 * n + 1];
            self.nodes[n] = if (l.0, l.1) <= (r.0, r.1) { l } else { r };
        }
    }

    /// The minimum head key and its shard.
    #[inline]
    fn min(&self) -> (u64, u64, u32) {
        self.nodes[1]
    }
}

/// The global ordering state over the per-domain calendar shards.
///
/// Each [`ClusterDomain`] owns its [`Shard`]; the coordinator owns
/// everything that spans them: the cached shard heads and their winner
/// tree, the *global* strictly-increasing `tick` counter, the
/// `next_due`/`floor` watermarks, the far-future overflow heap, and
/// the conservation counters. `(time, tick)` totally orders all
/// in-flight events regardless of shard, and
/// [`EventCoordinator::pop_due`] always returns the globally smallest
/// due pair, which makes the drain order identical to a single
/// machine-wide `(time, tick)` min-heap — the sharding only changes
/// *where* events wait, never *when* they fire. Within a bucket (one
/// shard, one cycle), append order is tick order because ticks grow
/// with every push and overflow migration always precedes a same-time
/// insert.
///
/// The frontier is the [`HeadTree`] minimum plus `next_due`, a lower
/// bound on the earliest pending event time: on cycles with nothing
/// due, the drain returns after one comparison, so a wide machine with
/// idle clusters pays nothing for their empty queues.
#[derive(Debug)]
pub(super) struct EventCoordinator {
    /// Cached earliest undelivered `(time, tick)` per shard —
    /// `(u64::MAX, u64::MAX)` when empty. Only the shard actually
    /// popped recomputes its head from calendar memory.
    heads: Vec<(u64, u64)>,
    /// Winner tree over `heads`; its root is the next event to fire.
    tree: HeadTree,
    /// Global tie-break counter, monotone across all shards.
    tick: u64,
    /// Lower bound on the earliest pending event time; exact after a
    /// scan that found nothing due, and pushes can only lower it.
    next_due: u64,
    /// Lower bound on every undelivered event time; advances with the
    /// drain. Scheduling below it would mean firing in the already-
    /// delivered past — a sim bug, asserted in debug builds.
    floor: u64,
    /// Events beyond the calendar window, ordered by `(time, tick,
    /// shard)`; migrated into their shard once the window reaches them.
    overflow: BinaryHeap<Reverse<(u64, u64, u32, EventKind)>>,
    /// Cumulative events ever pushed (calendar or overflow). With
    /// `popped` and the live totals this is the auditor's conservation
    /// law: `pushed == popped + pending`. Two u64 increments on paths
    /// that already touch the same cache lines — kept unconditionally
    /// so the invariant is checkable on any run.
    pushed: u64,
    /// Cumulative events ever delivered (by pop or batch gather).
    popped: u64,
}

impl EventCoordinator {
    pub(super) fn new(shards: usize) -> EventCoordinator {
        EventCoordinator {
            heads: vec![(u64::MAX, u64::MAX); shards],
            tree: HeadTree::new(shards),
            tick: 0,
            next_due: u64::MAX,
            floor: 0,
            overflow: BinaryHeap::new(),
            pushed: 0,
            popped: 0,
        }
    }

    /// The drain floor: every undelivered event fires at or after it.
    pub(super) fn floor(&self) -> u64 {
        self.floor
    }

    /// Lower bound on the earliest pending event time; the cycle
    /// loop's one-comparison idle exit.
    pub(super) fn next_due(&self) -> u64 {
        self.next_due
    }

    fn insert(&mut self, domains: &mut [ClusterDomain], shard: usize, time: u64, tick: u64, kind: EventKind) {
        domains[shard].shard.insert(time, tick, kind);
        if (time, tick) < self.heads[shard] {
            self.heads[shard] = (time, tick);
            self.tree.update(shard, (time, tick));
        }
    }

    /// Moves overflow events with `time <= limit` (and within the
    /// window) into their calendars. Called before any same-time insert
    /// so bucket append order stays tick order: an overflow event is
    /// always older (smaller tick) than a calendar push for the same
    /// cycle, because the window only ever advances.
    fn migrate_overflow_upto(&mut self, domains: &mut [ClusterDomain], limit: u64) {
        while let Some(&Reverse((t, k, c, kind))) = self.overflow.peek() {
            if t > limit || t.saturating_sub(self.floor) >= CAL_WINDOW as u64 {
                break;
            }
            self.overflow.pop();
            self.insert(domains, c as usize, t, k, kind);
        }
    }

    fn overflow_head_time(&self) -> u64 {
        self.overflow.peek().map_or(u64::MAX, |&Reverse((t, ..))| t)
    }

    pub(super) fn push(&mut self, domains: &mut [ClusterDomain], shard: usize, time: u64, kind: EventKind) {
        debug_assert!(time >= self.floor, "event scheduled in the delivered past");
        let time = time.max(self.floor);
        self.pushed += 1;
        self.tick += 1;
        let tick = self.tick;
        if !self.overflow.is_empty() {
            self.migrate_overflow_upto(domains, time);
        }
        if time - self.floor >= CAL_WINDOW as u64 {
            self.overflow.push(Reverse((time, tick, shard as u32, kind)));
        } else {
            self.insert(domains, shard, time, tick, kind);
        }
        self.next_due = self.next_due.min(time);
    }

    /// Pops the globally earliest event if it is due at `now`,
    /// returning it with the shard it waited in (the host profiler's
    /// load-skew attribution key).
    ///
    /// Reads the winner tree's root for the minimum `(time, tick)`
    /// head; ticks are globally unique, so the winner is unambiguous
    /// and matches the pop order of one machine-wide heap. Only the
    /// winning shard's calendar memory is touched. Returns `None` —
    /// after refreshing `next_due` exactly — once nothing is due, so
    /// the caller's next idle cycle is a single comparison.
    pub(super) fn pop_due(&mut self, domains: &mut [ClusterDomain], now: u64) -> Option<(usize, EventKind)> {
        if self.next_due > now {
            return None;
        }
        loop {
            if !self.overflow.is_empty() {
                self.migrate_overflow_upto(domains, now);
            }
            // `t == u64::MAX` is the tree's "all shards empty" key,
            // not a due event — no real event is ever scheduled there
            // (times are `now` plus bounded latencies).
            match self.tree.min() {
                (t, _, c) if t <= now && t != u64::MAX => {
                    let c = c as usize;
                    // The cached head names the bucket directly; no
                    // occupancy-bitmap walk on the common path.
                    let idx = t as usize & CAL_MASK;
                    let (kind, same_bucket) = domains[c].shard.pop_at(idx, t);
                    let head = if domains[c].shard.len() == 0 {
                        (u64::MAX, u64::MAX)
                    } else if let Some(head) = same_bucket {
                        head
                    } else {
                        let (ht, hk, _) = domains[c].shard.head(self.floor);
                        (ht, hk)
                    };
                    self.heads[c] = head;
                    self.tree.update(c, head);
                    self.popped += 1;
                    return Some((c, kind));
                }
                (t, ..) => {
                    // Nothing due in the calendars; `t` and the overflow
                    // head bound every live event, so the floor may rise
                    // to their minimum.
                    let oh = self.overflow_head_time();
                    if !self.overflow.is_empty() && oh <= now {
                        // A due overflow event was blocked by the stale
                        // window: raise the floor and retry (each pass
                        // migrates at least one event, so this ends).
                        self.floor = self.floor.max(t.min(oh));
                        continue;
                    }
                    self.next_due = t.min(oh);
                    self.floor = self.floor.max(now.saturating_add(1));
                    return None;
                }
            }
        }
    }

    /// Opens one batch-drain round: replicates [`pop_due`]'s frontier
    /// and floor bookkeeping (overflow migration, blocked-window
    /// retry, `next_due`/floor refresh when nothing is due), then
    /// returns the bitmask of shards whose head is due at `now` — the
    /// shards [`ClusterDomain::gather_due`] must empty this round. A
    /// zero mask means the drain is complete for this cycle, with
    /// `next_due` exact, just as after a `pop_due` miss.
    ///
    /// [`pop_due`]: EventCoordinator::pop_due
    pub(super) fn begin_round(&mut self, domains: &mut [ClusterDomain], now: u64) -> u32 {
        loop {
            if !self.overflow.is_empty() {
                self.migrate_overflow_upto(domains, now);
            }
            match self.tree.min() {
                (t, ..) if t <= now && t != u64::MAX => {
                    let mut mask = 0u32;
                    for (c, &(ht, _)) in self.heads.iter().enumerate() {
                        if ht <= now {
                            mask |= 1 << c;
                        }
                    }
                    return mask;
                }
                (t, ..) => {
                    let oh = self.overflow_head_time();
                    if !self.overflow.is_empty() && oh <= now {
                        self.floor = self.floor.max(t.min(oh));
                        continue;
                    }
                    self.next_due = t.min(oh);
                    self.floor = self.floor.max(now.saturating_add(1));
                    return 0;
                }
            }
        }
    }

    /// Closes a batch-drain round after the shards in `mask` gathered:
    /// refreshes their cached heads and the winner tree, and accounts
    /// the gathered events as delivered.
    pub(super) fn finish_round(&mut self, domains: &mut [ClusterDomain], mut mask: u32) {
        while mask != 0 {
            let c = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.popped += domains[c].gathered.len() as u64;
            let head = if domains[c].shard.len() == 0 {
                (u64::MAX, u64::MAX)
            } else {
                let (ht, hk, _) = domains[c].shard.head(self.floor);
                (ht, hk)
            };
            self.heads[c] = head;
            self.tree.update(c, head);
        }
    }

    /// Queue-health snapshot for the host profiler:
    /// `(calendar_events, overflow_events, floor)`. O(shards) — only
    /// called from the profiled cycle loop.
    pub(super) fn health(&self, domains: &[ClusterDomain]) -> (usize, usize, u64) {
        let calendar: usize = domains.iter().map(|d| d.shard.len()).sum();
        (calendar, self.overflow.len(), self.floor)
    }

    /// Conservation snapshot for the auditor: `(pushed, popped,
    /// pending)`, where `pending` counts live calendar + overflow
    /// events. Every pushed event is either delivered or still
    /// pending: `pushed == popped + pending` at every cycle boundary.
    pub(super) fn conservation(&self, domains: &[ClusterDomain]) -> (u64, u64, u64) {
        let pending: usize =
            domains.iter().map(|d| d.shard.len()).sum::<usize>() + self.overflow.len();
        (self.pushed, self.popped, pending as u64)
    }
}

impl<T: TraceSource, O: SimObserver> Processor<T, O> {
    /// Queues `kind` to fire at `time` in `shard`'s event queue. The
    /// shard is a locality hint only — the drain order is global — so
    /// callers pass whichever cluster or LSQ slice the event concerns.
    pub(super) fn schedule(&mut self, shard: usize, time: u64, kind: EventKind) {
        self.events.push(&mut self.domains, shard, time, kind);
    }

    /// Dispatches one delivered event to its handler.
    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::WriteBack { seq } => self.writeback(seq),
            EventKind::LoadAddr { seq } => self.load_addr(seq),
            EventKind::StoreAddr { seq } => self.store_addr(seq),
            EventKind::LoadAtLsq { seq, slice } => self.load_at_lsq(seq, slice),
            EventKind::StoreResolved { seq, slice, word, own, forward_here } => {
                self.store_resolved(seq, slice, word, own, forward_here)
            }
        }
    }

    /// The sequential oracle drain: one event at a time, in global
    /// `(time, tick)` order, each handler running before the next pop.
    pub(super) fn drain_events(&mut self) {
        while let Some((shard, kind)) = self.events.pop_due(&mut self.domains, self.now) {
            if O::WANTS_HOST_PROFILE {
                self.observer.on_event_drained(shard);
            }
            self.handle(kind);
        }
    }

    /// The round-based drain of the `--intra-jobs` path: gather every
    /// currently due event out of the owning shards (fanned out over
    /// `pool` when enough shards are due), merge by `(time, tick)`,
    /// execute, repeat. Handlers only ever schedule at the current
    /// cycle or later with fresh ticks, so each round's merged batch
    /// is a prefix of the remaining global order and the delivered
    /// sequence is bit-identical to [`drain_events`].
    ///
    /// [`drain_events`]: Processor::drain_events
    pub(super) fn drain_events_batched(&mut self, pool: Option<&IntraPool>) {
        if self.events.next_due() > self.now {
            return;
        }
        loop {
            let due = self.events.begin_round(&mut self.domains, self.now);
            if due == 0 {
                break;
            }
            let floor = self.events.floor();
            match pool {
                Some(pool) if due.count_ones() as usize >= FANOUT_MIN => {
                    pool.gather(&mut self.domains, due, self.now, floor);
                }
                _ => {
                    let mut m = due;
                    while m != 0 {
                        let c = m.trailing_zeros() as usize;
                        m &= m - 1;
                        self.domains[c].gather_due(self.now, floor);
                    }
                }
            }
            self.events.finish_round(&mut self.domains, due);
            self.execute_gathered(due);
        }
    }

    /// Merges the shards' gathered events back into global `(time,
    /// tick)` order and runs their handlers.
    fn execute_gathered(&mut self, mut mask: u32) {
        let mut merged = std::mem::take(&mut self.drain_scratch);
        debug_assert!(merged.is_empty());
        while mask != 0 {
            let c = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            for (t, k, kind) in self.domains[c].gathered.drain(..) {
                merged.push((t, k, c as u32, kind));
            }
        }
        merged.sort_unstable_by_key(|&(t, k, ..)| (t, k));
        for &(_, _, shard, kind) in &merged {
            if O::WANTS_HOST_PROFILE {
                self.observer.on_event_drained(shard as usize);
            }
            self.handle(kind);
        }
        merged.clear();
        self.drain_scratch = merged;
    }

    /// A cache-related transfer between clusters: free when local,
    /// otherwise routed on the interconnect and counted.
    pub(super) fn routed_cache_transfer(&mut self, from: usize, to: usize, earliest: u64) -> u64 {
        if from == to {
            earliest
        } else {
            let hops = self.net.distance(from, to);
            self.stats.cache_transfers += 1;
            self.stats.cache_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Cache, from, to, hops);
            self.net.transfer(from, to, earliest)
        }
    }

    /// The LSQ slice holding forwarding state for a resolved bank:
    /// the central slice for the centralized model, the bank's own
    /// slice otherwise.
    pub(super) fn forward_slice(&self, bank: usize) -> usize {
        match self.cfg.cache.model {
            CacheModel::Centralized => 0,
            CacheModel::Decentralized => bank,
        }
    }

    fn writeback(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "writeback for seq {seq} not in the ROB");
            return;
        };
        let cluster = self.rob[idx].cluster as usize;
        let slot = self.rob.slot_of(idx);
        self.rob[idx].done = true;
        self.rob[idx].done_at = self.now;
        self.domains[cluster].value_copies[slot] = self.now;
        self.rob[idx].copies_mask |= 1 << cluster;

        // Wake consumers, transferring the value to their clusters.
        // Walked by index: the handlers touch only the *consumers'*
        // entries (a waiter never waits on itself) and never grow this
        // producer's list, so the slot's vector stays put and keeps
        // its capacity instead of round-tripping through a side pool.
        for w in 0..self.rob[idx].waiters.len() {
            let (wseq, wcluster, slot) = self.rob[idx].waiters[w];
            let arrival = self.value_arrival(idx, wcluster as usize);
            self.source_arrived(wseq, arrival, slot);
        }
        self.rob[idx].waiters.clear();

        // A mispredicted control transfer restarts fetch once the
        // redirect reaches the front end (co-located with cluster 0).
        if self.rob[idx].mispredicted && self.rob[idx].d.branch.is_some() {
            let resume = self.now
                + self.net.latency(cluster, 0)
                + self.cfg.frontend.mispredict_penalty;
            self.fetch_stall_until = self.fetch_stall_until.max(resume);
            self.awaiting_redirect = false;
        }

        // A store's writeback means address *and* data are known:
        // finalise its forwarding record at the bank slice and release
        // any loads waiting on its data.
        if self.rob[idx].class == OpClass::Store {
            // Memref-without-address traces are rejected at load; see
            // `rob_index` for the release-degrade posture.
            let Some(mem_access) = self.rob[idx].d.mem else {
                debug_assert!(false, "store {seq} without an address at writeback");
                return;
            };
            let fslice = self.forward_slice(self.rob[idx].bank as usize);
            let avail = self.now + self.net.latency(cluster, fslice);
            self.lsq[fslice].update_store_data(mem_access.addr >> 3, seq, avail);
            if !self.loads_waiting_data.is_empty() {
                let mut waiting = std::mem::take(&mut self.waiting_scratch);
                self.loads_waiting_data.retain(|&(store, load, slice)| {
                    let matches = store == seq;
                    if matches {
                        waiting.push((load, slice));
                    }
                    !matches
                });
                for (load_seq, slice) in waiting.drain(..) {
                    self.proceed_load(load_seq, slice);
                }
                self.waiting_scratch = waiting;
            }
        }
    }

    /// When `entry`'s result reaches cluster `to`, scheduling a
    /// transfer if it is not already there or en route. The arrival
    /// timestamp lives in the *destination* domain's value-copy table
    /// (indexed by the producer's physical ROB slot); the entry's
    /// `copies_mask` says which domains hold a copy.
    pub(super) fn value_arrival(&mut self, idx: usize, to: usize) -> u64 {
        let slot = self.rob.slot_of(idx);
        let from = self.rob[idx].cluster as usize;
        let done = self.rob[idx].done_at;
        if self.rob[idx].copies_mask >> to & 1 == 1 {
            return self.domains[to].value_copies[slot];
        }
        let arrival = if to == from {
            done
        } else {
            let a = self.net.transfer(from, to, done.max(self.now));
            let hops = self.net.distance(from, to);
            self.stats.reg_transfers += 1;
            self.stats.reg_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Register, from, to, hops);
            a
        };
        self.domains[to].value_copies[slot] = arrival;
        self.rob[idx].copies_mask |= 1 << to;
        arrival
    }

    fn source_arrived(&mut self, seq: u64, arrival: u64, slot: u8) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "woken consumer {seq} not in the ROB");
            return;
        };
        if slot == STORE_VALUE_SLOT {
            // A store's data operand: it does not gate address
            // generation, only the store's completion.
            self.rob[idx].store_value_at = arrival;
            if self.rob[idx].agu_done != ABSENT {
                let t = self.rob[idx].agu_done.max(arrival).max(self.now);
                let cluster = self.rob[idx].cluster as usize;
                self.schedule(cluster, t, EventKind::WriteBack { seq });
            }
            return;
        }
        let e = &mut self.rob[idx];
        e.src_arrival[slot as usize] = arrival;
        e.ready_at = e.ready_at.max(arrival);
        e.srcs_outstanding -= 1;
        if e.srcs_outstanding == 0 {
            let (cluster, group, ready_at) = (e.cluster as usize, FuGroup::of(e.class), e.ready_at);
            self.cluster_enqueue(cluster, group, ready_at, seq);
        }
    }

    fn broadcast_store(&mut self, idx: usize) {
        let seq = self.rob[idx].d.seq;
        let cluster = self.rob[idx].cluster as usize;
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "store {seq} without an address at broadcast");
            return;
        };
        let addr = mem_access.addr;
        let word = addr >> 3;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                let bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                debug_assert!(bank <= u16::MAX as usize, "bank index exceeds u16");
                self.rob[idx].bank = bank as u16;
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(
                    0,
                    at.max(self.now),
                    EventKind::StoreResolved { seq, slice: 0, word, own: true, forward_here: true },
                );
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch as usize;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank as u16;
                self.rob[idx].bank_cluster = bank as u8;
                for k in 0..active {
                    let at = self.routed_cache_transfer(cluster, k, self.now);
                    self.schedule(
                        k,
                        at.max(self.now),
                        EventKind::StoreResolved {
                            seq,
                            slice: k,
                            word,
                            own: k == cluster,
                            forward_here: k == bank,
                        },
                    );
                }
            }
        }
    }

    fn store_addr(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "store-address event for seq {seq} not in the ROB");
            return;
        };
        self.rob[idx].agu_done = self.now;
        // Address known: broadcast for disambiguation/dummy release.
        self.broadcast_store(idx);
        let value_at = self.rob[idx].store_value_at;
        if value_at != ABSENT {
            let cluster = self.rob[idx].cluster as usize;
            self.schedule(cluster, value_at.max(self.now), EventKind::WriteBack { seq });
        }
    }

    fn load_addr(&mut self, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "load-address event for seq {seq} not in the ROB");
            return;
        };
        let cluster = self.rob[idx].cluster as usize;
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "load {seq} without an address at the AGU");
            return;
        };
        let addr = mem_access.addr;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                let bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                debug_assert!(bank <= u16::MAX as usize, "bank index exceeds u16");
                self.rob[idx].bank = bank as u16;
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(0, at.max(self.now), EventKind::LoadAtLsq { seq, slice: 0 });
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch as usize;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank as u16;
                self.rob[idx].bank_cluster = bank as u8;
                let at = self.routed_cache_transfer(cluster, bank, self.now);
                self.schedule(bank, at.max(self.now), EventKind::LoadAtLsq { seq, slice: bank });
            }
        }
    }

    fn load_at_lsq(&mut self, seq: u64, slice: usize) {
        if self.lsq[slice].blocked(seq) {
            self.lsq[slice].park(seq);
        } else {
            self.proceed_load(seq, slice);
        }
    }

    pub(super) fn proceed_load(&mut self, seq: u64, slice: usize) {
        let Some(idx) = self.rob_index(seq) else {
            debug_assert!(false, "proceeding load {seq} not in the ROB");
            return;
        };
        let Some(mem_access) = self.rob[idx].d.mem else {
            debug_assert!(false, "load {seq} without an address at the LSQ");
            return;
        };
        let (bank, bank_cluster, cluster) = (
            self.rob[idx].bank as usize,
            self.rob[idx].bank_cluster as usize,
            self.rob[idx].cluster as usize,
        );
        let word = mem_access.addr >> 3;
        let data_at_bank = match self.lsq[slice].forward_source(word, seq) {
            Some((store_seq, avail)) => {
                if avail == ABSENT {
                    // The matching store's data is still being computed;
                    // retry when it writes back.
                    self.loads_waiting_data.push((store_seq, seq, slice));
                    return;
                }
                self.stats.lsq_forwards += 1;
                avail.max(self.now) + 1
            }
            None => {
                let ready = self.mem.access(
                    &mut self.net,
                    bank,
                    bank_cluster,
                    mem_access.addr,
                    false,
                    self.now,
                    &mut self.stats,
                );
                self.observer.on_cache_access(self.now, bank, false, ready);
                ready
            }
        };
        // Data returns to the consuming cluster: from cluster 0 for the
        // centralized cache, from the bank's cluster otherwise.
        let home = self.forward_slice(bank_cluster);
        let back = self.routed_cache_transfer(home, cluster, data_at_bank);
        self.schedule(cluster, back.max(self.now + 1), EventKind::WriteBack { seq });
    }

    fn store_resolved(&mut self, seq: u64, slice: usize, word: u64, own: bool, forward_here: bool) {
        if forward_here {
            // Only record forwarding state for stores still in flight —
            // this is the one event that legitimately outlives its ROB
            // entry; committed stores have already written the cache.
            // If the store's data is still outstanding, record a
            // placeholder that its writeback fills in.
            if let Some(idx) = self.rob_index(seq) {
                let avail = if self.rob[idx].done {
                    // The data may have been produced after the address
                    // broadcast departed; it still needs its own trip.
                    let extra = self.net.latency(self.rob[idx].cluster as usize, slice);
                    self.now.max(self.rob[idx].done_at + extra)
                } else {
                    ABSENT
                };
                self.lsq[slice].record_store_data(word, seq, avail);
            }
        }
        if !own {
            // Dummy slot released on broadcast arrival.
            self.lsq[slice].release();
        }
        let freed = self.lsq[slice].resolve_store(seq);
        for load in freed {
            self.proceed_load(load, slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::domain::ClusterDomain;
    use super::{EventCoordinator, EventKind};

    fn wb(seq: u64) -> EventKind {
        EventKind::WriteBack { seq }
    }

    fn harness(n: usize) -> (EventCoordinator, Vec<ClusterDomain>) {
        let params = crate::config::SimConfig::default().clusters;
        let domains = (0..n).map(|_| ClusterDomain::new(&params, 8)).collect();
        (EventCoordinator::new(n), domains)
    }

    /// The sharded queue must pop in exactly the `(time, tick)` order
    /// of one global heap, regardless of which shard events sit in.
    #[test]
    fn pop_order_is_global_time_then_tick() {
        let (mut s, mut d) = harness(4);
        s.push(&mut d, 3, 10, wb(1)); // tick 1
        s.push(&mut d, 0, 10, wb(2)); // tick 2: same time, later tick → after
        s.push(&mut d, 2, 5, wb(3)); // tick 3: earlier time → first
        s.push(&mut d, 1, 10, wb(4)); // tick 4
        let mut order = Vec::new();
        while let Some((_, kind)) = s.pop_due(&mut d, u64::MAX) {
            order.push(kind);
        }
        assert_eq!(order, vec![wb(3), wb(1), wb(2), wb(4)]);
    }

    #[test]
    fn pop_due_respects_now_and_refreshes_frontier() {
        let (mut s, mut d) = harness(2);
        s.push(&mut d, 0, 7, wb(1));
        s.push(&mut d, 1, 3, wb(2));
        assert_eq!(s.pop_due(&mut d, 2), None, "nothing due before cycle 3");
        assert_eq!(s.next_due, 3, "scan refreshed the frontier exactly");
        assert_eq!(s.pop_due(&mut d, 3), Some((1, wb(2))));
        assert_eq!(s.pop_due(&mut d, 3), None);
        assert_eq!(s.next_due, 7);
        assert_eq!(s.pop_due(&mut d, 7), Some((0, wb(1))));
        assert_eq!(s.pop_due(&mut d, u64::MAX), None);
        assert_eq!(s.tree.min().0, u64::MAX, "drained shards leave the frontier");
        assert_eq!(s.next_due, u64::MAX);
    }

    /// Events pushed while draining (handler chains within one cycle)
    /// are seen by the same drain, as with the former single heap.
    #[test]
    fn same_cycle_chains_are_visible() {
        let (mut s, mut d) = harness(2);
        s.push(&mut d, 0, 4, wb(1));
        assert_eq!(s.pop_due(&mut d, 4), Some((0, wb(1))));
        s.push(&mut d, 1, 4, wb(2)); // a handler scheduling for the same cycle
        assert_eq!(s.pop_due(&mut d, 4), Some((1, wb(2))));
        assert_eq!(s.pop_due(&mut d, 4), None);
    }

    /// The calendar ring wraps: once the floor has advanced, a bucket
    /// index smaller than the floor's can hold a *later* time, and time
    /// order must still win over ring order.
    #[test]
    fn calendar_ring_wrap_keeps_time_order() {
        let w = super::CAL_WINDOW as u64;
        let (mut s, mut d) = harness(1);
        s.push(&mut d, 0, w - 100, wb(1));
        assert_eq!(s.pop_due(&mut d, w - 100), Some((0, wb(1))));
        assert_eq!(s.pop_due(&mut d, w - 100), None); // floor advances past w - 100
        s.push(&mut d, 0, w - 1, wb(2)); // last bucket of the ring
        s.push(&mut d, 0, w + 300, wb(3)); // wraps to a bucket before the floor's
        assert_eq!(s.pop_due(&mut d, w + 300), Some((0, wb(2))));
        assert_eq!(s.pop_due(&mut d, w + 300), Some((0, wb(3))));
        assert_eq!(s.pop_due(&mut d, w + 300), None);
    }

    /// Events beyond the calendar window park in the overflow heap and
    /// still fire at their exact cycle once the window reaches them.
    #[test]
    fn far_future_events_overflow_and_return() {
        let far = 2 * super::CAL_WINDOW as u64 + 100;
        let (mut s, mut d) = harness(2);
        s.push(&mut d, 1, far, wb(1)); // beyond the window: parked
        s.push(&mut d, 0, 10, wb(2));
        assert_eq!(s.pop_due(&mut d, 10), Some((0, wb(2))));
        assert_eq!(s.pop_due(&mut d, far - 1), None);
        assert_eq!(s.next_due, far, "overflow head drives the frontier");
        assert_eq!(s.pop_due(&mut d, far), Some((1, wb(1))), "returns with the shard it waited in");
        assert_eq!(s.pop_due(&mut d, u64::MAX), None);
        assert_eq!(s.tree.min().0, u64::MAX);
    }

    /// A push migrates older same-cycle overflow events first, so
    /// bucket append order stays tick order.
    #[test]
    fn overflow_migration_preserves_tick_order() {
        let far = 2 * super::CAL_WINDOW as u64;
        let (mut s, mut d) = harness(1);
        s.push(&mut d, 0, far, wb(1)); // tick 1: parked in overflow
        s.push(&mut d, 0, 5, wb(2));
        assert_eq!(s.pop_due(&mut d, 5), Some((0, wb(2)))); // floor: 5
        s.push(&mut d, 0, far - 5, wb(3)); // advances nothing: different bucket
        assert_eq!(s.pop_due(&mut d, far - 5), Some((0, wb(3)))); // floor: far - 5
        s.push(&mut d, 0, far, wb(4)); // tick 4, same cycle: wb(1) must migrate first
        assert_eq!(s.pop_due(&mut d, far), Some((0, wb(1))));
        assert_eq!(s.pop_due(&mut d, far), Some((0, wb(4))));
        assert_eq!(s.pop_due(&mut d, far), None);
    }

    /// `health()` reports calendar occupancy, overflow depth, and the
    /// floor watermark — the profiler's queue-health sample.
    #[test]
    fn health_snapshot_tracks_calendars_overflow_and_floor() {
        let (mut s, mut d) = harness(2);
        assert_eq!(s.health(&d), (0, 0, 0));
        s.push(&mut d, 0, 5, wb(1));
        s.push(&mut d, 1, 9, wb(2));
        s.push(&mut d, 1, 2 * super::CAL_WINDOW as u64, wb(3)); // parked
        assert_eq!(s.health(&d), (2, 1, 0));
        assert_eq!(s.pop_due(&mut d, 5), Some((0, wb(1))));
        assert_eq!(s.pop_due(&mut d, 5), None); // floor rises past `now`
        let (calendar, overflow, floor) = s.health(&d);
        assert_eq!((calendar, overflow), (1, 1));
        assert!(floor > 5, "floor advances with the drain");
    }

    /// Drains `s` at `now` with the round-based batch machinery,
    /// returning delivered `(shard, kind)` in execution order —
    /// the test-local mirror of `drain_events_batched`.
    fn drain_batched(
        s: &mut EventCoordinator,
        d: &mut [ClusterDomain],
        now: u64,
    ) -> Vec<(usize, EventKind)> {
        let mut order = Vec::new();
        if s.next_due > now {
            return order;
        }
        loop {
            let due = s.begin_round(d, now);
            if due == 0 {
                break;
            }
            let floor = s.floor;
            let mut m = due;
            while m != 0 {
                let c = m.trailing_zeros() as usize;
                m &= m - 1;
                d[c].gather_due(now, floor);
            }
            s.finish_round(d, due);
            let mut merged = Vec::new();
            let mut m = due;
            while m != 0 {
                let c = m.trailing_zeros() as usize;
                m &= m - 1;
                for (t, k, kind) in d[c].gathered.drain(..) {
                    merged.push((t, k, c, kind));
                }
            }
            merged.sort_unstable_by_key(|&(t, k, ..)| (t, k));
            order.extend(merged.into_iter().map(|(_, _, c, kind)| (c, kind)));
        }
        order
    }

    /// The batch drain must deliver exactly `pop_due`'s sequence —
    /// same events, same order, same frontier/floor/conservation
    /// bookkeeping — over a pseudo-random schedule with same-cycle
    /// ties, cross-shard spread, and far-future overflow parking.
    #[test]
    fn batched_rounds_match_pop_due_order() {
        let shards = 4;
        let (mut a, mut da) = harness(shards);
        let (mut b, mut db) = harness(shards);
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut seq = 0u64;
        for now in 1..600u64 {
            for _ in 0..next() % 4 {
                let shard = (next() % shards as u64) as usize;
                let dt = match next() % 8 {
                    0 => 0,
                    1..=5 => next() % 16,
                    _ => next() % (3 * super::CAL_WINDOW as u64),
                };
                seq += 1;
                a.push(&mut da, shard, now + dt, wb(seq));
                b.push(&mut db, shard, now + dt, wb(seq));
            }
            let mut order_a = Vec::new();
            while let Some(ev) = a.pop_due(&mut da, now) {
                order_a.push(ev);
            }
            let order_b = drain_batched(&mut b, &mut db, now);
            assert_eq!(order_a, order_b, "delivery diverged at cycle {now}");
            assert_eq!(
                (a.next_due, a.floor, a.popped, a.pushed),
                (b.next_due, b.floor, b.popped, b.pushed),
                "bookkeeping diverged at cycle {now}"
            );
        }
        assert!(a.popped > 100, "the schedule actually exercised the drain");
    }

    /// A due-but-window-blocked overflow event must release in a later
    /// round, after every calendar event — matching `pop_due`'s
    /// floor-raise-and-retry, not jumping ahead of the calendar.
    #[test]
    fn batched_drain_releases_blocked_overflow_after_calendar() {
        let w = super::CAL_WINDOW as u64;
        let (mut s, mut d) = harness(2);
        s.push(&mut d, 0, 5, wb(1));
        assert_eq!(drain_batched(&mut s, &mut d, 5), vec![(0, wb(1))]);
        // floor is now 6; park an event past the window, plus a
        // calendar event between.
        let far = 6 + w + 10;
        s.push(&mut d, 1, far, wb(2)); // overflow (far - 6 >= window)
        s.push(&mut d, 0, 20, wb(3)); // calendar
        let order = drain_batched(&mut s, &mut d, far);
        assert_eq!(order, vec![(0, wb(3)), (1, wb(2))]);
        assert_eq!(s.pop_due(&mut d, u64::MAX), None);
    }
}
