//! Combined branch predictor (bimodal + two-level), BTB, and return
//! address stack, per Table 1 of the paper.
//!
//! The simulator is trace-driven, so the predictor is consulted and
//! trained at fetch with the architectural outcome — wrong-path
//! pollution of predictor state is not modelled (a standard
//! trace-driven simplification, noted in `DESIGN.md`).

use crate::config::BpredParams;
use clustered_emu::{BranchKind, BranchOutcome};

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, Default)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The branch target buffer: `sets × ways`, true-LRU within a set.
#[derive(Debug, Clone)]
struct Btb {
    sets: usize,
    ways: usize,
    /// (tag, target, lru-stamp) per way; `u32::MAX` tag = invalid.
    entries: Vec<(u32, u32, u64)>,
    stamp: u64,
}

impl Btb {
    fn new(sets: usize, ways: usize) -> Btb {
        Btb { sets, ways, entries: vec![(u32::MAX, 0, 0); sets * ways], stamp: 0 }
    }

    fn lookup(&mut self, pc: u32) -> Option<u32> {
        let set = (pc as usize % self.sets) * self.ways;
        self.stamp += 1;
        for i in set..set + self.ways {
            if self.entries[i].0 == pc {
                self.entries[i].2 = self.stamp;
                return Some(self.entries[i].1);
            }
        }
        None
    }

    fn insert(&mut self, pc: u32, target: u32) {
        let set = (pc as usize % self.sets) * self.ways;
        self.stamp += 1;
        // Hit: update target in place.
        for i in set..set + self.ways {
            if self.entries[i].0 == pc {
                self.entries[i] = (pc, target, self.stamp);
                return;
            }
        }
        // Miss: replace the LRU way.
        let victim = (set..set + self.ways)
            .min_by_key(|&i| self.entries[i].2)
            .expect("ways >= 1");
        self.entries[victim] = (pc, target, self.stamp);
    }
}

/// What the front end decided about one fetched control transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether direction and target were both predicted correctly.
    pub correct: bool,
    /// Whether the transfer was predicted taken (for fetch grouping).
    pub predicted_taken: bool,
}

/// Combined bimodal + two-level predictor with BTB and RAS.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    bimodal: Vec<Counter2>,
    history: Vec<u16>,
    history_mask: u16,
    history_bits: usize,
    pattern: Vec<Counter2>,
    meta: Vec<Counter2>,
    btb: Btb,
    ras: Vec<u32>,
    ras_depth: usize,
}

impl BranchPredictor {
    /// Builds a predictor with the given geometry.
    pub fn new(params: &BpredParams) -> BranchPredictor {
        BranchPredictor {
            bimodal: vec![Counter2::default(); params.bimodal_size],
            history: vec![0; params.l1_size],
            history_mask: ((1u32 << params.history_bits) - 1) as u16,
            history_bits: params.history_bits,
            pattern: vec![Counter2::default(); params.l2_size],
            meta: vec![Counter2::default(); params.meta_size],
            btb: Btb::new(params.btb_sets, params.btb_ways),
            ras: Vec::new(),
            ras_depth: params.ras_depth,
        }
    }

    fn push_return(&mut self, addr: u32) {
        if self.ras.len() == self.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(addr);
    }

    fn pattern_index(&self, pc: u32) -> usize {
        let hist = self.history[pc as usize % self.history.len()] as usize;
        (hist | ((pc as usize) << self.history_bits)) % self.pattern.len()
    }

    /// Consults and trains the predictor for the control transfer at
    /// `pc` with architectural `outcome`; `fall_through` is `pc + 1`.
    ///
    /// Returns whether the front end would have continued on the
    /// correct path.
    pub fn predict_and_update(&mut self, pc: u32, outcome: &BranchOutcome) -> Prediction {
        match outcome.kind {
            BranchKind::Conditional => self.conditional(pc, outcome),
            BranchKind::Jump => {
                // Direct target, available at decode: never a redirect.
                self.btb.insert(pc, outcome.next_pc);
                Prediction { correct: true, predicted_taken: true }
            }
            BranchKind::Indirect => {
                let predicted = self.btb.lookup(pc);
                self.btb.insert(pc, outcome.next_pc);
                Prediction {
                    correct: predicted == Some(outcome.next_pc),
                    predicted_taken: true,
                }
            }
            BranchKind::Call => {
                // Direct call: the target is decode-available, so the
                // front end never redirects; still push the return
                // address and warm the BTB.
                self.push_return(pc + 1);
                self.btb.insert(pc, outcome.next_pc);
                Prediction { correct: true, predicted_taken: true }
            }
            BranchKind::IndirectCall => {
                // Indirect call: the target must come from the BTB.
                self.push_return(pc + 1);
                let predicted = self.btb.lookup(pc);
                self.btb.insert(pc, outcome.next_pc);
                Prediction {
                    correct: predicted == Some(outcome.next_pc),
                    predicted_taken: true,
                }
            }
            BranchKind::Return => {
                let predicted = self.ras.pop();
                Prediction {
                    correct: predicted == Some(outcome.next_pc),
                    predicted_taken: true,
                }
            }
        }
    }

    fn conditional(&mut self, pc: u32, outcome: &BranchOutcome) -> Prediction {
        let bi = pc as usize % self.bimodal.len();
        let pi = self.pattern_index(pc);
        let mi = pc as usize % self.meta.len();

        let bimodal_pred = self.bimodal[bi].taken();
        let two_level_pred = self.pattern[pi].taken();
        let use_two_level = self.meta[mi].taken();
        let dir = if use_two_level { two_level_pred } else { bimodal_pred };

        let taken = outcome.taken;
        // Train direction tables.
        self.bimodal[bi].update(taken);
        self.pattern[pi].update(taken);
        if bimodal_pred != two_level_pred {
            self.meta[mi].update(two_level_pred == taken);
        }
        let hi = pc as usize % self.history.len();
        self.history[hi] = ((self.history[hi] << 1) | u16::from(taken)) & self.history_mask;

        // Target check: a correctly-predicted-taken branch still needs
        // the BTB to supply the target at fetch.
        let correct = if dir == taken {
            if taken {
                let hit = self.btb.lookup(pc) == Some(outcome.next_pc);
                self.btb.insert(pc, outcome.next_pc);
                hit
            } else {
                true
            }
        } else {
            if taken {
                self.btb.insert(pc, outcome.next_pc);
            }
            false
        };
        Prediction { correct, predicted_taken: dir }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustered_emu::{BranchKind, BranchOutcome};

    fn outcome(kind: BranchKind, taken: bool, next_pc: u32) -> BranchOutcome {
        BranchOutcome { kind, taken, next_pc }
    }

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(&BpredParams::default())
    }

    #[test]
    fn learns_always_taken_loop() {
        let mut p = predictor();
        let o = outcome(BranchKind::Conditional, true, 5);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(10, &o).correct {
                wrong += 1;
            }
        }
        assert!(wrong <= 3, "too many mispredictions on a loop branch: {wrong}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = predictor();
        let mut wrong = 0;
        for i in 0..200u32 {
            let taken = i % 2 == 0;
            let o = outcome(BranchKind::Conditional, taken, if taken { 5 } else { 11 });
            if !p.predict_and_update(10, &o).correct {
                wrong += 1;
            }
        }
        // Bimodal alone would be ~50% wrong; the 2-level side learns it.
        assert!(wrong < 40, "alternating pattern not learned: {wrong}/200 wrong");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut p = predictor();
        let mut x: u64 = 0x12345678;
        let mut wrong = 0;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (x >> 40) & 1 == 1;
            let o = outcome(BranchKind::Conditional, taken, if taken { 5 } else { 11 });
            if !p.predict_and_update(10, &o).correct {
                wrong += 1;
            }
        }
        assert!(wrong > 250, "random branches should mispredict a lot: {wrong}/1000");
    }

    #[test]
    fn direct_jumps_never_redirect() {
        let mut p = predictor();
        let o = outcome(BranchKind::Jump, true, 42);
        assert!(p.predict_and_update(7, &o).correct);
    }

    #[test]
    fn indirect_jump_learns_target() {
        let mut p = predictor();
        let o = outcome(BranchKind::Indirect, true, 42);
        assert!(!p.predict_and_update(7, &o).correct, "cold BTB should miss");
        assert!(p.predict_and_update(7, &o).correct, "warm BTB should hit");
        let o2 = outcome(BranchKind::Indirect, true, 43);
        assert!(!p.predict_and_update(7, &o2).correct, "changed target should miss");
    }

    #[test]
    fn indirect_calls_require_btb_hits() {
        let mut p = predictor();
        let o = outcome(BranchKind::IndirectCall, true, 42);
        assert!(!p.predict_and_update(7, &o).correct, "cold BTB must redirect");
        assert!(p.predict_and_update(7, &o).correct, "warm BTB hits");
        // Direct calls never redirect, even cold.
        let direct = outcome(BranchKind::Call, true, 99);
        assert!(p.predict_and_update(8, &direct).correct);
        // Both kinds feed the RAS.
        assert!(p.predict_and_update(100, &outcome(BranchKind::Return, true, 9)).correct);
        assert!(p.predict_and_update(43, &outcome(BranchKind::Return, true, 8)).correct);
    }

    #[test]
    fn ras_predicts_matched_returns() {
        let mut p = predictor();
        p.predict_and_update(10, &outcome(BranchKind::Call, true, 100));
        p.predict_and_update(110, &outcome(BranchKind::Call, true, 200));
        assert!(p.predict_and_update(205, &outcome(BranchKind::Return, true, 111)).correct);
        assert!(p.predict_and_update(105, &outcome(BranchKind::Return, true, 11)).correct);
        // Underflowed RAS mispredicts.
        assert!(!p.predict_and_update(50, &outcome(BranchKind::Return, true, 1)).correct);
    }

    #[test]
    fn ras_depth_bounded() {
        let mut p = BranchPredictor::new(&BpredParams { ras_depth: 2, ..BpredParams::default() });
        for i in 0..5u32 {
            p.predict_and_update(i * 10, &outcome(BranchKind::Call, true, 100 + i));
        }
        assert!(p.ras.len() <= 2);
    }

    #[test]
    fn btb_lru_within_set() {
        let mut btb = Btb::new(1, 2);
        btb.insert(1, 11);
        btb.insert(2, 22);
        assert_eq!(btb.lookup(1), Some(11)); // touch 1: now 2 is LRU
        btb.insert(3, 33); // evicts 2
        assert_eq!(btb.lookup(2), None);
        assert_eq!(btb.lookup(1), Some(11));
        assert_eq!(btb.lookup(3), Some(33));
    }
}
