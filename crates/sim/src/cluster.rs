//! Per-cluster execution state: issue queues, register free lists, and
//! functional units.
//!
//! # Select/wakeup data model
//!
//! The scheduler used to keep one `BinaryHeap<Reverse<(ready_at,
//! seq)>>` of pending instructions plus one `BTreeSet<u64>` of ready
//! seqs per FU group — every enqueue a heap sift, every wakeup a
//! B-tree insert, every issue a B-tree pop, all pointer-chasing on the
//! hottest per-cycle path. It is now flat and allocation-free in
//! steady state:
//!
//! - **Pending ring** — a small per-cluster calendar (the event-shard
//!   trick from `pipeline/events.rs`, scoped to operand ready times):
//!   [`RING_WINDOW`] buckets indexed by `ready_at % RING_WINDOW`, an
//!   occupancy bitmap to skip empty buckets, and entries packed as
//!   `(seq << 2) | group`. Enqueue is a `Vec` push; wakeup drains the
//!   due buckets with a few bit operations. Ready times past the
//!   window park in a `far` vector (they need a memory-scale wait and
//!   are rare; correctness does not depend on the window size).
//! - **Ready vecs** — one sorted `Vec<u64>` per group, descending by
//!   seq, so "oldest ready first" is a pop from the back and insertion
//!   is a binary search plus a short memmove (issue queues hold at
//!   most ~15 entries per domain).
//!
//! The issue order this computes is identical to the old structures':
//! at `select(now)` every instruction with `ready_at <= now` is
//! visible (bucket drain order inside one call cannot matter — the
//! ready vec re-sorts by seq), groups are scanned in fixed order, and
//! each free unit takes the smallest ready seq. The 360-point shard
//! oracle and the randomized model test in
//! `tests/cluster_select_props.rs` pin that equivalence.

use crate::config::{ClusterParams, ExecLatencies};
use clustered_isa::OpClass;

/// Register-file / issue-queue domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Integer side (also loads, stores, and control).
    Int,
    /// Floating-point side.
    Fp,
}

impl Domain {
    /// Dense index for per-domain arrays.
    pub fn index(self) -> usize {
        match self {
            Domain::Int => 0,
            Domain::Fp => 1,
        }
    }

    /// The domain an instruction class dispatches into.
    pub fn of(class: OpClass) -> Domain {
        match class {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Load | OpClass::Store => {
                Domain::Int
            }
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => Domain::Fp,
        }
    }
}

/// Functional-unit group within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuGroup {
    /// Integer ALU: ALU ops, address generation, branch resolution.
    IntAlu,
    /// Integer multiply/divide.
    IntMulDiv,
    /// FP adder: add/sub/compare/convert/min/max.
    FpAlu,
    /// FP multiply/divide.
    FpMulDiv,
}

/// Number of FU groups.
pub const FU_GROUPS: usize = 4;

/// Dense index → group (inverse of [`FuGroup::index`]).
const GROUPS: [FuGroup; FU_GROUPS] =
    [FuGroup::IntAlu, FuGroup::IntMulDiv, FuGroup::FpAlu, FuGroup::FpMulDiv];

impl FuGroup {
    /// Dense index for per-group arrays.
    pub fn index(self) -> usize {
        match self {
            FuGroup::IntAlu => 0,
            FuGroup::IntMulDiv => 1,
            FuGroup::FpAlu => 2,
            FuGroup::FpMulDiv => 3,
        }
    }

    /// The group an instruction class executes on.
    pub fn of(class: OpClass) -> FuGroup {
        match class {
            OpClass::IntAlu | OpClass::Load | OpClass::Store => FuGroup::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuGroup::IntMulDiv,
            OpClass::FpAlu => FuGroup::FpAlu,
            OpClass::FpMul | OpClass::FpDiv => FuGroup::FpMulDiv,
        }
    }
}

/// Execution latency and pipelining of an instruction class.
///
/// Loads and stores report their address-generation latency; the
/// memory system adds the rest.
pub fn latency_of(lat: &ExecLatencies, class: OpClass) -> (u64, bool) {
    match class {
        OpClass::IntAlu | OpClass::Load | OpClass::Store => (lat.int_alu, true),
        OpClass::IntMul => (lat.int_mul, true),
        OpClass::IntDiv => (lat.int_div, false),
        OpClass::FpAlu => (lat.fp_alu, true),
        OpClass::FpMul => (lat.fp_mul, true),
        OpClass::FpDiv => (lat.fp_div, false),
    }
}

/// Pending-ring width in cycles; a power of two. Operand arrivals are
/// bounded by interconnect transfers and L1 hits almost always, so the
/// common case lands in the ring; later times fall back to `far`.
const RING_WINDOW: usize = 256;
const RING_MASK: usize = RING_WINDOW - 1;
const RING_WORDS: usize = RING_WINDOW / 64;

/// One cluster's scheduling state.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Issue-queue capacity per domain. (Occupancy and free-register
    /// counts live in the per-cluster `ClusterDomain` beside this
    /// scheduler — the domain owns all of one cluster's mutable state
    /// so the intra-run pool can hand whole domains to workers; the
    /// dispatch stage gathers its dense steering snapshot from the
    /// domains per instruction.)
    pub iq_cap: [usize; 2],
    /// Busy-until cycle per functional unit, grouped.
    fu_busy: [Vec<u64>; FU_GROUPS],
    /// Ready-to-issue seqs per group, sorted descending (oldest last,
    /// so issue pops from the back).
    ready: [Vec<u64>; FU_GROUPS],
    /// Pending ring: bucket `t & RING_MASK` holds the instructions
    /// becoming ready at cycle `t`, packed as `(seq << 2) | group`.
    /// Valid for times in `[floor, floor + RING_WINDOW)`.
    ring: Vec<Vec<u64>>,
    /// Bit `i % 64` of `occ[i / 64]` ⇔ `ring[i]` is non-empty.
    occ: [u64; RING_WORDS],
    /// All ring buckets for times `< floor` have been drained.
    floor: u64,
    /// Pending entries whose ready time is at or past
    /// `floor + RING_WINDOW`: `(ready_at, packed)`.
    far: Vec<(u64, u64)>,
    /// Smallest ready time in `far` (`u64::MAX` when empty).
    far_min: u64,
    /// Instructions pending + ready across all groups; lets the issue
    /// stage skip quiescent clusters in O(1).
    queued: usize,
    /// Instructions in the ready vecs (all groups).
    ready_total: usize,
    /// Lower bound on the earliest pending ready time in the ring or
    /// `far` (`u64::MAX` when nothing is pending). Together with
    /// `ready_total` it gives [`Cluster::select`] an O(1) "nothing can
    /// issue this cycle" exit for clusters that are merely *waiting* —
    /// which, across a wide machine, is most of them on most cycles.
    next_due: u64,
}

impl Cluster {
    /// Builds a cluster's scheduling state.
    pub fn new(params: &ClusterParams) -> Cluster {
        Cluster {
            iq_cap: [params.int_iq, params.fp_iq],
            fu_busy: [
                vec![0; params.int_alu],
                vec![0; params.int_muldiv],
                vec![0; params.fp_alu],
                vec![0; params.fp_muldiv],
            ],
            ready: Default::default(),
            ring: vec![Vec::new(); RING_WINDOW],
            occ: [0; RING_WORDS],
            floor: 0,
            far: Vec::new(),
            far_min: u64::MAX,
            queued: 0,
            ready_total: 0,
            next_due: u64::MAX,
        }
    }

    /// Queues a dispatched instruction for issue once `ready_at`.
    #[inline]
    pub fn enqueue(&mut self, group: FuGroup, ready_at: u64, seq: u64) {
        // A ready time in the already-drained past means "due at the
        // next select": park it in the first undrained bucket. (The
        // pipeline never schedules in the past — enqueues happen at or
        // after the operand's arrival cycle — but unit tests and the
        // property model may.)
        let t = ready_at.max(self.floor);
        let packed = (seq << 2) | group.index() as u64;
        if t - self.floor < RING_WINDOW as u64 {
            let idx = t as usize & RING_MASK;
            if self.ring[idx].is_empty() {
                self.occ[idx >> 6] |= 1 << (idx & 63);
            }
            self.ring[idx].push(packed);
        } else {
            self.far.push((t, packed));
            self.far_min = self.far_min.min(t);
        }
        self.next_due = self.next_due.min(t);
        self.queued += 1;
    }

    /// Sorted-descending insert, so the smallest seq stays at the back.
    #[inline]
    fn make_ready(ready: &mut [Vec<u64>; FU_GROUPS], packed: u64) {
        let r = &mut ready[(packed & 3) as usize];
        let seq = packed >> 2;
        let pos = r.partition_point(|&s| s > seq);
        r.insert(pos, seq);
    }

    /// Moves every instruction with `ready_at <= now` from the pending
    /// ring (and the far overflow) into the ready vecs.
    fn drain_due(&mut self, now: u64) {
        if self.floor <= now {
            // Walk the occupied buckets among the due ring positions —
            // at most the whole window — in ≤ 2 circular segments.
            let span = (now - self.floor + 1).min(RING_WINDOW as u64) as usize;
            let mut pos = self.floor as usize & RING_MASK;
            let mut remaining = span;
            while remaining > 0 {
                let word = pos >> 6;
                let lo = pos & 63;
                let run = (64 - lo).min(remaining);
                let lane = (!0u64 >> (64 - run)) << lo;
                let mut bits = self.occ[word] & lane;
                self.occ[word] &= !lane;
                while bits != 0 {
                    let idx = (word << 6) | bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    // Swap the bucket out to sidestep the simultaneous
                    // ring/ready borrow; its capacity swaps back.
                    let mut bucket = std::mem::take(&mut self.ring[idx]);
                    self.ready_total += bucket.len();
                    for &packed in &bucket {
                        Self::make_ready(&mut self.ready, packed);
                    }
                    bucket.clear();
                    self.ring[idx] = bucket;
                }
                pos = (pos + run) & RING_MASK;
                remaining -= run;
            }
            self.floor = now + 1;
        }
        if self.far_min <= now {
            let mut min = u64::MAX;
            let mut i = 0;
            while i < self.far.len() {
                let (t, packed) = self.far[i];
                if t <= now {
                    self.far.swap_remove(i);
                    self.ready_total += 1;
                    Self::make_ready(&mut self.ready, packed);
                } else {
                    min = min.min(t);
                    i += 1;
                }
            }
            self.far_min = min;
        }
        self.next_due = self.earliest_pending();
    }

    /// Earliest pending ready time across the ring and `far`
    /// (`u64::MAX` when nothing is pending). Every ring entry lies in
    /// `[floor, floor + RING_WINDOW)`, so the circularly first occupied
    /// bucket from the floor's position names the minimum.
    fn earliest_pending(&self) -> u64 {
        let base = self.floor as usize & RING_MASK;
        let w0 = base >> 6;
        let lo = base & 63;
        let mut ring_min = u64::MAX;
        for k in 0..=RING_WORDS {
            let w = (w0 + k) & (RING_WORDS - 1);
            let mut bits = self.occ[w];
            if k == 0 {
                bits &= !0u64 << lo;
            } else if k == RING_WORDS {
                // Wrapped back to the first word: only the part
                // circularly before `base` remains unseen.
                bits &= !(!0u64 << lo);
            }
            if bits != 0 {
                let idx = (w << 6) | bits.trailing_zeros() as usize;
                ring_min = self.floor + ((idx + RING_WINDOW - base) & RING_MASK) as u64;
                break;
            }
        }
        ring_min.min(self.far_min)
    }

    /// Moves instructions whose operands have arrived into the ready
    /// vecs, then returns up to one issuable instruction per free unit
    /// in each group, oldest first: `(seq, group, unit)`.
    #[inline]
    pub fn select(&mut self, now: u64, out: &mut Vec<(u64, FuGroup, usize)>) {
        // Nothing ready and nothing becoming ready by `now`: the drain
        // below would move nothing and the scan would select nothing,
        // so a waiting cluster costs two compares. (The floor advances
        // lazily; that is unobservable, because enqueued ready times
        // are never in the past and the `far` fallback accepts any
        // time.)
        if self.ready_total == 0 && self.next_due > now {
            return;
        }
        self.drain_due(now);
        for (gi, &group) in GROUPS.iter().enumerate() {
            if self.ready[gi].is_empty() {
                continue;
            }
            for unit in 0..self.fu_busy[gi].len() {
                if self.fu_busy[gi][unit] > now {
                    continue;
                }
                match self.ready[gi].pop() {
                    Some(seq) => {
                        self.queued -= 1;
                        self.ready_total -= 1;
                        out.push((seq, group, unit));
                    }
                    None => break,
                }
            }
        }
    }

    /// Marks `unit` of `group` busy until `until` (issue accepted).
    #[inline]
    pub fn occupy(&mut self, group: FuGroup, unit: usize, until: u64) {
        self.fu_busy[group.index()][unit] = until;
    }

    /// Instructions queued here (pending or ready, all groups).
    #[inline]
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Whether any instruction is still queued here (for drain checks).
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.queued,
            self.ready.iter().map(Vec::len).sum::<usize>()
                + self.ring.iter().map(Vec::len).sum::<usize>()
                + self.far.len(),
            "queued counter out of sync"
        );
        debug_assert_eq!(
            self.ready_total,
            self.ready.iter().map(Vec::len).sum::<usize>(),
            "ready counter out of sync"
        );
        self.queued == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(&ClusterParams::default())
    }

    #[test]
    fn domains_and_groups() {
        assert_eq!(Domain::of(OpClass::Load), Domain::Int);
        assert_eq!(Domain::of(OpClass::FpMul), Domain::Fp);
        assert_eq!(FuGroup::of(OpClass::Store), FuGroup::IntAlu);
        assert_eq!(FuGroup::of(OpClass::IntDiv), FuGroup::IntMulDiv);
        assert_eq!(FuGroup::of(OpClass::FpDiv), FuGroup::FpMulDiv);
    }

    #[test]
    fn latencies_match_config() {
        let lat = ExecLatencies::default();
        assert_eq!(latency_of(&lat, OpClass::IntAlu), (1, true));
        assert_eq!(latency_of(&lat, OpClass::IntDiv), (20, false));
        assert_eq!(latency_of(&lat, OpClass::FpMul), (4, true));
    }

    #[test]
    fn select_is_oldest_first_and_respects_readiness() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntAlu, 5, 100);
        c.enqueue(FuGroup::IntAlu, 5, 90);
        c.enqueue(FuGroup::IntAlu, 9, 80);
        let mut out = Vec::new();
        c.select(5, &mut out);
        assert_eq!(out, vec![(90, FuGroup::IntAlu, 0)], "oldest ready wins; 80 not ready yet");
        out.clear();
        c.select(9, &mut out);
        assert_eq!(out, vec![(80, FuGroup::IntAlu, 0)], "80 beats 100 once ready");
    }

    #[test]
    fn busy_unit_blocks_issue() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntMulDiv, 0, 1);
        let mut out = Vec::new();
        c.select(0, &mut out);
        assert_eq!(out.len(), 1);
        c.occupy(FuGroup::IntMulDiv, 0, 20); // unpipelined divide
        c.enqueue(FuGroup::IntMulDiv, 0, 2);
        out.clear();
        c.select(10, &mut out);
        assert!(out.is_empty(), "divider busy until 20");
        c.select(20, &mut out);
        assert_eq!(out, vec![(2, FuGroup::IntMulDiv, 0)]);
    }

    #[test]
    fn groups_issue_independently() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntAlu, 0, 1);
        c.enqueue(FuGroup::FpAlu, 0, 2);
        c.enqueue(FuGroup::FpMulDiv, 0, 3);
        let mut out = Vec::new();
        c.select(0, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn idle_tracking() {
        let mut c = cluster();
        assert!(c.is_idle());
        c.enqueue(FuGroup::IntAlu, 10, 1);
        assert!(!c.is_idle());
        let mut out = Vec::new();
        c.select(10, &mut out);
        assert!(c.is_idle());
    }

    /// Ready times past the ring window survive in the far overflow
    /// and still issue at exactly their cycle, including after the
    /// window itself has rotated several times.
    #[test]
    fn far_future_ready_times_issue_on_time() {
        let mut c = cluster();
        let far = 5 * RING_WINDOW as u64 + 17;
        c.enqueue(FuGroup::IntAlu, far, 7);
        c.enqueue(FuGroup::IntAlu, 1, 9);
        let mut out = Vec::new();
        c.select(1, &mut out);
        assert_eq!(out, vec![(9, FuGroup::IntAlu, 0)]);
        out.clear();
        c.select(far - 1, &mut out);
        assert!(out.is_empty(), "not ready one cycle early");
        c.select(far, &mut out);
        assert_eq!(out, vec![(7, FuGroup::IntAlu, 0)]);
        assert!(c.is_idle());
    }

    /// A select that jumps far ahead of the last one (quiescence
    /// skipping) still wakes everything enqueued in between.
    #[test]
    fn select_after_long_quiescence_drains_everything() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntAlu, 3, 1);
        let mut out = Vec::new();
        c.select(10_000, &mut out);
        assert_eq!(out, vec![(1, FuGroup::IntAlu, 0)]);
        c.enqueue(FuGroup::FpAlu, 10_001, 2);
        c.enqueue(FuGroup::FpAlu, 20_000, 3);
        out.clear();
        c.select(20_000, &mut out);
        assert_eq!(out, vec![(2, FuGroup::FpAlu, 0)], "far entry woke, older seq wins the unit");
        assert_eq!(c.queued(), 1, "seq 3 is ready but the FP adder went to seq 2");
    }
}
