//! Per-cluster execution state: issue queues, register free lists, and
//! functional units.

use crate::config::{ClusterParams, ExecLatencies};
use clustered_isa::OpClass;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Register-file / issue-queue domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Integer side (also loads, stores, and control).
    Int,
    /// Floating-point side.
    Fp,
}

impl Domain {
    /// Dense index for per-domain arrays.
    pub fn index(self) -> usize {
        match self {
            Domain::Int => 0,
            Domain::Fp => 1,
        }
    }

    /// The domain an instruction class dispatches into.
    pub fn of(class: OpClass) -> Domain {
        match class {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Load | OpClass::Store => {
                Domain::Int
            }
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => Domain::Fp,
        }
    }
}

/// Functional-unit group within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuGroup {
    /// Integer ALU: ALU ops, address generation, branch resolution.
    IntAlu,
    /// Integer multiply/divide.
    IntMulDiv,
    /// FP adder: add/sub/compare/convert/min/max.
    FpAlu,
    /// FP multiply/divide.
    FpMulDiv,
}

/// Number of FU groups.
pub const FU_GROUPS: usize = 4;

impl FuGroup {
    /// Dense index for per-group arrays.
    pub fn index(self) -> usize {
        match self {
            FuGroup::IntAlu => 0,
            FuGroup::IntMulDiv => 1,
            FuGroup::FpAlu => 2,
            FuGroup::FpMulDiv => 3,
        }
    }

    /// The group an instruction class executes on.
    pub fn of(class: OpClass) -> FuGroup {
        match class {
            OpClass::IntAlu | OpClass::Load | OpClass::Store => FuGroup::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuGroup::IntMulDiv,
            OpClass::FpAlu => FuGroup::FpAlu,
            OpClass::FpMul | OpClass::FpDiv => FuGroup::FpMulDiv,
        }
    }
}

/// Execution latency and pipelining of an instruction class.
///
/// Loads and stores report their address-generation latency; the
/// memory system adds the rest.
pub fn latency_of(lat: &ExecLatencies, class: OpClass) -> (u64, bool) {
    match class {
        OpClass::IntAlu | OpClass::Load | OpClass::Store => (lat.int_alu, true),
        OpClass::IntMul => (lat.int_mul, true),
        OpClass::IntDiv => (lat.int_div, false),
        OpClass::FpAlu => (lat.fp_alu, true),
        OpClass::FpMul => (lat.fp_mul, true),
        OpClass::FpDiv => (lat.fp_div, false),
    }
}

/// One cluster's scheduling state.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Issue-queue occupancy per domain.
    pub iq_used: [usize; 2],
    /// Issue-queue capacity per domain.
    pub iq_cap: [usize; 2],
    /// Free physical registers per domain.
    pub free_regs: [usize; 2],
    /// Busy-until cycle per functional unit, grouped.
    fu_busy: [Vec<u64>; FU_GROUPS],
    /// Dispatched-but-not-ready instructions: (ready_at, seq).
    pending: [BinaryHeap<Reverse<(u64, u64)>>; FU_GROUPS],
    /// Ready-to-issue instructions by age.
    ready: [BTreeSet<u64>; FU_GROUPS],
    /// Instructions in `pending` + `ready` across all groups; lets the
    /// issue stage skip quiescent clusters in O(1).
    queued: usize,
}

impl Cluster {
    /// Builds a cluster, with `reserved_int`/`reserved_fp` physical
    /// registers pre-allocated to architectural state homed here.
    pub fn new(params: &ClusterParams, reserved_int: usize, reserved_fp: usize) -> Cluster {
        assert!(
            reserved_int < params.int_regs && reserved_fp < params.fp_regs,
            "architectural state exceeds the cluster register file"
        );
        Cluster {
            iq_used: [0, 0],
            iq_cap: [params.int_iq, params.fp_iq],
            free_regs: [params.int_regs - reserved_int, params.fp_regs - reserved_fp],
            fu_busy: [
                vec![0; params.int_alu],
                vec![0; params.int_muldiv],
                vec![0; params.fp_alu],
                vec![0; params.fp_muldiv],
            ],
            pending: Default::default(),
            ready: Default::default(),
            queued: 0,
        }
    }

    /// Queues a dispatched instruction for issue once `ready_at`.
    #[inline]
    pub fn enqueue(&mut self, group: FuGroup, ready_at: u64, seq: u64) {
        self.pending[group.index()].push(Reverse((ready_at, seq)));
        self.queued += 1;
    }

    /// Moves instructions whose operands have arrived into the ready
    /// set, then returns up to one issuable instruction per free unit
    /// in each group, oldest first: `(seq, group, unit)`.
    #[inline]
    pub fn select(&mut self, now: u64, out: &mut Vec<(u64, FuGroup, usize)>) {
        for gi in 0..FU_GROUPS {
            while let Some(&Reverse((t, seq))) = self.pending[gi].peek() {
                if t > now {
                    break;
                }
                self.pending[gi].pop();
                self.ready[gi].insert(seq);
            }
            if self.ready[gi].is_empty() {
                continue;
            }
            let group = [FuGroup::IntAlu, FuGroup::IntMulDiv, FuGroup::FpAlu, FuGroup::FpMulDiv]
                [gi];
            for unit in 0..self.fu_busy[gi].len() {
                if self.fu_busy[gi][unit] > now {
                    continue;
                }
                match self.ready[gi].pop_first() {
                    Some(seq) => {
                        self.queued -= 1;
                        out.push((seq, group, unit));
                    }
                    None => break,
                }
            }
        }
    }

    /// Marks `unit` of `group` busy until `until` (issue accepted).
    #[inline]
    pub fn occupy(&mut self, group: FuGroup, unit: usize, until: u64) {
        self.fu_busy[group.index()][unit] = until;
    }

    /// Instructions queued here (pending or ready, all groups).
    #[inline]
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Whether any instruction is still queued here (for drain checks).
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.queued,
            self.pending.iter().map(BinaryHeap::len).sum::<usize>()
                + self.ready.iter().map(BTreeSet::len).sum::<usize>(),
            "queued counter out of sync"
        );
        self.queued == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(&ClusterParams::default(), 2, 2)
    }

    #[test]
    fn domains_and_groups() {
        assert_eq!(Domain::of(OpClass::Load), Domain::Int);
        assert_eq!(Domain::of(OpClass::FpMul), Domain::Fp);
        assert_eq!(FuGroup::of(OpClass::Store), FuGroup::IntAlu);
        assert_eq!(FuGroup::of(OpClass::IntDiv), FuGroup::IntMulDiv);
        assert_eq!(FuGroup::of(OpClass::FpDiv), FuGroup::FpMulDiv);
    }

    #[test]
    fn latencies_match_config() {
        let lat = ExecLatencies::default();
        assert_eq!(latency_of(&lat, OpClass::IntAlu), (1, true));
        assert_eq!(latency_of(&lat, OpClass::IntDiv), (20, false));
        assert_eq!(latency_of(&lat, OpClass::FpMul), (4, true));
    }

    #[test]
    fn reserved_registers_reduce_free_list() {
        let c = cluster();
        assert_eq!(c.free_regs, [28, 28]);
    }

    #[test]
    fn select_is_oldest_first_and_respects_readiness() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntAlu, 5, 100);
        c.enqueue(FuGroup::IntAlu, 5, 90);
        c.enqueue(FuGroup::IntAlu, 9, 80);
        let mut out = Vec::new();
        c.select(5, &mut out);
        assert_eq!(out, vec![(90, FuGroup::IntAlu, 0)], "oldest ready wins; 80 not ready yet");
        out.clear();
        c.select(9, &mut out);
        assert_eq!(out, vec![(80, FuGroup::IntAlu, 0)], "80 beats 100 once ready");
    }

    #[test]
    fn busy_unit_blocks_issue() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntMulDiv, 0, 1);
        let mut out = Vec::new();
        c.select(0, &mut out);
        assert_eq!(out.len(), 1);
        c.occupy(FuGroup::IntMulDiv, 0, 20); // unpipelined divide
        c.enqueue(FuGroup::IntMulDiv, 0, 2);
        out.clear();
        c.select(10, &mut out);
        assert!(out.is_empty(), "divider busy until 20");
        c.select(20, &mut out);
        assert_eq!(out, vec![(2, FuGroup::IntMulDiv, 0)]);
    }

    #[test]
    fn groups_issue_independently() {
        let mut c = cluster();
        c.enqueue(FuGroup::IntAlu, 0, 1);
        c.enqueue(FuGroup::FpAlu, 0, 2);
        c.enqueue(FuGroup::FpMulDiv, 0, 3);
        let mut out = Vec::new();
        c.select(0, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn idle_tracking() {
        let mut c = cluster();
        assert!(c.is_idle());
        c.enqueue(FuGroup::IntAlu, 10, 1);
        assert!(!c.is_idle());
        let mut out = Vec::new();
        c.select(10, &mut out);
        assert!(c.is_idle());
    }

    #[test]
    #[should_panic(expected = "architectural state")]
    fn rejects_excess_reserved() {
        let _ = Cluster::new(&ClusterParams::default(), 30, 0);
    }
}
