//! Observer hooks: a zero-cost-when-off instrumentation seam through
//! the cycle-level pipeline.
//!
//! The paper's contribution is *interval statistics driving run-time
//! decisions*; understanding (or debugging) a policy requires seeing
//! the per-cycle event stream those statistics summarize. A
//! [`SimObserver`] receives a callback at each interesting pipeline
//! event. The [`Processor`](crate::Processor) is generic over the
//! observer type and defaults to [`NullObserver`], whose empty inlined
//! methods monomorphize away — a processor without an observer
//! compiles to the same code as one built before this trait existed.
//!
//! [`MetricsObserver`] is the batteries-included implementation behind
//! `clustered trace`: histograms of ROB occupancy and transfer hops, a
//! per-interval IPC timeline, and the reconfiguration event log the
//! Chrome-trace exporter consumes.

use crate::decision::DecisionRecord;
use crate::reconfig::CommitEvent;
use clustered_stats::{Histogram, Json};

/// Default cap on the per-run reconfiguration and decision event logs
/// kept by [`MetricsObserver`] and [`DecisionTrace`].
///
/// Fine-grain policies can reconfigure at every branch, so unbounded
/// logs would grow with run length; past the cap the first
/// `DEFAULT_EVENT_CAP` events are kept and the rest only counted
/// (`dropped_reconfigs` / `dropped_decisions`).
pub const DEFAULT_EVENT_CAP: usize = 65_536;

/// What moved across the interconnect in an
/// [`on_transfer`](SimObserver::on_transfer) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// A register value travelling producer → consumer cluster.
    Register,
    /// Cache traffic: addresses/data to or from banks.
    Cache,
}

/// Hooks invoked by the [`Processor`](crate::Processor) as it
/// simulates. Every method has an empty default body, so an
/// implementation overrides only what it needs; with the default
/// [`NullObserver`] every call site optimizes to nothing.
///
/// Cycle arguments are the simulator's current cycle at the time of the
/// call; events scheduled for the future (e.g. a transfer's arrival)
/// report their *initiation* cycle.
pub trait SimObserver {
    /// Whether the simulator should drain policy decision telemetry
    /// for this observer.
    ///
    /// Assembling a [`DecisionRecord`] costs a heap allocation per
    /// interval, so the pipeline polls
    /// [`ReconfigPolicy::take_decision`](crate::ReconfigPolicy::take_decision)
    /// only when this is `true`. The default `false` (kept by
    /// [`NullObserver`]) lets the whole drain monomorphize away,
    /// preserving the bit-identical zero-cost property.
    const WANTS_DECISIONS: bool = false;

    /// Whether the simulator should run the *host-profiled* cycle loop
    /// for this observer.
    ///
    /// When `true` the pipeline reads a monotonic clock around each
    /// stage and delivers [`on_stage_nanos`](SimObserver::on_stage_nanos),
    /// [`on_queue_health`](SimObserver::on_queue_health) and
    /// [`on_event_drained`](SimObserver::on_event_drained) every cycle.
    /// The default `false` selects the unmodified loop, so profiling
    /// costs nothing unless an observer (like
    /// [`HostProfiler`](crate::HostProfiler)) opts in — and either way
    /// simulated behaviour is untouched: the hooks only *read* machine
    /// state.
    const WANTS_HOST_PROFILE: bool = false;

    /// Whether the simulator should assemble an end-of-cycle
    /// [`AuditCheck`](crate::AuditCheck) snapshot and deliver
    /// [`on_audit`](SimObserver::on_audit).
    ///
    /// The default `false` (kept by [`NullObserver`]) compiles the
    /// whole snapshot assembly away, preserving the bit-identical
    /// zero-cost contract. [`AuditObserver`](crate::AuditObserver)
    /// opts in; like the host-profile hooks, auditing only *reads*
    /// machine state and can never perturb the simulated schedule.
    const WANTS_AUDIT: bool = false;

    /// End of one simulated cycle.
    #[inline(always)]
    fn on_cycle(&mut self, cycle: u64, active_clusters: usize, rob_occupancy: usize) {
        let _ = (cycle, active_clusters, rob_occupancy);
    }

    /// An instruction left the fetch queue for `cluster`.
    #[inline(always)]
    fn on_dispatch(&mut self, cycle: u64, seq: u64, cluster: usize) {
        let _ = (cycle, seq, cluster);
    }

    /// An instruction began execution on a functional unit of
    /// `cluster`.
    #[inline(always)]
    fn on_issue(&mut self, cycle: u64, seq: u64, cluster: usize) {
        let _ = (cycle, seq, cluster);
    }

    /// An instruction retired (same event the
    /// [`ReconfigPolicy`](crate::ReconfigPolicy) sees).
    #[inline(always)]
    fn on_commit(&mut self, event: &CommitEvent) {
        let _ = event;
    }

    /// A value was routed `from → to` over `hops` interconnect hops.
    #[inline(always)]
    fn on_transfer(&mut self, cycle: u64, kind: TransferKind, from: usize, to: usize, hops: u64) {
        let _ = (cycle, kind, from, to, hops);
    }

    /// A load or store reached its cache bank; the data is ready at
    /// cycle `ready_at`.
    #[inline(always)]
    fn on_cache_access(&mut self, cycle: u64, bank: usize, write: bool, ready_at: u64) {
        let _ = (cycle, bank, write, ready_at);
    }

    /// The active-cluster count changed `from → to` clusters.
    #[inline(always)]
    fn on_reconfig(&mut self, cycle: u64, from: usize, to: usize) {
        let _ = (cycle, from, to);
    }

    /// A decentralized reconfiguration drained the pipeline and flushed
    /// the L1, stalling dispatch for `stall_cycles`.
    #[inline(always)]
    fn on_flush_stall(&mut self, cycle: u64, stall_cycles: u64, writebacks: u64) {
        let _ = (cycle, stall_cycles, writebacks);
    }

    /// The reconfiguration policy recorded a decision: why it chose
    /// the current configuration at the end of an evaluation interval.
    ///
    /// Only delivered when [`Self::WANTS_DECISIONS`] is `true`.
    #[inline(always)]
    fn on_decision(&mut self, decision: &DecisionRecord) {
        let _ = decision;
    }

    /// Wall-clock nanoseconds the host spent in each cycle-loop stage
    /// this cycle, in [`HostStage::ALL`](crate::HostStage::ALL) order.
    ///
    /// Only delivered when [`Self::WANTS_HOST_PROFILE`] is `true`.
    #[inline(always)]
    fn on_stage_nanos(&mut self, nanos: &[u64; crate::host::HOST_STAGE_COUNT]) {
        let _ = nanos;
    }

    /// End-of-cycle sample of calendar-queue and quiescence health.
    ///
    /// Only delivered when [`Self::WANTS_HOST_PROFILE`] is `true`.
    #[inline(always)]
    fn on_queue_health(&mut self, sample: &crate::host::QueueHealth) {
        let _ = sample;
    }

    /// One event was drained from calendar shard `shard`.
    ///
    /// Only delivered when [`Self::WANTS_HOST_PROFILE`] is `true`.
    #[inline(always)]
    fn on_event_drained(&mut self, shard: usize) {
        let _ = shard;
    }

    /// End-of-cycle machine-state snapshot for conservation-law
    /// auditing.
    ///
    /// Only delivered when [`Self::WANTS_AUDIT`] is `true`.
    #[inline(always)]
    fn on_audit(&mut self, check: &crate::audit::AuditCheck<'_>) {
        let _ = check;
    }
}

/// The default observer: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// One recorded active-cluster change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigEvent {
    /// Cycle the new configuration took effect.
    pub cycle: u64,
    /// Active clusters before.
    pub from: usize,
    /// Active clusters after.
    pub to: usize,
}

/// One recorded reconfiguration flush (decentralized cache model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushEvent {
    /// Cycle the flush began.
    pub cycle: u64,
    /// Cycles dispatch stalled.
    pub stall_cycles: u64,
    /// Dirty L1 lines written back.
    pub writebacks: u64,
}

/// One sample of the per-interval IPC timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcSample {
    /// Cycle at the end of the interval.
    pub cycle: u64,
    /// Instructions committed during the interval.
    pub committed: u64,
    /// Active clusters at the sample point.
    pub active_clusters: usize,
}

/// The standard metrics-collecting observer: histograms, a
/// reconfiguration log, and a coarse IPC timeline — everything the
/// JSON/Chrome-trace exporters need in one pass.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    interval_cycles: u64,
    /// ROB occupancy sampled every cycle.
    pub rob_occupancy: Histogram,
    /// Hop count of every inter-cluster register transfer.
    pub reg_transfer_hops: Histogram,
    /// Hop count of every inter-cluster cache transfer.
    pub cache_transfer_hops: Histogram,
    /// Latency (initiation → data ready) of every cache access.
    pub cache_latency: Histogram,
    /// Active-cluster changes in cycle order, capped at
    /// `reconfig_cap` (first events kept; see
    /// [`dropped_reconfigs`](MetricsObserver::dropped_reconfigs)).
    pub reconfigs: Vec<ReconfigEvent>,
    /// Every reconfiguration flush, in cycle order.
    pub flushes: Vec<FlushEvent>,
    /// Policy decision records in commit order, capped at
    /// `decision_cap` (first records kept).
    pub decisions: Vec<DecisionRecord>,
    /// IPC timeline, one sample per `interval_cycles`.
    pub timeline: Vec<IpcSample>,
    /// Active clusters before the first event (set on the first cycle).
    pub initial_clusters: usize,
    /// Last simulated cycle seen.
    pub last_cycle: u64,
    committed: u64,
    committed_at_sample: u64,
    instructions_dispatched: u64,
    instructions_issued: u64,
    reconfig_cap: usize,
    decision_cap: usize,
    dropped_reconfigs: u64,
    dropped_decisions: u64,
}

impl MetricsObserver {
    /// An observer sampling the IPC timeline every `interval_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn new(interval_cycles: u64) -> MetricsObserver {
        MetricsObserver::with_caps(interval_cycles, DEFAULT_EVENT_CAP, DEFAULT_EVENT_CAP)
    }

    /// Like [`MetricsObserver::new`] but with explicit caps on the
    /// reconfiguration and decision event logs. Events past a cap are
    /// counted, not stored.
    ///
    /// # Panics
    ///
    /// Panics if `interval_cycles` is zero.
    pub fn with_caps(
        interval_cycles: u64,
        reconfig_cap: usize,
        decision_cap: usize,
    ) -> MetricsObserver {
        assert!(interval_cycles > 0, "interval must be non-zero");
        MetricsObserver {
            interval_cycles,
            // 8-wide buckets cover a 512-entry ROB.
            rob_occupancy: Histogram::linear(8, 64),
            // The ring's worst one-way distance is 16 hops.
            reg_transfer_hops: Histogram::linear(1, 17),
            cache_transfer_hops: Histogram::linear(1, 17),
            cache_latency: Histogram::log2(),
            reconfigs: Vec::new(),
            flushes: Vec::new(),
            decisions: Vec::new(),
            timeline: Vec::new(),
            initial_clusters: 0,
            last_cycle: 0,
            committed: 0,
            committed_at_sample: 0,
            instructions_dispatched: 0,
            instructions_issued: 0,
            reconfig_cap,
            decision_cap,
            dropped_reconfigs: 0,
            dropped_decisions: 0,
        }
    }

    /// Reconfiguration events dropped after the log reached its cap.
    pub fn dropped_reconfigs(&self) -> u64 {
        self.dropped_reconfigs
    }

    /// Decision records dropped after the log reached its cap.
    pub fn dropped_decisions(&self) -> u64 {
        self.dropped_decisions
    }

    /// Instructions seen committing.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Instructions seen dispatching.
    pub fn dispatched(&self) -> u64 {
        self.instructions_dispatched
    }

    /// Instructions seen issuing.
    pub fn issued(&self) -> u64 {
        self.instructions_issued
    }

    /// The whole collection as one JSON document.
    pub fn to_json(&self) -> Json {
        let reconfigs: Vec<Json> = self
            .reconfigs
            .iter()
            .map(|r| {
                Json::object().set("cycle", r.cycle).set("from", r.from).set("to", r.to)
            })
            .collect();
        let flushes: Vec<Json> = self
            .flushes
            .iter()
            .map(|f| {
                Json::object()
                    .set("cycle", f.cycle)
                    .set("stall_cycles", f.stall_cycles)
                    .set("writebacks", f.writebacks)
            })
            .collect();
        let timeline: Vec<Json> = self
            .timeline
            .iter()
            .map(|s| {
                Json::object()
                    .set("cycle", s.cycle)
                    .set("committed", s.committed)
                    .set("ipc", s.committed as f64 / self.interval_cycles as f64)
                    .set("active_clusters", s.active_clusters)
            })
            .collect();
        let decisions: Vec<Json> = self.decisions.iter().map(|d| d.to_json()).collect();
        Json::object()
            .set("interval_cycles", self.interval_cycles)
            .set("last_cycle", self.last_cycle)
            .set("committed", self.committed)
            .set("dispatched", self.instructions_dispatched)
            .set("issued", self.instructions_issued)
            .set("initial_clusters", self.initial_clusters)
            .set("rob_occupancy", self.rob_occupancy.to_json())
            .set("reg_transfer_hops", self.reg_transfer_hops.to_json())
            .set("cache_transfer_hops", self.cache_transfer_hops.to_json())
            .set("cache_latency", self.cache_latency.to_json())
            .set("reconfigurations", Json::Arr(reconfigs))
            .set("dropped_reconfigs", self.dropped_reconfigs)
            .set("flushes", Json::Arr(flushes))
            .set("decisions", Json::Arr(decisions))
            .set("dropped_decisions", self.dropped_decisions)
            .set("timeline", Json::Arr(timeline))
    }
}

impl SimObserver for MetricsObserver {
    const WANTS_DECISIONS: bool = true;

    fn on_cycle(&mut self, cycle: u64, active_clusters: usize, rob_occupancy: usize) {
        if self.initial_clusters == 0 {
            self.initial_clusters = active_clusters;
        }
        self.last_cycle = cycle;
        self.rob_occupancy.record(rob_occupancy as u64);
        if cycle.is_multiple_of(self.interval_cycles) {
            self.timeline.push(IpcSample {
                cycle,
                committed: self.committed - self.committed_at_sample,
                active_clusters,
            });
            self.committed_at_sample = self.committed;
        }
    }

    fn on_dispatch(&mut self, _cycle: u64, _seq: u64, _cluster: usize) {
        self.instructions_dispatched += 1;
    }

    fn on_issue(&mut self, _cycle: u64, _seq: u64, _cluster: usize) {
        self.instructions_issued += 1;
    }

    fn on_commit(&mut self, _event: &CommitEvent) {
        self.committed += 1;
    }

    fn on_transfer(&mut self, _cycle: u64, kind: TransferKind, _from: usize, _to: usize, hops: u64) {
        match kind {
            TransferKind::Register => self.reg_transfer_hops.record(hops),
            TransferKind::Cache => self.cache_transfer_hops.record(hops),
        }
    }

    fn on_cache_access(&mut self, cycle: u64, _bank: usize, _write: bool, ready_at: u64) {
        self.cache_latency.record(ready_at.saturating_sub(cycle));
    }

    fn on_reconfig(&mut self, cycle: u64, from: usize, to: usize) {
        if self.reconfigs.len() < self.reconfig_cap {
            self.reconfigs.push(ReconfigEvent { cycle, from, to });
        } else {
            self.dropped_reconfigs += 1;
        }
    }

    fn on_flush_stall(&mut self, cycle: u64, stall_cycles: u64, writebacks: u64) {
        self.flushes.push(FlushEvent { cycle, stall_cycles, writebacks });
    }

    fn on_decision(&mut self, decision: &DecisionRecord) {
        if self.decisions.len() < self.decision_cap {
            self.decisions.push(decision.clone());
        } else {
            self.dropped_decisions += 1;
        }
    }
}

/// A lightweight observer collecting only policy decision records —
/// the backing store for `clustered explain` and the `--decisions`
/// dumps, where the full [`MetricsObserver`] histogram machinery is
/// unnecessary overhead.
#[derive(Debug, Clone)]
pub struct DecisionTrace {
    decisions: Vec<DecisionRecord>,
    cap: usize,
    dropped: u64,
}

impl Default for DecisionTrace {
    fn default() -> DecisionTrace {
        DecisionTrace::new()
    }
}

impl DecisionTrace {
    /// A trace keeping the first [`DEFAULT_EVENT_CAP`] records.
    pub fn new() -> DecisionTrace {
        DecisionTrace::with_cap(DEFAULT_EVENT_CAP)
    }

    /// A trace keeping the first `cap` records and counting the rest.
    pub fn with_cap(cap: usize) -> DecisionTrace {
        DecisionTrace { decisions: Vec::new(), cap, dropped: 0 }
    }

    /// The collected records, in commit order.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Records dropped after the trace reached its cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the trace, returning `(records, dropped_count)`.
    pub fn into_decisions(self) -> (Vec<DecisionRecord>, u64) {
        (self.decisions, self.dropped)
    }
}

impl SimObserver for DecisionTrace {
    const WANTS_DECISIONS: bool = true;

    fn on_decision(&mut self, decision: &DecisionRecord) {
        if self.decisions.len() < self.cap {
            self.decisions.push(decision.clone());
        } else {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{DecisionReason, PolicyState};

    fn decision(interval: u64) -> DecisionRecord {
        DecisionRecord {
            interval,
            commit: interval * 1000,
            start_cycle: 0,
            cycle: interval * 2000,
            state: PolicyState::Stable,
            ipc: 0.5,
            branch_delta: 0,
            memref_delta: 0,
            instability: 0.0,
            explored_ipc: Vec::new(),
            interval_length: 1000,
            clusters: 4,
            reason: DecisionReason::StableNoChange,
        }
    }

    fn commit_event(seq: u64, cycle: u64) -> CommitEvent {
        CommitEvent {
            seq,
            pc: 0,
            cycle,
            is_branch: false,
            is_cond_branch: false,
            is_call: false,
            is_return: false,
            is_memref: false,
            distant: false,
            mispredicted: false,
        }
    }

    #[test]
    fn null_observer_is_inert_and_trivially_constructible() {
        let mut o = NullObserver;
        o.on_cycle(1, 4, 10);
        o.on_commit(&commit_event(1, 1));
        o.on_reconfig(5, 4, 16);
        assert_eq!(o, NullObserver);
    }

    #[test]
    fn metrics_observer_samples_timeline_on_interval_boundaries() {
        let mut m = MetricsObserver::new(10);
        for cycle in 1..=25u64 {
            // Two commits per cycle.
            m.on_commit(&commit_event(cycle * 2, cycle));
            m.on_commit(&commit_event(cycle * 2 + 1, cycle));
            m.on_cycle(cycle, 4, cycle as usize);
        }
        assert_eq!(m.timeline.len(), 2, "samples at cycles 10 and 20");
        assert_eq!(m.timeline[0].cycle, 10);
        assert_eq!(m.timeline[0].committed, 20);
        assert_eq!(m.timeline[1].committed, 20);
        assert_eq!(m.committed(), 50);
        assert_eq!(m.initial_clusters, 4);
        assert_eq!(m.last_cycle, 25);
        assert_eq!(m.rob_occupancy.count(), 25);
    }

    #[test]
    fn metrics_observer_routes_transfer_kinds() {
        let mut m = MetricsObserver::new(100);
        m.on_transfer(1, TransferKind::Register, 0, 2, 2);
        m.on_transfer(1, TransferKind::Register, 0, 1, 1);
        m.on_transfer(2, TransferKind::Cache, 3, 0, 3);
        assert_eq!(m.reg_transfer_hops.count(), 2);
        assert_eq!(m.cache_transfer_hops.count(), 1);
    }

    #[test]
    fn metrics_observer_records_reconfigs_and_flushes() {
        let mut m = MetricsObserver::new(100);
        m.on_reconfig(50, 16, 4);
        m.on_flush_stall(50, 12, 34);
        m.on_reconfig(90, 4, 8);
        assert_eq!(
            m.reconfigs,
            vec![
                ReconfigEvent { cycle: 50, from: 16, to: 4 },
                ReconfigEvent { cycle: 90, from: 4, to: 8 }
            ]
        );
        assert_eq!(m.flushes, vec![FlushEvent { cycle: 50, stall_cycles: 12, writebacks: 34 }]);
    }

    #[test]
    fn metrics_json_has_the_expected_keys() {
        let mut m = MetricsObserver::new(10);
        m.on_cycle(1, 4, 3);
        m.on_cache_access(4, 0, false, 7);
        let j = m.to_json();
        assert_eq!(
            j.keys().unwrap(),
            vec![
                "interval_cycles",
                "last_cycle",
                "committed",
                "dispatched",
                "issued",
                "initial_clusters",
                "rob_occupancy",
                "reg_transfer_hops",
                "cache_transfer_hops",
                "cache_latency",
                "reconfigurations",
                "dropped_reconfigs",
                "flushes",
                "decisions",
                "dropped_decisions",
                "timeline"
            ]
        );
    }

    #[test]
    fn reconfig_log_caps_and_counts_the_overflow() {
        let mut m = MetricsObserver::with_caps(100, 3, 3);
        for i in 0..10u64 {
            m.on_reconfig(i, 4, 8);
        }
        assert_eq!(m.reconfigs.len(), 3, "first N kept");
        assert_eq!(m.dropped_reconfigs(), 7);
        assert_eq!(m.reconfigs[0].cycle, 0);
        assert_eq!(m.reconfigs[2].cycle, 2);
        let j = m.to_json();
        assert_eq!(j.get("dropped_reconfigs").unwrap().as_u64(), Some(7));
        assert_eq!(j.get("reconfigurations").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn decision_log_caps_and_counts_the_overflow() {
        let mut m = MetricsObserver::with_caps(100, 3, 2);
        for i in 1..=5u64 {
            m.on_decision(&decision(i));
        }
        assert_eq!(m.decisions.len(), 2);
        assert_eq!(m.dropped_decisions(), 3);
        let j = m.to_json();
        assert_eq!(j.get("decisions").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("dropped_decisions").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn decision_trace_collects_in_order_and_caps() {
        let mut t = DecisionTrace::with_cap(2);
        for i in 1..=4u64 {
            t.on_decision(&decision(i));
        }
        assert_eq!(t.decisions().len(), 2);
        assert_eq!(t.decisions()[0].interval, 1);
        assert_eq!(t.decisions()[1].interval, 2);
        assert_eq!(t.dropped(), 2);
        let (records, dropped) = t.into_decisions();
        assert_eq!((records.len(), dropped), (2, 2));
        assert!(DecisionTrace::default().decisions().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn metrics_observer_rejects_zero_interval() {
        let _ = MetricsObserver::new(0);
    }
}
