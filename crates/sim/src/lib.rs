//! Cycle-level simulator of a dynamically tunable *clustered*
//! out-of-order processor — the evaluation substrate of
//! Balasubramonian, Dwarkadas & Albonesi, *"Dynamically Managing the
//! Communication-Parallelism Trade-off in Future Clustered
//! Processors"* (ISCA 2003).
//!
//! The machine is a 16-cluster superscalar in which each cluster owns a
//! slice of the issue queue, register file, and functional units
//! (Table 1 of the paper), connected by a ring (or grid) whose hop
//! latency makes *communication* the counterweight to *parallelism*:
//! more active clusters mean a bigger instruction window but longer
//! operand and cache trips. A [`ReconfigPolicy`] (implemented in the
//! `clustered-core` crate) decides, at run time, how many clusters the
//! running thread may dispatch to.
//!
//! Both L1 organisations of the paper are modelled: a centralized
//! word-interleaved cache co-located with cluster 0 (§2.1) and a
//! decentralized per-cluster banked cache with bank prediction and
//! store-broadcast dummy LSQ slots (§2.2/§5).
//!
//! # Examples
//!
//! ```
//! use clustered_isa::assemble;
//! use clustered_emu::trace;
//! use clustered_sim::{FixedPolicy, Processor, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "li r1, 1000
//!      loop: addi r1, r1, -1
//!      bnez r1, loop
//!      halt",
//! )?;
//! let stream = trace(program).map(Result::unwrap);
//! let mut cpu = Processor::new(
//!     SimConfig::default(),
//!     stream,
//!     Box::new(FixedPolicy::new(4)),
//! )?;
//! let stats = cpu.run(u64::MAX)?; // to end of trace
//! assert!(stats.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
// `deny`, not `forbid`: the one sanctioned exception is
// `pipeline::pool`, whose raw-pointer domain partition carries its
// safety argument inline and opts in with a scoped `allow`.
#![deny(unsafe_code)]

mod audit;
mod bankpred;
mod bpred;
mod cache;
mod cluster;
mod config;
mod crit;
mod decision;
mod energy;
mod fxhash;
mod host;
mod interconnect;
mod lsq;
mod observe;
mod pipeline;
mod reconfig;
mod slots;
mod stats;
mod steer;

pub use audit::{
    AuditCheck, AuditInvariant, AuditObserver, AuditViolation, DEFAULT_VIOLATION_CAP,
};
pub use bankpred::{BankPredictor, BANK_BITS, MAX_PREDICTED_BANKS};
pub use bpred::{BranchPredictor, Prediction};
pub use cache::{ArrayAccess, CacheArray, MemHierarchy};
pub use cluster::{latency_of, Cluster, Domain, FuGroup, FU_GROUPS};
pub use crit::CriticalityPredictor;
pub use decision::{DecisionReason, DecisionRecord, PolicyState};
pub use energy::{estimate_energy, EnergyBreakdown, EnergyParams};
pub use config::{
    BankPredParams, BpredParams, CacheModel, CacheParams, ClusterParams, ConfigError,
    CritParams, ExecLatencies, FrontendParams, InterconnectParams, SimConfig, Topology,
    MAX_CLUSTERS,
};
pub use host::{
    HostProfiler, HostSlice, HostStage, QueueHealth, DEFAULT_SAMPLE_INTERVAL, DEFAULT_SLICE_CAP,
    HOST_STAGE_COUNT,
};
pub use interconnect::Interconnect;
pub use lsq::LsqSlice;
pub use observe::{
    DecisionTrace, FlushEvent, IpcSample, MetricsObserver, NullObserver, ReconfigEvent,
    SimObserver, TransferKind, DEFAULT_EVENT_CAP,
};
pub use pipeline::{OccupancySnapshot, Processor, SimError};
pub use reconfig::{
    CommitEvent, FixedPolicy, ReconfigPolicy, DISTANT_DEPTH, FIXED_CHECKPOINT_COMMITS,
};
pub use slots::SlotReservations;
pub use stats::SimStats;
pub use steer::{SteerRequest, Steering, SteeringKind};
