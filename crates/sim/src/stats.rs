//! Event counters accumulated during simulation.

use crate::config::MAX_CLUSTERS;

/// Counters maintained by the simulator, mirroring the hardware event
/// counters the paper's software reconfiguration algorithm reads.
///
/// All counters cover the *measured* portion of a run (after any
/// warm-up the caller discarded).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// All committed control transfers.
    pub branches: u64,
    /// Mispredicted (direction or target) control transfers.
    pub mispredicts: u64,
    /// Committed loads + stores.
    pub memrefs: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Store-to-load forwards in the LSQ.
    pub lsq_forwards: u64,
    /// Inter-cluster register-value transfers.
    pub reg_transfers: u64,
    /// Total hops travelled by register transfers.
    pub reg_transfer_hops: u64,
    /// Cache-related transfers (addresses/data to or from banks).
    pub cache_transfers: u64,
    /// Total hops travelled by cache-related transfers.
    pub cache_transfer_hops: u64,
    /// Committed instructions that issued while ≥120 instructions
    /// younger than the ROB head ("distant" ILP, paper §4.3).
    pub distant_issues: u64,
    /// Bank-predictor lookups (decentralized model).
    pub bank_predictions: u64,
    /// Bank-predictor misses (decentralized model).
    pub bank_mispredictions: u64,
    /// Reconfigurations applied.
    pub reconfigurations: u64,
    /// Dirty L1 lines written back due to reconfiguration flushes
    /// (decentralized model).
    pub flush_writebacks: u64,
    /// Cycles spent stalled in reconfiguration flushes.
    pub flush_stall_cycles: u64,
    /// Sum over cycles of the active-cluster count (for averaging).
    pub active_cluster_cycles: u64,
    /// Cycles spent in each active-cluster configuration, indexed by
    /// cluster count − 1.
    pub cycles_at_config: [u64; MAX_CLUSTERS],
    /// Cycles dispatch stopped because the fetch queue was empty.
    pub dispatch_stall_fetch: u64,
    /// Cycles dispatch stopped because the ROB was full.
    pub dispatch_stall_rob: u64,
    /// Cycles dispatch stopped on cluster resources (issue queue,
    /// registers, LSQ).
    pub dispatch_stall_resources: u64,
    /// Sum over cycles of ROB occupancy (divide by `cycles` for the
    /// mean window depth).
    pub rob_occupancy_sum: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Committed instructions between mispredictions (Table 3's
    /// "mispred branch interval").
    pub fn mispredict_interval(&self) -> f64 {
        if self.mispredicts == 0 {
            f64::INFINITY
        } else {
            self.committed as f64 / self.mispredicts as f64
        }
    }

    /// L1 data-cache hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Mean active clusters over the run.
    pub fn avg_active_clusters(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_cluster_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean hops per register transfer.
    pub fn avg_transfer_hops(&self) -> f64 {
        if self.reg_transfers == 0 {
            0.0
        } else {
            self.reg_transfer_hops as f64 / self.reg_transfers as f64
        }
    }

    /// Bank-prediction accuracy (decentralized model).
    pub fn bank_accuracy(&self) -> f64 {
        if self.bank_predictions == 0 {
            1.0
        } else {
            1.0 - self.bank_mispredictions as f64 / self.bank_predictions as f64
        }
    }

    /// Counter differences `self - earlier`, for interval statistics.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not an earlier snapshot
    /// of the same run.
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        let mut d = *self;
        debug_assert!(self.cycles >= earlier.cycles, "snapshots out of order");
        d.cycles -= earlier.cycles;
        d.committed -= earlier.committed;
        d.dispatched -= earlier.dispatched;
        d.cond_branches -= earlier.cond_branches;
        d.branches -= earlier.branches;
        d.mispredicts -= earlier.mispredicts;
        d.memrefs -= earlier.memrefs;
        d.loads -= earlier.loads;
        d.stores -= earlier.stores;
        d.l1_hits -= earlier.l1_hits;
        d.l1_misses -= earlier.l1_misses;
        d.l2_misses -= earlier.l2_misses;
        d.lsq_forwards -= earlier.lsq_forwards;
        d.reg_transfers -= earlier.reg_transfers;
        d.reg_transfer_hops -= earlier.reg_transfer_hops;
        d.cache_transfers -= earlier.cache_transfers;
        d.cache_transfer_hops -= earlier.cache_transfer_hops;
        d.distant_issues -= earlier.distant_issues;
        d.bank_predictions -= earlier.bank_predictions;
        d.bank_mispredictions -= earlier.bank_mispredictions;
        d.reconfigurations -= earlier.reconfigurations;
        d.flush_writebacks -= earlier.flush_writebacks;
        d.flush_stall_cycles -= earlier.flush_stall_cycles;
        d.active_cluster_cycles -= earlier.active_cluster_cycles;
        for i in 0..MAX_CLUSTERS {
            d.cycles_at_config[i] -= earlier.cycles_at_config[i];
        }
        d.dispatch_stall_fetch -= earlier.dispatch_stall_fetch;
        d.dispatch_stall_rob -= earlier.dispatch_stall_rob;
        d.dispatch_stall_resources -= earlier.dispatch_stall_resources;
        d.rob_occupancy_sum -= earlier.rob_occupancy_sum;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        let s = SimStats { cycles: 100, committed: 250, ..SimStats::default() };
        assert_eq!(s.ipc(), 2.5);
    }

    #[test]
    fn mispredict_interval() {
        let s = SimStats { committed: 1000, mispredicts: 10, ..SimStats::default() };
        assert_eq!(s.mispredict_interval(), 100.0);
        let none = SimStats { committed: 1000, ..SimStats::default() };
        assert!(none.mispredict_interval().is_infinite());
    }

    #[test]
    fn delta_since_subtracts_all_fields() {
        let a = SimStats { cycles: 10, committed: 20, l1_hits: 5, ..SimStats::default() };
        let b = SimStats { cycles: 25, committed: 70, l1_hits: 11, ..SimStats::default() };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 15);
        assert_eq!(d.committed, 50);
        assert_eq!(d.l1_hits, 6);
    }

    #[test]
    fn rates() {
        let s = SimStats {
            cycles: 100,
            l1_hits: 90,
            l1_misses: 10,
            reg_transfers: 4,
            reg_transfer_hops: 10,
            bank_predictions: 100,
            bank_mispredictions: 15,
            active_cluster_cycles: 800,
            ..SimStats::default()
        };
        assert_eq!(s.l1_hit_rate(), 0.9);
        assert_eq!(s.avg_transfer_hops(), 2.5);
        assert_eq!(s.bank_accuracy(), 0.85);
        assert_eq!(s.avg_active_clusters(), 8.0);
    }
}
