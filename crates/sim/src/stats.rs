//! Event counters accumulated during simulation.

use crate::config::MAX_CLUSTERS;
use clustered_stats::Json;

/// Counters maintained by the simulator, mirroring the hardware event
/// counters the paper's software reconfiguration algorithm reads.
///
/// All counters cover the *measured* portion of a run (after any
/// warm-up the caller discarded).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched.
    pub dispatched: u64,
    /// Instructions fetched into the fetch queue (counts squashed
    /// wrong-path-free trace instructions once; re-fetches after a
    /// squash count again). Monotone above `dispatched`, which is
    /// monotone above `committed` — the auditor's first invariant.
    pub fetched: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// All committed control transfers.
    pub branches: u64,
    /// Mispredicted (direction or target) control transfers.
    pub mispredicts: u64,
    /// Committed loads + stores.
    pub memrefs: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L2 misses (memory accesses).
    pub l2_misses: u64,
    /// Store-to-load forwards in the LSQ.
    pub lsq_forwards: u64,
    /// Inter-cluster register-value transfers.
    pub reg_transfers: u64,
    /// Total hops travelled by register transfers.
    pub reg_transfer_hops: u64,
    /// Cache-related transfers (addresses/data to or from banks).
    pub cache_transfers: u64,
    /// Total hops travelled by cache-related transfers.
    pub cache_transfer_hops: u64,
    /// Committed instructions that issued while ≥120 instructions
    /// younger than the ROB head ("distant" ILP, paper §4.3).
    pub distant_issues: u64,
    /// Bank-predictor lookups (decentralized model).
    pub bank_predictions: u64,
    /// Bank-predictor misses (decentralized model).
    pub bank_mispredictions: u64,
    /// Reconfigurations applied.
    pub reconfigurations: u64,
    /// Dirty L1 lines written back due to reconfiguration flushes
    /// (decentralized model).
    pub flush_writebacks: u64,
    /// Cycles spent stalled in reconfiguration flushes.
    pub flush_stall_cycles: u64,
    /// Sum over cycles of the active-cluster count (for averaging).
    pub active_cluster_cycles: u64,
    /// Cycles spent in each active-cluster configuration, indexed by
    /// cluster count − 1.
    pub cycles_at_config: [u64; MAX_CLUSTERS],
    /// Cycles dispatch stopped because the fetch queue was empty.
    pub dispatch_stall_fetch: u64,
    /// Cycles dispatch stopped because the ROB was full.
    pub dispatch_stall_rob: u64,
    /// Cycles dispatch stopped on cluster resources (issue queue,
    /// registers, LSQ).
    pub dispatch_stall_resources: u64,
    /// Sum over cycles of ROB occupancy (divide by `cycles` for the
    /// mean window depth).
    pub rob_occupancy_sum: u64,
    /// Sum over cycles of clusters the issue stage skipped as
    /// quiescent (no queued instructions) — including every cluster
    /// beyond the active count. With `cluster_busy_cycles` this
    /// partitions `cycles × configured clusters`.
    pub quiescent_cluster_cycles: u64,
    /// Cycles each cluster had queued instructions and was visited by
    /// the issue stage, indexed by cluster.
    pub cluster_busy_cycles: [u64; MAX_CLUSTERS],
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Committed instructions between mispredictions (Table 3's
    /// "mispred branch interval").
    pub fn mispredict_interval(&self) -> f64 {
        if self.mispredicts == 0 {
            f64::INFINITY
        } else {
            self.committed as f64 / self.mispredicts as f64
        }
    }

    /// L1 data-cache hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Fraction of committed control transfers that were mispredicted
    /// (0.0 when no branches committed).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of L2 accesses (= L1 misses) that went to memory
    /// (0.0 when the L2 was never accessed).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l1_misses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l1_misses as f64
        }
    }

    /// Mean active clusters over the run.
    pub fn avg_active_clusters(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_cluster_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean hops per register transfer.
    pub fn avg_transfer_hops(&self) -> f64 {
        if self.reg_transfers == 0 {
            0.0
        } else {
            self.reg_transfer_hops as f64 / self.reg_transfers as f64
        }
    }

    /// Bank-prediction accuracy (decentralized model).
    pub fn bank_accuracy(&self) -> f64 {
        if self.bank_predictions == 0 {
            1.0
        } else {
            1.0 - self.bank_mispredictions as f64 / self.bank_predictions as f64
        }
    }

    /// Counter differences `self - earlier`, for interval statistics.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not an earlier snapshot
    /// of the same run.
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        let mut d = *self;
        debug_assert!(self.cycles >= earlier.cycles, "snapshots out of order");
        d.cycles -= earlier.cycles;
        d.committed -= earlier.committed;
        d.dispatched -= earlier.dispatched;
        // Like the quiescence counters below, `fetched` postdates the
        // other fields: saturate (with a debug assert) instead of
        // wrapping on snapshots from older tooling.
        debug_assert!(
            self.fetched >= earlier.fetched,
            "snapshots out of order: fetched went backwards"
        );
        d.fetched = self.fetched.saturating_sub(earlier.fetched);
        d.cond_branches -= earlier.cond_branches;
        d.branches -= earlier.branches;
        d.mispredicts -= earlier.mispredicts;
        d.memrefs -= earlier.memrefs;
        d.loads -= earlier.loads;
        d.stores -= earlier.stores;
        d.l1_hits -= earlier.l1_hits;
        d.l1_misses -= earlier.l1_misses;
        d.l2_misses -= earlier.l2_misses;
        d.lsq_forwards -= earlier.lsq_forwards;
        d.reg_transfers -= earlier.reg_transfers;
        d.reg_transfer_hops -= earlier.reg_transfer_hops;
        d.cache_transfers -= earlier.cache_transfers;
        d.cache_transfer_hops -= earlier.cache_transfer_hops;
        d.distant_issues -= earlier.distant_issues;
        d.bank_predictions -= earlier.bank_predictions;
        d.bank_mispredictions -= earlier.bank_mispredictions;
        d.reconfigurations -= earlier.reconfigurations;
        d.flush_writebacks -= earlier.flush_writebacks;
        d.flush_stall_cycles -= earlier.flush_stall_cycles;
        d.active_cluster_cycles -= earlier.active_cluster_cycles;
        for i in 0..MAX_CLUSTERS {
            d.cycles_at_config[i] -= earlier.cycles_at_config[i];
        }
        d.dispatch_stall_fetch -= earlier.dispatch_stall_fetch;
        d.dispatch_stall_rob -= earlier.dispatch_stall_rob;
        d.dispatch_stall_resources -= earlier.dispatch_stall_resources;
        d.rob_occupancy_sum -= earlier.rob_occupancy_sum;
        // The quiescence counters use saturating subtraction: they were
        // added after the other fields, so snapshots serialized by
        // older tooling can deserialize with zeros here while the rest
        // of the struct is ordered correctly — a raw `-=` would wrap in
        // release builds and poison every downstream rate. Mismatched
        // snapshots are still a caller bug, asserted in debug builds.
        debug_assert!(
            self.quiescent_cluster_cycles >= earlier.quiescent_cluster_cycles,
            "snapshots out of order: quiescent_cluster_cycles went backwards"
        );
        d.quiescent_cluster_cycles =
            self.quiescent_cluster_cycles.saturating_sub(earlier.quiescent_cluster_cycles);
        for i in 0..MAX_CLUSTERS {
            debug_assert!(
                self.cluster_busy_cycles[i] >= earlier.cluster_busy_cycles[i],
                "snapshots out of order: cluster_busy_cycles[{i}] went backwards"
            );
            d.cluster_busy_cycles[i] =
                self.cluster_busy_cycles[i].saturating_sub(earlier.cluster_busy_cycles[i]);
        }
        d
    }

    /// Every counter plus the derived rates as one JSON document.
    ///
    /// The destructuring below is exhaustive on purpose: adding a field
    /// to [`SimStats`] without deciding how to export it is a compile
    /// error, so the machine-readable output can never silently fall
    /// behind the struct.
    pub fn to_json(&self) -> Json {
        let SimStats {
            cycles,
            committed,
            dispatched,
            fetched,
            cond_branches,
            branches,
            mispredicts,
            memrefs,
            loads,
            stores,
            l1_hits,
            l1_misses,
            l2_misses,
            lsq_forwards,
            reg_transfers,
            reg_transfer_hops,
            cache_transfers,
            cache_transfer_hops,
            distant_issues,
            bank_predictions,
            bank_mispredictions,
            reconfigurations,
            flush_writebacks,
            flush_stall_cycles,
            active_cluster_cycles,
            cycles_at_config,
            dispatch_stall_fetch,
            dispatch_stall_rob,
            dispatch_stall_resources,
            rob_occupancy_sum,
            quiescent_cluster_cycles,
            cluster_busy_cycles,
        } = *self;
        let config_cycles: Vec<Json> = cycles_at_config.iter().map(|&c| Json::from(c)).collect();
        let busy_cycles: Vec<Json> = cluster_busy_cycles.iter().map(|&c| Json::from(c)).collect();
        Json::object()
            .set("cycles", cycles)
            .set("committed", committed)
            .set("dispatched", dispatched)
            .set("fetched", fetched)
            .set("ipc", self.ipc())
            .set("cond_branches", cond_branches)
            .set("branches", branches)
            .set("mispredicts", mispredicts)
            .set("mispredict_rate", self.mispredict_rate())
            .set("mispredict_interval", self.mispredict_interval())
            .set("memrefs", memrefs)
            .set("loads", loads)
            .set("stores", stores)
            .set("l1_hits", l1_hits)
            .set("l1_misses", l1_misses)
            .set("l1_hit_rate", self.l1_hit_rate())
            .set("l2_misses", l2_misses)
            .set("l2_miss_rate", self.l2_miss_rate())
            .set("lsq_forwards", lsq_forwards)
            .set("reg_transfers", reg_transfers)
            .set("reg_transfer_hops", reg_transfer_hops)
            .set("avg_transfer_hops", self.avg_transfer_hops())
            .set("cache_transfers", cache_transfers)
            .set("cache_transfer_hops", cache_transfer_hops)
            .set("distant_issues", distant_issues)
            .set("bank_predictions", bank_predictions)
            .set("bank_mispredictions", bank_mispredictions)
            .set("bank_accuracy", self.bank_accuracy())
            .set("reconfigurations", reconfigurations)
            .set("flush_writebacks", flush_writebacks)
            .set("flush_stall_cycles", flush_stall_cycles)
            .set("active_cluster_cycles", active_cluster_cycles)
            .set("avg_active_clusters", self.avg_active_clusters())
            .set("cycles_at_config", Json::Arr(config_cycles))
            .set(
                "dispatch_stalls",
                Json::object()
                    .set("fetch", dispatch_stall_fetch)
                    .set("rob", dispatch_stall_rob)
                    .set("resources", dispatch_stall_resources),
            )
            .set("rob_occupancy_sum", rob_occupancy_sum)
            .set("quiescent_cluster_cycles", quiescent_cluster_cycles)
            .set("cluster_busy_cycles", Json::Arr(busy_cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
        let s = SimStats { cycles: 100, committed: 250, ..SimStats::default() };
        assert_eq!(s.ipc(), 2.5);
    }

    #[test]
    fn mispredict_interval() {
        let s = SimStats { committed: 1000, mispredicts: 10, ..SimStats::default() };
        assert_eq!(s.mispredict_interval(), 100.0);
        let none = SimStats { committed: 1000, ..SimStats::default() };
        assert!(none.mispredict_interval().is_infinite());
    }

    /// A snapshot in which every field holds a distinct non-zero value
    /// scaled by `m`. Exhaustive on purpose — adding a counter to
    /// [`SimStats`] without extending this literal is a compile error,
    /// so [`delta_since_subtracts_every_field`] cannot silently skip a
    /// forgotten field.
    fn filled(m: u64) -> SimStats {
        let mut cycles_at_config = [0u64; MAX_CLUSTERS];
        for (i, c) in cycles_at_config.iter_mut().enumerate() {
            *c = (100 + i as u64) * m;
        }
        let mut cluster_busy_cycles = [0u64; MAX_CLUSTERS];
        for (i, c) in cluster_busy_cycles.iter_mut().enumerate() {
            *c = (200 + i as u64) * m;
        }
        SimStats {
            cycles: m,
            committed: 2 * m,
            dispatched: 3 * m,
            fetched: 30 * m,
            cond_branches: 4 * m,
            branches: 5 * m,
            mispredicts: 6 * m,
            memrefs: 7 * m,
            loads: 8 * m,
            stores: 9 * m,
            l1_hits: 10 * m,
            l1_misses: 11 * m,
            l2_misses: 12 * m,
            lsq_forwards: 13 * m,
            reg_transfers: 14 * m,
            reg_transfer_hops: 15 * m,
            cache_transfers: 16 * m,
            cache_transfer_hops: 17 * m,
            distant_issues: 18 * m,
            bank_predictions: 19 * m,
            bank_mispredictions: 20 * m,
            reconfigurations: 21 * m,
            flush_writebacks: 22 * m,
            flush_stall_cycles: 23 * m,
            active_cluster_cycles: 24 * m,
            cycles_at_config,
            dispatch_stall_fetch: 25 * m,
            dispatch_stall_rob: 26 * m,
            dispatch_stall_resources: 27 * m,
            rob_occupancy_sum: 28 * m,
            quiescent_cluster_cycles: 29 * m,
            cluster_busy_cycles,
        }
    }

    #[test]
    fn delta_since_subtracts_every_field() {
        // later = 3 × earlier, so the delta must equal 2 × earlier in
        // *every* field; a counter missed by `delta_since` would keep
        // its 3× value and fail the whole-struct comparison.
        let d = filled(3).delta_since(&filled(1));
        assert_eq!(d, filled(2));
    }

    /// Mismatched snapshots (an "earlier" whose quiescence counters are
    /// *ahead*) must trip the ordering assertion in debug builds rather
    /// than wrap — the regression this guards was a raw `-=`.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "quiescent_cluster_cycles went backwards")]
    fn delta_since_rejects_mismatched_quiescence_snapshots() {
        let mut later = filled(2);
        let earlier = filled(2);
        later.quiescent_cluster_cycles = earlier.quiescent_cluster_cycles - 1;
        let _ = later.delta_since(&earlier);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cluster_busy_cycles[0] went backwards")]
    fn delta_since_rejects_mismatched_busy_cycle_snapshots() {
        let mut later = filled(2);
        let earlier = filled(2);
        later.cluster_busy_cycles[0] = earlier.cluster_busy_cycles[0] - 1;
        let _ = later.delta_since(&earlier);
    }

    /// In release builds the same mismatch saturates to zero instead of
    /// wrapping to ~u64::MAX and poisoning every derived rate.
    #[test]
    #[cfg(not(debug_assertions))]
    fn delta_since_saturates_mismatched_quiescence_snapshots() {
        let mut later = filled(2);
        let earlier = filled(2);
        later.quiescent_cluster_cycles = earlier.quiescent_cluster_cycles - 1;
        later.cluster_busy_cycles[0] = earlier.cluster_busy_cycles[0] - 1;
        let d = later.delta_since(&earlier);
        assert_eq!(d.quiescent_cluster_cycles, 0);
        assert_eq!(d.cluster_busy_cycles[0], 0);
    }

    #[test]
    fn rates() {
        let s = SimStats {
            cycles: 100,
            l1_hits: 90,
            l1_misses: 10,
            reg_transfers: 4,
            reg_transfer_hops: 10,
            bank_predictions: 100,
            bank_mispredictions: 15,
            active_cluster_cycles: 800,
            ..SimStats::default()
        };
        assert_eq!(s.l1_hit_rate(), 0.9);
        assert_eq!(s.avg_transfer_hops(), 2.5);
        assert_eq!(s.bank_accuracy(), 0.85);
        assert_eq!(s.avg_active_clusters(), 8.0);
    }

    #[test]
    fn mispredict_rate_handles_zero_branches() {
        assert_eq!(SimStats::default().mispredict_rate(), 0.0);
        let s = SimStats { branches: 200, mispredicts: 30, ..SimStats::default() };
        assert_eq!(s.mispredict_rate(), 0.15);
    }

    #[test]
    fn l2_miss_rate_handles_zero_l1_misses() {
        assert_eq!(SimStats::default().l2_miss_rate(), 0.0);
        let s = SimStats { l1_misses: 40, l2_misses: 10, ..SimStats::default() };
        assert_eq!(s.l2_miss_rate(), 0.25);
    }

    #[test]
    fn json_round_trips_counters_and_derived_rates() {
        let s = filled(1);
        let j = s.to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("committed").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("fetched").and_then(Json::as_f64), Some(30.0));
        assert_eq!(j.get("ipc").and_then(Json::as_f64), Some(2.0));
        assert_eq!(j.get("mispredict_rate").and_then(Json::as_f64), Some(6.0 / 5.0));
        assert_eq!(j.get("l2_miss_rate").and_then(Json::as_f64), Some(12.0 / 11.0));
        let configs = j.get("cycles_at_config").and_then(Json::as_arr).unwrap();
        assert_eq!(configs.len(), MAX_CLUSTERS);
        assert_eq!(configs[0].as_f64(), Some(100.0));
        let stalls = j.get("dispatch_stalls").unwrap();
        assert_eq!(stalls.get("fetch").and_then(Json::as_f64), Some(25.0));
        assert_eq!(stalls.get("rob").and_then(Json::as_f64), Some(26.0));
        assert_eq!(stalls.get("resources").and_then(Json::as_f64), Some(27.0));
        assert_eq!(j.get("quiescent_cluster_cycles").and_then(Json::as_f64), Some(29.0));
        let busy = j.get("cluster_busy_cycles").and_then(Json::as_arr).unwrap();
        assert_eq!(busy.len(), MAX_CLUSTERS);
        assert_eq!(busy[1].as_f64(), Some(201.0));
        // Infinite mispredict interval (no mispredicts) serializes as
        // null rather than invalid JSON.
        let none = SimStats { committed: 10, ..SimStats::default() };
        let reparsed = clustered_stats::json::parse(&none.to_json().to_string_compact()).unwrap();
        assert_eq!(reparsed.get("mispredict_interval"), Some(&Json::Null));
        let text = s.to_json().to_string_compact();
        let parsed = clustered_stats::json::parse(&text).expect("serializer emits valid JSON");
        assert_eq!(parsed, s.to_json());
    }
}
