//! Host-side performance profiling: where does simulator *wall-clock*
//! go?
//!
//! The guest observability layer ([`SimObserver`](crate::SimObserver),
//! `SimStats`) describes the simulated machine; this module describes
//! the simulator itself. A [`HostProfiler`] attaches through the same
//! observer seam and, when enabled, the cycle loop attributes its
//! monotonic wall-clock to per-stage buckets
//! (fetch/dispatch/issue/commit/event-drain) and samples calendar-queue
//! health and per-cluster load skew every cycle.
//!
//! The gate is compile-time, in the `WANTS_DECISIONS` style: the
//! processor consults
//! [`SimObserver::WANTS_HOST_PROFILE`](crate::SimObserver::WANTS_HOST_PROFILE)
//! — a `const` — to pick between the unmodified cycle loop and the
//! instrumented one, so a profiler-off build (the default
//! [`NullObserver`](crate::NullObserver)) monomorphizes to exactly the
//! code that existed before this module did. Profiling changes *no*
//! simulated behaviour either way: the hooks only read machine state,
//! and the bit-identical-stats tests pin it.
//!
//! Why these measurements: the ROADMAP's parallel-intra-run bet needs
//! per-cluster load-skew data to choose partitions, and the
//! sweep-service bet needs sim-cycles/sec throughput numbers per
//! configuration — both are host properties no `SimStats` counter can
//! see.

use crate::config::MAX_CLUSTERS;
use clustered_stats::{Histogram, Json};

/// Number of wall-clock stage buckets the profiled cycle loop reports.
pub const HOST_STAGE_COUNT: usize = 6;

/// One wall-clock bucket of the cycle loop.
///
/// `Other` is the loop glue outside the five pipeline stages (statistic
/// increments, the `on_cycle` callback); including it makes the buckets
/// *partition* the measured loop time, so shares always sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostStage {
    /// Draining due events from the calendar queues.
    EventDrain,
    /// In-order retirement plus reconfiguration application.
    Commit,
    /// Per-cluster select/issue.
    Issue,
    /// Rename, steering, and structural-hazard checks.
    Dispatch,
    /// Branch prediction and the fetch queue.
    Fetch,
    /// Per-cycle bookkeeping outside the stages.
    Other,
}

impl HostStage {
    /// Every stage, in cycle-loop order (the order of the
    /// [`SimObserver::on_stage_nanos`](crate::SimObserver::on_stage_nanos)
    /// array).
    pub const ALL: [HostStage; HOST_STAGE_COUNT] = [
        HostStage::EventDrain,
        HostStage::Commit,
        HostStage::Issue,
        HostStage::Dispatch,
        HostStage::Fetch,
        HostStage::Other,
    ];

    /// Stable lower-case name (JSON keys, trace track names).
    pub fn as_str(self) -> &'static str {
        match self {
            HostStage::EventDrain => "event_drain",
            HostStage::Commit => "commit",
            HostStage::Issue => "issue",
            HostStage::Dispatch => "dispatch",
            HostStage::Fetch => "fetch",
            HostStage::Other => "other",
        }
    }
}

/// One per-cycle sample of event-queue and quiescence health, taken at
/// the end of a profiled cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueHealth {
    /// The cycle the sample describes.
    pub cycle: u64,
    /// Undelivered events waiting in the calendar rings.
    pub calendar_events: usize,
    /// Events parked in the far-future overflow heap.
    pub overflow_events: usize,
    /// The event floor watermark (lower bound on every undelivered
    /// event time).
    pub floor: u64,
    /// Bit `c` set ⇔ cluster `c` had queued instructions this cycle.
    pub queued_mask: u32,
    /// Active clusters this cycle.
    pub active_clusters: usize,
    /// Physically configured clusters.
    pub configured_clusters: usize,
    /// Intra-run pool participants driving this run: `0` on the
    /// sequential oracle path, otherwise the thread count of the
    /// `--intra-jobs` pool (1 = batched path, single-threaded). Lets
    /// the profiler fold per-cluster load onto the worker partition.
    pub intra_threads: usize,
}

/// One aggregated slice of the host-time timeline: stage wall-clock
/// and queue depths over `start_cycle..end_cycle`. The Chrome-trace
/// exporter renders each slice as one `ph:"X"` span per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSlice {
    /// First cycle covered (exclusive of the previous slice).
    pub start_cycle: u64,
    /// Last cycle covered.
    pub end_cycle: u64,
    /// Wall-clock nanoseconds per stage over the slice, in
    /// [`HostStage::ALL`] order.
    pub stage_nanos: [u64; HOST_STAGE_COUNT],
    /// Calendar-queue events pending at the slice end.
    pub calendar_events: usize,
    /// Overflow-heap events pending at the slice end.
    pub overflow_events: usize,
    /// Busy (non-quiescent) clusters at the slice end.
    pub busy_clusters: u32,
    /// Events drained during the slice.
    pub drained: u64,
}

/// Default slice width of the host timeline, in simulated cycles.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 10_000;

/// Default cap on the stored host-timeline slices; past it slices are
/// counted, not stored (same policy as the guest event logs).
pub const DEFAULT_SLICE_CAP: usize = 65_536;

/// The host-performance observer: stage wall-clock attribution,
/// calendar-queue health histograms, and per-cluster load skew.
///
/// Attach it like any observer; its
/// [`WANTS_HOST_PROFILE`](crate::SimObserver::WANTS_HOST_PROFILE) flag
/// switches the processor onto the instrumented cycle loop. All data is
/// purely host-side: a profiled run's `SimStats` are bit-identical to
/// an unprofiled one.
#[derive(Debug, Clone)]
pub struct HostProfiler {
    sample_interval: u64,
    slice_cap: usize,
    cycles: u64,
    stage_nanos: [u64; HOST_STAGE_COUNT],
    ring_occupancy: Histogram,
    overflow_depth: Histogram,
    floor_advance: Histogram,
    busy_clusters: Histogram,
    fully_quiescent_cycles: u64,
    drained_events: [u64; MAX_CLUSTERS],
    drained_total: u64,
    cluster_busy_cycles: [u64; MAX_CLUSTERS],
    intra_threads: usize,
    last_floor: Option<u64>,
    slices: Vec<HostSlice>,
    dropped_slices: u64,
    slice_start: Option<u64>,
    stage_at_slice: [u64; HOST_STAGE_COUNT],
    drained_at_slice: u64,
}

impl Default for HostProfiler {
    fn default() -> HostProfiler {
        HostProfiler::new(DEFAULT_SAMPLE_INTERVAL)
    }
}

impl HostProfiler {
    /// A profiler whose timeline aggregates one slice per
    /// `sample_interval` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero.
    pub fn new(sample_interval: u64) -> HostProfiler {
        HostProfiler::with_cap(sample_interval, DEFAULT_SLICE_CAP)
    }

    /// Like [`HostProfiler::new`] with an explicit timeline cap; slices
    /// past the cap are counted, not stored.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero.
    pub fn with_cap(sample_interval: u64, slice_cap: usize) -> HostProfiler {
        assert!(sample_interval > 0, "sample interval must be non-zero");
        HostProfiler {
            sample_interval,
            slice_cap,
            cycles: 0,
            stage_nanos: [0; HOST_STAGE_COUNT],
            ring_occupancy: Histogram::log2(),
            overflow_depth: Histogram::log2(),
            floor_advance: Histogram::log2(),
            busy_clusters: Histogram::linear(1, MAX_CLUSTERS + 1),
            fully_quiescent_cycles: 0,
            drained_events: [0; MAX_CLUSTERS],
            drained_total: 0,
            cluster_busy_cycles: [0; MAX_CLUSTERS],
            intra_threads: 0,
            last_floor: None,
            slices: Vec::new(),
            dropped_slices: 0,
            slice_start: None,
            stage_at_slice: [0; HOST_STAGE_COUNT],
            drained_at_slice: 0,
        }
    }

    /// Discards everything collected so far (e.g. after a warm-up, so
    /// the profile covers only the measured window). The sampling
    /// configuration is kept.
    pub fn reset(&mut self) {
        *self = HostProfiler::with_cap(self.sample_interval, self.slice_cap);
    }

    /// Profiled cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Wall-clock nanoseconds attributed to each stage, in
    /// [`HostStage::ALL`] order.
    pub fn stage_nanos(&self) -> &[u64; HOST_STAGE_COUNT] {
        &self.stage_nanos
    }

    /// Total measured loop wall-clock (the sum of every stage bucket),
    /// in nanoseconds. Stage shares are fractions of this, so they sum
    /// to 1 by construction.
    pub fn loop_nanos(&self) -> u64 {
        self.stage_nanos.iter().sum()
    }

    /// Fraction of the measured loop time spent in `stage` (0.0 for an
    /// empty profile).
    pub fn stage_share(&self, stage: HostStage) -> f64 {
        let total = self.loop_nanos();
        if total == 0 {
            0.0
        } else {
            self.stage_nanos[stage_index(stage)] as f64 / total as f64
        }
    }

    /// Events drained per cluster shard (load-skew raw data).
    pub fn drained_events(&self) -> &[u64; MAX_CLUSTERS] {
        &self.drained_events
    }

    /// Total events drained.
    pub fn drained_total(&self) -> u64 {
        self.drained_total
    }

    /// Cycles each cluster spent busy (non-quiescent), as seen by the
    /// per-cycle health samples.
    pub fn cluster_busy_cycles(&self) -> &[u64; MAX_CLUSTERS] {
        &self.cluster_busy_cycles
    }

    /// Cycles in which *no* cluster had queued instructions.
    pub fn fully_quiescent_cycles(&self) -> u64 {
        self.fully_quiescent_cycles
    }

    /// The aggregated host timeline.
    pub fn slices(&self) -> &[HostSlice] {
        &self.slices
    }

    /// Slices dropped past the timeline cap.
    pub fn dropped_slices(&self) -> u64 {
        self.dropped_slices
    }

    /// Intra-run pool participants observed in the health samples
    /// (`0` = sequential oracle path).
    pub fn intra_threads(&self) -> usize {
        self.intra_threads
    }

    /// Folds a per-cluster counter array onto the intra-run worker
    /// partition (worker `t` owns clusters `t, t + threads, …` — the
    /// pool's strided split). Empty when no intra-run pool was active.
    fn per_thread(&self, per_cluster: &[u64; MAX_CLUSTERS]) -> Vec<u64> {
        let threads = self.intra_threads;
        if threads == 0 {
            return Vec::new();
        }
        let mut out = vec![0u64; threads];
        for (c, &n) in per_cluster.iter().enumerate() {
            out[c % threads] += n;
        }
        out
    }

    /// Events drained per intra-run worker (empty without a pool):
    /// partition imbalance at a glance.
    pub fn drained_per_thread(&self) -> Vec<u64> {
        self.per_thread(&self.drained_events)
    }

    /// Busy cluster-cycles per intra-run worker (empty without a
    /// pool).
    pub fn busy_cycles_per_thread(&self) -> Vec<u64> {
        self.per_thread(&self.cluster_busy_cycles)
    }

    /// Load skew across clusters that drained at least one event:
    /// max/mean of per-cluster drained events (1.0 = perfectly even,
    /// 0.0 when nothing drained). The parallel-partitioning work reads
    /// this to decide whether even cluster-per-thread partitions are
    /// defensible.
    pub fn drained_skew(&self) -> f64 {
        let active: Vec<u64> =
            self.drained_events.iter().copied().filter(|&n| n > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        let max = *active.iter().max().expect("non-empty") as f64;
        let mean = active.iter().sum::<u64>() as f64 / active.len() as f64;
        max / mean
    }

    /// The whole profile as one JSON document (schema documented in
    /// EXPERIMENTS.md under `host_profile`).
    pub fn to_json(&self) -> Json {
        let mut stages = Json::object();
        for (i, stage) in HostStage::ALL.iter().enumerate() {
            stages = stages.set(
                stage.as_str(),
                Json::object()
                    .set("nanos", self.stage_nanos[i])
                    .set("share", self.stage_share(*stage)),
            );
        }
        let drained: Vec<Json> =
            self.drained_events.iter().map(|&n| Json::from(n)).collect();
        let busy: Vec<Json> =
            self.cluster_busy_cycles.iter().map(|&n| Json::from(n)).collect();
        let slices: Vec<Json> = self.slices.iter().map(slice_json).collect();
        Json::object()
            .set("cycles", self.cycles)
            .set("loop_nanos", self.loop_nanos())
            .set("stages", stages)
            .set(
                "queue",
                Json::object()
                    .set("ring_occupancy", self.ring_occupancy.to_json())
                    .set("overflow_depth", self.overflow_depth.to_json())
                    .set("floor_advance", self.floor_advance.to_json())
                    .set("drained_events", self.drained_total),
            )
            .set(
                "skew",
                Json::object()
                    .set("drained_per_cluster", Json::Arr(drained))
                    .set("busy_cycles_per_cluster", Json::Arr(busy))
                    .set("busy_clusters", self.busy_clusters.to_json())
                    .set("fully_quiescent_cycles", self.fully_quiescent_cycles)
                    .set("drained_skew", self.drained_skew())
                    .set("intra_threads", self.intra_threads as u64)
                    .set(
                        "drained_per_thread",
                        Json::Arr(self.drained_per_thread().into_iter().map(Json::from).collect()),
                    )
                    .set(
                        "busy_cycles_per_thread",
                        Json::Arr(
                            self.busy_cycles_per_thread().into_iter().map(Json::from).collect(),
                        ),
                    ),
            )
            .set("sample_interval", self.sample_interval)
            .set("slices", Json::Arr(slices))
            .set("dropped_slices", self.dropped_slices)
    }

    fn close_slice(&mut self, sample: &QueueHealth, start: u64) {
        let mut stage_nanos = [0u64; HOST_STAGE_COUNT];
        for (i, n) in stage_nanos.iter_mut().enumerate() {
            *n = self.stage_nanos[i] - self.stage_at_slice[i];
        }
        let slice = HostSlice {
            start_cycle: start,
            end_cycle: sample.cycle,
            stage_nanos,
            calendar_events: sample.calendar_events,
            overflow_events: sample.overflow_events,
            busy_clusters: sample.queued_mask.count_ones(),
            drained: self.drained_total - self.drained_at_slice,
        };
        if self.slices.len() < self.slice_cap {
            self.slices.push(slice);
        } else {
            self.dropped_slices += 1;
        }
        self.stage_at_slice = self.stage_nanos;
        self.drained_at_slice = self.drained_total;
        self.slice_start = Some(sample.cycle);
    }
}

fn stage_index(stage: HostStage) -> usize {
    HostStage::ALL
        .iter()
        .position(|s| *s == stage)
        .expect("every stage is in ALL")
}

fn slice_json(s: &HostSlice) -> Json {
    let mut stages = Json::object();
    for (i, stage) in HostStage::ALL.iter().enumerate() {
        stages = stages.set(stage.as_str(), s.stage_nanos[i]);
    }
    Json::object()
        .set("start_cycle", s.start_cycle)
        .set("end_cycle", s.end_cycle)
        .set("stage_nanos", stages)
        .set("calendar_events", s.calendar_events)
        .set("overflow_events", s.overflow_events)
        .set("busy_clusters", u64::from(s.busy_clusters))
        .set("drained", s.drained)
}

impl crate::observe::SimObserver for HostProfiler {
    const WANTS_HOST_PROFILE: bool = true;

    fn on_stage_nanos(&mut self, nanos: &[u64; HOST_STAGE_COUNT]) {
        self.cycles += 1;
        for (bucket, n) in self.stage_nanos.iter_mut().zip(nanos) {
            *bucket += n;
        }
    }

    fn on_queue_health(&mut self, sample: &QueueHealth) {
        self.ring_occupancy.record(sample.calendar_events as u64);
        self.overflow_depth.record(sample.overflow_events as u64);
        if let Some(last) = self.last_floor {
            self.floor_advance.record(sample.floor.saturating_sub(last));
        }
        self.last_floor = Some(sample.floor);
        self.intra_threads = self.intra_threads.max(sample.intra_threads);
        let busy = sample.queued_mask.count_ones();
        self.busy_clusters.record(u64::from(busy));
        if busy == 0 {
            self.fully_quiescent_cycles += 1;
        }
        let mut m = sample.queued_mask;
        while m != 0 {
            let c = m.trailing_zeros() as usize;
            m &= m - 1;
            if c < MAX_CLUSTERS {
                self.cluster_busy_cycles[c] += 1;
            }
        }
        match self.slice_start {
            None => self.slice_start = Some(sample.cycle.saturating_sub(1)),
            Some(start) if sample.cycle - start >= self.sample_interval => {
                self.close_slice(sample, start);
            }
            Some(_) => {}
        }
    }

    fn on_event_drained(&mut self, shard: usize) {
        self.drained_total += 1;
        if shard < MAX_CLUSTERS {
            self.drained_events[shard] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::SimObserver;

    fn health(cycle: u64, mask: u32) -> QueueHealth {
        QueueHealth {
            cycle,
            calendar_events: 3,
            overflow_events: 0,
            floor: cycle,
            queued_mask: mask,
            active_clusters: 4,
            configured_clusters: 16,
            intra_threads: 0,
        }
    }

    #[test]
    fn stage_shares_partition_the_loop_time() {
        let mut p = HostProfiler::new(100);
        p.on_stage_nanos(&[10, 20, 30, 15, 20, 5]);
        p.on_stage_nanos(&[10, 20, 30, 15, 20, 5]);
        assert_eq!(p.cycles(), 2);
        assert_eq!(p.loop_nanos(), 200);
        let total: f64 = HostStage::ALL.iter().map(|&s| p.stage_share(s)).sum();
        assert!((total - 1.0).abs() < 1e-12, "shares sum to 1, got {total}");
        assert_eq!(p.stage_share(HostStage::Issue), 0.3);
        assert_eq!(HostProfiler::default().stage_share(HostStage::Fetch), 0.0);
    }

    #[test]
    fn queue_health_feeds_histograms_and_skew_counters() {
        let mut p = HostProfiler::new(1_000);
        p.on_queue_health(&health(1, 0b101)); // clusters 0 and 2 busy
        p.on_queue_health(&health(2, 0));
        assert_eq!(p.cluster_busy_cycles()[0], 1);
        assert_eq!(p.cluster_busy_cycles()[1], 0);
        assert_eq!(p.cluster_busy_cycles()[2], 1);
        assert_eq!(p.fully_quiescent_cycles(), 1);
        assert_eq!(p.busy_clusters.count(), 2);
        // Floor advance is a delta: only the second sample records one.
        assert_eq!(p.floor_advance.count(), 1);
    }

    /// Per-cluster load folds onto the pool's strided worker
    /// partition (cluster `c` → worker `c % threads`); without a pool
    /// the per-thread views are empty.
    #[test]
    fn per_thread_views_fold_the_strided_partition() {
        let mut p = HostProfiler::default();
        assert!(p.drained_per_thread().is_empty(), "no pool, no per-thread view");
        let mut sample = health(1, 0b111); // clusters 0..=2 busy
        sample.intra_threads = 2;
        p.on_queue_health(&sample);
        for shard in [0, 0, 1, 2, 2, 2] {
            p.on_event_drained(shard);
        }
        assert_eq!(p.intra_threads(), 2);
        // Worker 0 owns clusters 0 and 2 (2 + 3 drains, 2 busy);
        // worker 1 owns cluster 1 (1 drain, 1 busy).
        assert_eq!(p.drained_per_thread(), vec![5, 1]);
        assert_eq!(p.busy_cycles_per_thread(), vec![2, 1]);
        let j = p.to_json();
        let skew = j.get("skew").expect("skew section");
        assert_eq!(skew.get("intra_threads"), Some(&Json::from(2u64)));
    }

    #[test]
    fn drained_events_attribute_per_shard_and_compute_skew() {
        let mut p = HostProfiler::default();
        assert_eq!(p.drained_skew(), 0.0, "empty profile has no skew");
        for _ in 0..6 {
            p.on_event_drained(0);
        }
        p.on_event_drained(1);
        p.on_event_drained(1);
        assert_eq!(p.drained_total(), 8);
        assert_eq!(p.drained_events()[0], 6);
        assert_eq!(p.drained_events()[1], 2);
        // max 6 / mean 4 = 1.5.
        assert!((p.drained_skew() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_slices_aggregate_per_interval_and_cap() {
        let mut p = HostProfiler::with_cap(10, 2);
        for cycle in 1..=45u64 {
            p.on_stage_nanos(&[1, 1, 1, 1, 1, 1]);
            p.on_event_drained(0);
            p.on_queue_health(&health(cycle, 1));
        }
        // Slices close at cycles 10, 20, 30, 40; cap 2 keeps the first
        // two and counts the rest.
        assert_eq!(p.slices().len(), 2);
        assert_eq!(p.dropped_slices(), 2);
        let s = &p.slices()[0];
        assert_eq!((s.start_cycle, s.end_cycle), (0, 10));
        assert_eq!(s.stage_nanos.iter().sum::<u64>(), 60, "10 cycles × 6 ns");
        assert_eq!(s.drained, 10);
        assert_eq!(p.slices()[1].start_cycle, 10);
    }

    #[test]
    fn reset_clears_data_but_keeps_configuration() {
        let mut p = HostProfiler::with_cap(7, 3);
        p.on_stage_nanos(&[1; HOST_STAGE_COUNT]);
        p.on_event_drained(2);
        p.on_queue_health(&health(1, 1));
        p.reset();
        assert_eq!(p.cycles(), 0);
        assert_eq!(p.loop_nanos(), 0);
        assert_eq!(p.drained_total(), 0);
        assert_eq!(p.sample_interval, 7);
        assert_eq!(p.slice_cap, 3);
    }

    #[test]
    fn json_has_the_documented_sections() {
        let mut p = HostProfiler::new(10);
        p.on_stage_nanos(&[5, 5, 5, 5, 5, 5]);
        p.on_queue_health(&health(1, 0b11));
        let j = p.to_json();
        assert_eq!(
            j.keys().unwrap(),
            vec![
                "cycles",
                "loop_nanos",
                "stages",
                "queue",
                "skew",
                "sample_interval",
                "slices",
                "dropped_slices"
            ]
        );
        let stages = j.get("stages").unwrap();
        assert_eq!(
            stages.keys().unwrap(),
            vec!["event_drain", "commit", "issue", "dispatch", "fetch", "other"]
        );
        let share: f64 = HostStage::ALL
            .iter()
            .filter_map(|s| {
                stages.get(s.as_str()).and_then(|e| e.get("share")).and_then(Json::as_f64)
            })
            .sum();
        assert!((share - 1.0).abs() < 1e-9);
        let text = j.to_string_compact();
        let reparsed = clustered_stats::json::parse(&text).expect("valid JSON");
        assert_eq!(reparsed, j);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sample_interval_is_rejected() {
        let _ = HostProfiler::new(0);
    }
}
