//! The cycle-level clustered out-of-order processor.
//!
//! Trace-driven: the [`Processor`] consumes the dynamic instruction
//! stream produced by `clustered-emu` and models fetch (with a real
//! branch predictor and misprediction stalls), rename/steering,
//! per-cluster issue, inter-cluster operand transfers on a contended
//! interconnect, the LSQ/cache hierarchy of either cache model, and
//! in-order commit — with the active-cluster count under the control
//! of a [`ReconfigPolicy`].

use crate::bankpred::BankPredictor;
use crate::bpred::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::cluster::{latency_of, Cluster, Domain, FuGroup};
use crate::config::{CacheModel, ConfigError, SimConfig, MAX_CLUSTERS};
use crate::crit::CriticalityPredictor;
use crate::interconnect::Interconnect;
use crate::lsq::LsqSlice;
use crate::observe::{NullObserver, SimObserver, TransferKind};
use crate::reconfig::{CommitEvent, ReconfigPolicy, DISTANT_DEPTH};
use crate::stats::SimStats;
use crate::steer::{Steering, SteerRequest, SteeringKind};
use clustered_emu::{BranchKind, DynInst};
use clustered_isa::{ArchReg, OpClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;

const ABSENT: u64 = u64::MAX;

/// Waiter slot marking a store's data operand.
const STORE_VALUE_SLOT: u8 = 2;

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// No instruction committed for a long time — an internal modelling
    /// bug rather than a program property.
    Stalled {
        /// The cycle at which progress stopped.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::Stalled { cycle } => {
                write!(f, "pipeline made no progress near cycle {cycle}")
            }
        }
    }
}

impl Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::Config(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Result available: wake consumers, redirect fetch, etc.
    WriteBack { seq: u64 },
    /// A load's effective address left its AGU.
    LoadAddr { seq: u64 },
    /// A store's effective address left its AGU (its data may still be
    /// outstanding).
    StoreAddr { seq: u64 },
    /// A load arrived at LSQ slice `slice`.
    LoadAtLsq { seq: u64, slice: usize },
    /// A store's address (and data) became visible at LSQ slice
    /// `slice`. Carries everything needed because the store may have
    /// committed before the broadcast lands.
    StoreResolved {
        seq: u64,
        slice: usize,
        word: u64,
        own: bool,
        forward_here: bool,
    },
}

#[derive(Debug)]
struct Fetched {
    d: DynInst,
    fetched_at: u64,
    mispredicted: bool,
}

#[derive(Debug)]
struct RobEntry {
    d: DynInst,
    class: OpClass,
    cluster: usize,
    dest: Option<ArchReg>,
    /// Physical register to free at commit: (cluster, domain index).
    frees: Option<(usize, usize)>,
    srcs_outstanding: u8,
    /// When each gating source operand arrived (criticality training).
    src_arrival: [u64; 2],
    /// Which gating source slots this instruction has.
    src_present: [bool; 2],
    ready_at: u64,
    done: bool,
    done_at: u64,
    distant: bool,
    mispredicted: bool,
    /// Cycles-per-cluster availability of this entry's result.
    copies: [u64; MAX_CLUSTERS],
    /// Consumers waiting on this result: (seq, cluster, source slot —
    /// 0/1 for issue-gating operands, [`STORE_VALUE_SLOT`] for a
    /// store's data).
    waiters: Vec<(u64, usize, u8)>,
    /// Stores: cycle the AGU produced the address (`ABSENT` until then).
    agu_done: u64,
    /// Stores: cycle the data value is available in the store's cluster
    /// (`ABSENT` until known).
    store_value_at: u64,
    /// Memory: resolved bank and its cluster.
    bank: usize,
    bank_cluster: usize,
    /// LSQ slice the entry's slot was allocated in.
    alloc_slice: usize,
    /// Active cluster count when dispatched.
    active_at_dispatch: usize,
}

/// The simulated processor.
///
/// Generic over the dynamic-instruction source and over an observer
/// receiving per-event callbacks; see the crate-level documentation
/// for a complete example. The default [`NullObserver`] costs nothing
/// — its empty hooks monomorphize away.
pub struct Processor<T, O = NullObserver> {
    cfg: SimConfig,
    trace: T,
    policy: Box<dyn ReconfigPolicy>,
    net: Interconnect,
    mem: MemHierarchy,
    bpred: BranchPredictor,
    bankpred: BankPredictor,
    crit: CriticalityPredictor,
    steering: Steering,
    clusters: Vec<Cluster>,
    lsq: Vec<LsqSlice>,
    rob: VecDeque<RobEntry>,
    rename: [Option<u64>; 64],
    arch_home: [usize; 64],
    arch_avail: [[u64; MAX_CLUSTERS]; 64],
    fetch_queue: VecDeque<Fetched>,
    fetch_stall_until: u64,
    awaiting_redirect: bool,
    dispatch_stall_until: u64,
    trace_done: bool,
    /// Reused issue-selection scratch buffer.
    selected: Vec<(u64, FuGroup, usize)>,
    events: BinaryHeap<Reverse<(u64, u64, EventKind)>>,
    /// Loads whose forwarding store has not produced its data yet, as
    /// (store seq, load seq, LSQ slice) in arrival order. Bounded by
    /// LSQ capacity and near-empty in practice, so a flat vector beats
    /// the former per-store hash map: no hashing on the store
    /// writeback path and no per-store `Vec` allocation.
    loads_waiting_data: Vec<(u64, u64, usize)>,
    /// Scratch for draining `loads_waiting_data` matches without
    /// holding a borrow across `proceed_load`.
    waiting_scratch: Vec<(u64, usize)>,
    /// Reused rename-time scratch for (producer seq, source slot)
    /// waiter registrations.
    pending_waits: Vec<(u64, u8)>,
    /// Recycled waiter vectors: consumers lists drained at writeback
    /// keep their capacity for future ROB entries instead of being
    /// reallocated once per producing instruction.
    waiter_pool: Vec<Vec<(u64, usize, u8)>>,
    event_tick: u64,
    now: u64,
    active: usize,
    pending_reconfig: Option<usize>,
    reconfig_request: Option<usize>,
    stats: SimStats,
    observer: O,
}

/// Occupancy of the machine's structures at one instant (see
/// [`Processor::occupancy_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// Re-order-buffer entries in flight.
    pub rob: usize,
    /// Fetch-queue entries waiting to dispatch.
    pub fetch_queue: usize,
    /// Free physical registers per cluster, `[int, fp]`.
    pub free_regs: Vec<[usize; 2]>,
    /// Issue-queue entries in use per cluster, `[int, fp]`.
    pub iq_used: Vec<[usize; 2]>,
    /// Load/store-queue slots in use per slice.
    pub lsq_used: Vec<usize>,
}

/// Rounds a requested cluster count to the nearest legal value: in
/// `1..=total`, and — when `pow2` (the decentralized model, whose bank
/// interleaving masks addresses) — a power of two, rounding down.
fn legal_cluster_count(request: usize, total: usize, pow2: bool) -> usize {
    let clamped = request.clamp(1, total);
    if !pow2 || clamped.is_power_of_two() {
        clamped
    } else {
        clamped.next_power_of_two() / 2
    }
}

impl<T: Iterator<Item = DynInst>> Processor<T> {
    /// Builds a processor over `trace` governed by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn new(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
    ) -> Result<Processor<T>, SimError> {
        Self::with_steering(cfg, trace, policy, SteeringKind::default())
    }

    /// Builds a processor with an explicit steering heuristic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_steering(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
    ) -> Result<Processor<T>, SimError> {
        Processor::with_observer(cfg, trace, policy, steering, NullObserver)
    }
}

impl<T: Iterator<Item = DynInst>, O: SimObserver> Processor<T, O> {
    /// Builds a processor whose pipeline events are reported to
    /// `observer` (see [`SimObserver`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if `cfg` fails validation.
    pub fn with_observer(
        cfg: SimConfig,
        trace: T,
        policy: Box<dyn ReconfigPolicy>,
        steering: SteeringKind,
        observer: O,
    ) -> Result<Processor<T, O>, SimError> {
        cfg.validate()?;
        let count = cfg.clusters.count;
        // Architectural registers are homed round-robin across the
        // physical clusters and occupy a register there.
        let mut reserved = [[0usize; 2]; MAX_CLUSTERS];
        let mut arch_home = [0usize; 64];
        for r in 0..64 {
            let home = r % count;
            arch_home[r] = home;
            reserved[home][usize::from(r >= 32)] += 1;
        }
        let clusters: Vec<Cluster> = (0..count)
            .map(|c| Cluster::new(&cfg.clusters, reserved[c][0], reserved[c][1]))
            .collect();
        let lsq = match cfg.cache.model {
            CacheModel::Centralized => vec![LsqSlice::new(cfg.cache.lsq_per_cluster * count)],
            CacheModel::Decentralized => {
                (0..count).map(|_| LsqSlice::new(cfg.cache.lsq_per_cluster)).collect()
            }
        };
        let initial = legal_cluster_count(
            policy.initial_clusters(),
            count,
            cfg.cache.model == CacheModel::Decentralized,
        );
        Ok(Processor {
            net: Interconnect::new(&cfg.interconnect, count),
            mem: MemHierarchy::new(&cfg.cache, count),
            bpred: BranchPredictor::new(&cfg.bpred),
            bankpred: BankPredictor::new(&cfg.bankpred),
            crit: CriticalityPredictor::new(cfg.crit.table_size),
            steering: Steering::new(steering),
            clusters,
            lsq,
            rob: VecDeque::with_capacity(cfg.frontend.rob_size),
            rename: [None; 64],
            arch_home,
            arch_avail: [[0; MAX_CLUSTERS]; 64],
            fetch_queue: VecDeque::with_capacity(cfg.frontend.fetch_queue),
            fetch_stall_until: 0,
            awaiting_redirect: false,
            dispatch_stall_until: 0,
            trace_done: false,
            selected: Vec::new(),
            events: BinaryHeap::new(),
            loads_waiting_data: Vec::new(),
            waiting_scratch: Vec::new(),
            pending_waits: Vec::new(),
            waiter_pool: Vec::new(),
            event_tick: 0,
            now: 0,
            active: initial,
            pending_reconfig: None,
            reconfig_request: None,
            stats: SimStats::default(),
            observer,
            cfg,
            trace,
            policy,
        })
    }

    /// Accumulated statistics (monotonic; snapshot and use
    /// [`SimStats::delta_since`] to measure an interval).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably (e.g. to drain collected data
    /// between measurement windows).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// The currently active cluster count.
    pub fn active_clusters(&self) -> usize {
        self.active
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// A snapshot of structure occupancies, for debugging and
    /// introspection.
    pub fn occupancy_snapshot(&self) -> OccupancySnapshot {
        OccupancySnapshot {
            rob: self.rob.len(),
            fetch_queue: self.fetch_queue.len(),
            free_regs: self.clusters.iter().map(|c| c.free_regs).collect(),
            iq_used: self.clusters.iter().map(|c| c.iq_used).collect(),
            lsq_used: self.lsq.iter().map(LsqSlice::occupancy).collect(),
        }
    }

    /// Whether the instruction source is exhausted and the pipeline
    /// has drained.
    pub fn finished(&self) -> bool {
        self.trace_done && self.fetch_queue.is_empty() && self.rob.is_empty()
    }

    /// Runs until `instructions` more have committed, the trace ends,
    /// or an error occurs. Returns the statistics snapshot.
    ///
    /// # Errors
    ///
    /// [`SimError::Stalled`] if the pipeline stops making progress (an
    /// internal invariant violation, not a program property).
    pub fn run(&mut self, instructions: u64) -> Result<SimStats, SimError> {
        let target = self.stats.committed + instructions;
        let mut last_progress = (self.stats.committed, self.now);
        while self.stats.committed < target && !self.finished() {
            self.step_cycle();
            if self.stats.committed != last_progress.0 {
                last_progress = (self.stats.committed, self.now);
            } else if self.now - last_progress.1 > 1_000_000 {
                return Err(SimError::Stalled { cycle: self.now });
            }
        }
        Ok(self.stats)
    }

    /// Advances the machine one cycle.
    fn step_cycle(&mut self) {
        self.now += 1;
        self.drain_events();
        self.commit();
        self.apply_reconfig();
        self.issue();
        self.dispatch();
        self.fetch();
        self.stats.cycles += 1;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.stats.active_cluster_cycles += self.active as u64;
        self.stats.cycles_at_config[self.active - 1] += 1;
        self.observer.on_cycle(self.now, self.active, self.rob.len());
    }

    // ------------------------------------------------------ events

    fn schedule(&mut self, time: u64, kind: EventKind) {
        self.event_tick += 1;
        self.events.push(Reverse((time, self.event_tick, kind)));
    }

    fn drain_events(&mut self) {
        while let Some(&Reverse((t, _, kind))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            match kind {
                EventKind::WriteBack { seq } => self.writeback(seq),
                EventKind::LoadAddr { seq } => self.load_addr(seq),
                EventKind::StoreAddr { seq } => self.store_addr(seq),
                EventKind::LoadAtLsq { seq, slice } => self.load_at_lsq(seq, slice),
                EventKind::StoreResolved { seq, slice, word, own, forward_here } => {
                    self.store_resolved(seq, slice, word, own, forward_here)
                }
            }
        }
    }

    /// A cache-related transfer between clusters: free when local,
    /// otherwise routed on the interconnect and counted.
    fn routed_cache_transfer(&mut self, from: usize, to: usize, earliest: u64) -> u64 {
        if from == to {
            earliest
        } else {
            let hops = self.net.distance(from, to);
            self.stats.cache_transfers += 1;
            self.stats.cache_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Cache, from, to, hops);
            self.net.transfer(from, to, earliest)
        }
    }

    /// The LSQ slice holding forwarding state for a resolved bank:
    /// the central slice for the centralized model, the bank's own
    /// slice otherwise.
    fn forward_slice(&self, bank: usize) -> usize {
        match self.cfg.cache.model {
            CacheModel::Centralized => 0,
            CacheModel::Decentralized => bank,
        }
    }

    fn rob_index(&self, seq: u64) -> usize {
        let head = self.rob.front().expect("ROB empty while indexing").d.seq;
        (seq - head) as usize
    }

    fn writeback(&mut self, seq: u64) {
        let idx = self.rob_index(seq);
        let cluster = self.rob[idx].cluster;
        self.rob[idx].done = true;
        self.rob[idx].done_at = self.now;
        self.rob[idx].copies[cluster] = self.now;

        // Wake consumers, transferring the value to their clusters.
        let waiters = std::mem::take(&mut self.rob[idx].waiters);
        for &(wseq, wcluster, slot) in &waiters {
            let arrival = self.value_arrival(idx, wcluster);
            self.source_arrived(wseq, arrival, slot);
        }
        self.recycle_waiters(waiters);

        // A mispredicted control transfer restarts fetch once the
        // redirect reaches the front end (co-located with cluster 0).
        if self.rob[idx].mispredicted && self.rob[idx].d.branch.is_some() {
            let resume = self.now
                + self.net.latency(cluster, 0)
                + self.cfg.frontend.mispredict_penalty;
            self.fetch_stall_until = self.fetch_stall_until.max(resume);
            self.awaiting_redirect = false;
        }

        // A store's writeback means address *and* data are known:
        // finalise its forwarding record at the bank slice and release
        // any loads waiting on its data.
        if self.rob[idx].class == OpClass::Store {
            let mem_access = self.rob[idx].d.mem.expect("store without address");
            let fslice = self.forward_slice(self.rob[idx].bank);
            let avail = self.now + self.net.latency(cluster, fslice);
            self.lsq[fslice].update_store_data(mem_access.addr >> 3, seq, avail);
            if !self.loads_waiting_data.is_empty() {
                let mut waiting = std::mem::take(&mut self.waiting_scratch);
                self.loads_waiting_data.retain(|&(store, load, slice)| {
                    let matches = store == seq;
                    if matches {
                        waiting.push((load, slice));
                    }
                    !matches
                });
                for (load_seq, slice) in waiting.drain(..) {
                    self.proceed_load(load_seq, slice);
                }
                self.waiting_scratch = waiting;
            }
        }
    }

    /// Returns a waiter vector's capacity to the reuse pool (bounded
    /// so a pathological phase cannot pin memory).
    fn recycle_waiters(&mut self, mut waiters: Vec<(u64, usize, u8)>) {
        if waiters.capacity() > 0 && self.waiter_pool.len() < 256 {
            waiters.clear();
            self.waiter_pool.push(waiters);
        }
    }

    /// When `entry`'s result reaches cluster `to`, scheduling a
    /// transfer if it is not already there or en route.
    fn value_arrival(&mut self, idx: usize, to: usize) -> u64 {
        let from = self.rob[idx].cluster;
        let done = self.rob[idx].done_at;
        if self.rob[idx].copies[to] != ABSENT {
            return self.rob[idx].copies[to];
        }
        let arrival = if to == from {
            done
        } else {
            let a = self.net.transfer(from, to, done.max(self.now));
            let hops = self.net.distance(from, to);
            self.stats.reg_transfers += 1;
            self.stats.reg_transfer_hops += hops;
            self.observer.on_transfer(self.now, TransferKind::Register, from, to, hops);
            a
        };
        self.rob[idx].copies[to] = arrival;
        arrival
    }

    fn source_arrived(&mut self, seq: u64, arrival: u64, slot: u8) {
        let idx = self.rob_index(seq);
        if slot == STORE_VALUE_SLOT {
            // A store's data operand: it does not gate address
            // generation, only the store's completion.
            self.rob[idx].store_value_at = arrival;
            if self.rob[idx].agu_done != ABSENT {
                let t = self.rob[idx].agu_done.max(arrival).max(self.now);
                self.schedule(t, EventKind::WriteBack { seq });
            }
            return;
        }
        let e = &mut self.rob[idx];
        e.src_arrival[slot as usize] = arrival;
        e.ready_at = e.ready_at.max(arrival);
        e.srcs_outstanding -= 1;
        if e.srcs_outstanding == 0 {
            let (cluster, group, ready_at) = (e.cluster, FuGroup::of(e.class), e.ready_at);
            self.clusters[cluster].enqueue(group, ready_at, seq);
        }
    }

    fn broadcast_store(&mut self, idx: usize) {
        let seq = self.rob[idx].d.seq;
        let cluster = self.rob[idx].cluster;
        let addr = self.rob[idx].d.mem.expect("store without address").addr;
        let word = addr >> 3;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                self.rob[idx].bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(
                    at.max(self.now),
                    EventKind::StoreResolved { seq, slice: 0, word, own: true, forward_here: true },
                );
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank;
                self.rob[idx].bank_cluster = bank;
                for k in 0..active {
                    let at = self.routed_cache_transfer(cluster, k, self.now);
                    self.schedule(
                        at.max(self.now),
                        EventKind::StoreResolved {
                            seq,
                            slice: k,
                            word,
                            own: k == cluster,
                            forward_here: k == bank,
                        },
                    );
                }
            }
        }
    }

    fn store_addr(&mut self, seq: u64) {
        let idx = self.rob_index(seq);
        self.rob[idx].agu_done = self.now;
        // Address known: broadcast for disambiguation/dummy release.
        self.broadcast_store(idx);
        let value_at = self.rob[idx].store_value_at;
        if value_at != ABSENT {
            self.schedule(value_at.max(self.now), EventKind::WriteBack { seq });
        }
    }

    fn load_addr(&mut self, seq: u64) {
        let idx = self.rob_index(seq);
        let cluster = self.rob[idx].cluster;
        let addr = self.rob[idx].d.mem.expect("load without address").addr;
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                self.rob[idx].bank = self.mem.bank_of(addr, self.cfg.cache.l1_banks);
                self.rob[idx].bank_cluster = 0;
                let at = self.routed_cache_transfer(cluster, 0, self.now);
                self.schedule(at.max(self.now), EventKind::LoadAtLsq { seq, slice: 0 });
            }
            CacheModel::Decentralized => {
                let active = self.rob[idx].active_at_dispatch;
                let bank = self.mem.bank_of(addr, active);
                self.rob[idx].bank = bank;
                self.rob[idx].bank_cluster = bank;
                let at = self.routed_cache_transfer(cluster, bank, self.now);
                self.schedule(at.max(self.now), EventKind::LoadAtLsq { seq, slice: bank });
            }
        }
    }

    fn load_at_lsq(&mut self, seq: u64, slice: usize) {
        if self.lsq[slice].blocked(seq) {
            self.lsq[slice].park(seq);
        } else {
            self.proceed_load(seq, slice);
        }
    }

    fn proceed_load(&mut self, seq: u64, slice: usize) {
        let idx = self.rob_index(seq);
        let mem_access = self.rob[idx].d.mem.expect("load without address");
        let (bank, bank_cluster, cluster) =
            (self.rob[idx].bank, self.rob[idx].bank_cluster, self.rob[idx].cluster);
        let word = mem_access.addr >> 3;
        let data_at_bank = match self.lsq[slice].forward_source(word, seq) {
            Some((store_seq, avail)) => {
                if avail == ABSENT {
                    // The matching store's data is still being computed;
                    // retry when it writes back.
                    self.loads_waiting_data.push((store_seq, seq, slice));
                    return;
                }
                self.stats.lsq_forwards += 1;
                avail.max(self.now) + 1
            }
            None => {
                let ready = self.mem.access(
                    &mut self.net,
                    bank,
                    bank_cluster,
                    mem_access.addr,
                    false,
                    self.now,
                    &mut self.stats,
                );
                self.observer.on_cache_access(self.now, bank, false, ready);
                ready
            }
        };
        // Data returns to the consuming cluster: from cluster 0 for the
        // centralized cache, from the bank's cluster otherwise.
        let home = self.forward_slice(bank_cluster);
        let back = self.routed_cache_transfer(home, cluster, data_at_bank);
        self.schedule(back.max(self.now + 1), EventKind::WriteBack { seq });
    }

    fn store_resolved(&mut self, seq: u64, slice: usize, word: u64, own: bool, forward_here: bool) {
        if forward_here {
            // Only record forwarding state for stores still in flight;
            // committed stores have already written the cache. If the
            // store's data is still outstanding, record a placeholder
            // that its writeback fills in.
            let in_flight = self.rob.front().is_some_and(|h| seq >= h.d.seq);
            if in_flight {
                let idx = self.rob_index(seq);
                let avail = if self.rob[idx].done {
                    // The data may have been produced after the address
                    // broadcast departed; it still needs its own trip.
                    let extra = self.net.latency(self.rob[idx].cluster, slice);
                    self.now.max(self.rob[idx].done_at + extra)
                } else {
                    ABSENT
                };
                self.lsq[slice].record_store_data(word, seq, avail);
            }
        }
        if !own {
            // Dummy slot released on broadcast arrival.
            self.lsq[slice].release();
        }
        let freed = self.lsq[slice].resolve_store(seq);
        for load in freed {
            self.proceed_load(load, slice);
        }
    }

    // ------------------------------------------------------ commit

    fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.frontend.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.done_at > self.now {
                break;
            }
            let e = self.rob.pop_front().expect("just peeked");
            n += 1;
            self.retire(e);
        }
        self.take_policy_request();
    }

    fn retire(&mut self, mut e: RobEntry) {
        // Waiters were drained at writeback; recycle whatever capacity
        // the entry still holds.
        let waiters = std::mem::take(&mut e.waiters);
        self.recycle_waiters(waiters);
        // Stores write their bank at commit (tags, port, stats); the
        // data is buffered so commit itself does not wait.
        match e.class {
            OpClass::Store => {
                let mem_access = e.d.mem.expect("store without address");
                let ready = self.mem.access(
                    &mut self.net,
                    e.bank,
                    e.bank_cluster,
                    mem_access.addr,
                    true,
                    self.now,
                    &mut self.stats,
                );
                self.observer.on_cache_access(self.now, e.bank, true, ready);
                self.lsq[e.alloc_slice].release();
                let forward_slice = self.forward_slice(e.bank);
                self.lsq[forward_slice].remove_store_data(mem_access.addr >> 3, e.d.seq);
                self.stats.stores += 1;
                self.stats.memrefs += 1;
            }
            OpClass::Load => {
                self.lsq[e.alloc_slice].release();
                self.stats.loads += 1;
                self.stats.memrefs += 1;
            }
            _ => {}
        }
        if let Some((cluster, domain)) = e.frees {
            self.clusters[cluster].free_regs[domain] += 1;
        }
        if let Some(dest) = e.dest {
            let r = dest.unified_index();
            if self.rename[r] == Some(e.d.seq) {
                self.rename[r] = None;
                self.arch_home[r] = e.cluster;
                self.arch_avail[r] = e.copies;
            }
        }
        self.stats.committed += 1;
        if e.distant {
            self.stats.distant_issues += 1;
        }
        let mut is_cond = false;
        let mut is_call = false;
        let mut is_return = false;
        if let Some(b) = e.d.branch {
            self.stats.branches += 1;
            is_cond = b.kind == BranchKind::Conditional;
            is_call = matches!(b.kind, BranchKind::Call | BranchKind::IndirectCall);
            is_return = b.kind == BranchKind::Return;
            if is_cond {
                self.stats.cond_branches += 1;
            }
            if e.mispredicted {
                self.stats.mispredicts += 1;
            }
        }
        let event = CommitEvent {
            seq: e.d.seq,
            pc: e.d.pc,
            cycle: self.now,
            is_branch: e.d.branch.is_some(),
            is_cond_branch: is_cond,
            is_call,
            is_return,
            is_memref: e.d.mem.is_some(),
            distant: e.distant,
            mispredicted: e.mispredicted,
        };
        self.observer.on_commit(&event);
        if let Some(request) = self.policy.on_commit(&event) {
            self.reconfig_request = Some(request);
        }
        // Decision telemetry is drained only for observers that opt
        // in; the branch is a compile-time constant, so NullObserver
        // runs carry no polling at all.
        if O::WANTS_DECISIONS {
            if let Some(decision) = self.policy.take_decision() {
                self.observer.on_decision(&decision);
            }
        }
    }

    fn take_policy_request(&mut self) {
        let Some(request) = self.reconfig_request.take() else { return };
        let request = legal_cluster_count(
            request,
            self.cfg.clusters.count,
            self.cfg.cache.model == CacheModel::Decentralized,
        );
        match self.cfg.cache.model {
            CacheModel::Centralized => {
                if request != self.active {
                    self.observer.on_reconfig(self.now, self.active, request);
                    self.active = request;
                    self.stats.reconfigurations += 1;
                }
            }
            CacheModel::Decentralized => {
                // A request back to the current configuration cancels a
                // not-yet-applied switch instead of scheduling a
                // drain + flush to the configuration already in use.
                self.pending_reconfig = (request != self.active).then_some(request);
            }
        }
    }

    fn apply_reconfig(&mut self) {
        let Some(target) = self.pending_reconfig else { return };
        // The bank interleaving changes, so the pipeline drains and the
        // L1 is flushed to L2 while the processor stalls (paper §5).
        if !self.rob.is_empty() {
            return;
        }
        let (writebacks, stall) = self.mem.flush_l1();
        self.stats.flush_writebacks += writebacks;
        self.stats.flush_stall_cycles += stall;
        self.dispatch_stall_until = self.now + stall;
        self.observer.on_flush_stall(self.now, stall, writebacks);
        self.observer.on_reconfig(self.now, self.active, target);
        self.active = target;
        self.stats.reconfigurations += 1;
        self.pending_reconfig = None;
    }

    // ------------------------------------------------------ issue

    fn issue(&mut self) {
        let head_seq = self.rob.front().map(|e| e.d.seq);
        let mut selected = std::mem::take(&mut self.selected);
        for c in 0..self.clusters.len() {
            selected.clear();
            self.clusters[c].select(self.now, &mut selected);
            for &(seq, group, unit) in &selected {
                let idx = self.rob_index(seq);
                let class = self.rob[idx].class;
                let (lat, pipelined) = latency_of(&self.cfg.exec, class);
                let busy_until = if pipelined { self.now + 1 } else { self.now + lat };
                self.clusters[c].occupy(group, unit, busy_until);
                self.clusters[c].iq_used[Domain::of(class).index()] -= 1;
                self.observer.on_issue(self.now, seq, c);
                self.rob[idx].distant =
                    head_seq.is_some_and(|h| seq - h >= DISTANT_DEPTH);
                // Train the criticality predictor with the operand that
                // arrived last.
                if self.rob[idx].src_present == [true, true] {
                    let [a0, a1] = self.rob[idx].src_arrival;
                    self.crit.update(self.rob[idx].d.pc, usize::from(a1 >= a0));
                }
                match class {
                    OpClass::Load => {
                        self.schedule(self.now + self.cfg.exec.int_alu, EventKind::LoadAddr { seq })
                    }
                    OpClass::Store => self
                        .schedule(self.now + self.cfg.exec.int_alu, EventKind::StoreAddr { seq }),
                    _ => self.schedule(self.now + lat, EventKind::WriteBack { seq }),
                }
            }
        }
        self.selected = selected;
    }

    // ------------------------------------------------------ dispatch

    fn dispatch(&mut self) {
        if self.pending_reconfig.is_some() || self.now < self.dispatch_stall_until {
            return;
        }
        for _ in 0..self.cfg.frontend.dispatch_width {
            if self.rob.len() >= self.cfg.frontend.rob_size {
                self.stats.dispatch_stall_rob += 1;
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                self.stats.dispatch_stall_fetch += 1;
                break;
            };
            if front.fetched_at >= self.now {
                self.stats.dispatch_stall_fetch += 1;
                break;
            }
            if !self.try_dispatch_one() {
                self.stats.dispatch_stall_resources += 1;
                break;
            }
        }
    }

    /// Attempts to dispatch the head of the fetch queue; returns false
    /// on a structural stall.
    fn try_dispatch_one(&mut self) -> bool {
        let front = self.fetch_queue.front().expect("checked by caller");
        let d = front.d;
        let mispredicted = front.mispredicted;
        let class = d.inst.op_class();
        let sources = d.inst.sources();
        let dest = d.inst.dest();
        let domain = Domain::of(class);

        // Producer clusters and criticality estimates for steering.
        let mut producer: [Option<usize>; 2] = [None; 2];
        let mut estimate: [u64; 2] = [0; 2];
        for (i, src) in sources.iter().enumerate() {
            let Some(r) = src else { continue };
            let r = r.unified_index();
            match self.rename[r] {
                Some(pseq) => {
                    let p = &self.rob[self.rob_index(pseq)];
                    producer[i] = Some(p.cluster);
                    estimate[i] = if p.done { p.done_at } else { ABSENT };
                }
                None => {
                    producer[i] = Some(self.arch_home[r]);
                    estimate[i] = self.arch_avail[r][self.arch_home[r]];
                }
            }
        }
        // Pick the predicted-critical operand: a trained table when
        // enabled (the paper's configuration), otherwise the
        // dispatch-time arrival estimate.
        let critical_slot = if producer[0].is_none() || producer[1].is_none() {
            usize::from(producer[0].is_none())
        } else if self.cfg.crit.enabled {
            self.crit.predict(d.pc)
        } else {
            usize::from(estimate[1] > estimate[0])
        };
        let (critical, other) = (producer[critical_slot], producer[1 - critical_slot]);

        // Decentralized loads/stores prefer the predicted bank's
        // cluster; the predictor's full-width output is masked to the
        // active count (paper §5).
        let is_memref = matches!(class, OpClass::Load | OpClass::Store);
        let decentralized = self.cfg.cache.model == CacheModel::Decentralized;
        // Prediction (lookup only) happens here because steering needs
        // the bank; training and statistics happen only once dispatch
        // actually consumes the instruction, so a structurally stalled
        // memref retried every cycle is not re-trained or double-counted.
        let predicted_bank = if decentralized && is_memref {
            let full_mask = self.cfg.clusters.count - 1;
            (self.bankpred.predict(d.pc) as usize & full_mask) & (self.active - 1)
        } else {
            0
        };
        let bank_cluster = (decentralized && is_memref).then_some(predicted_bank);

        // LSQ capacity: loads need their own slice, stores need every
        // active slice (dummy slots); the centralized pool needs one
        // slot either way.
        match (self.cfg.cache.model, class) {
            (CacheModel::Centralized, OpClass::Load | OpClass::Store)
                if !self.lsq[0].has_space() => {
                    return false;
                }
            (CacheModel::Decentralized, OpClass::Store)
                if !(0..self.active).all(|k| self.lsq[k].has_space()) => {
                    return false;
                }
            _ => {}
        }

        let dest_domain = dest.map(|r| usize::from(!r.is_int()));
        // A decentralized load also needs a slot in the steered
        // cluster's LSQ slice: fold that into the steering mask so a
        // stateful heuristic (Mod_N cursor) never picks a cluster the
        // dispatch then has to reject. (Loads to the zero register have
        // no destination but still occupy a slice slot, hence the
        // `needs_reg` widening.)
        let load_needs_slice = decentralized && class == OpClass::Load;
        let needs_reg = dest.is_some() || load_needs_slice;
        let mut occupancy = [0usize; MAX_CLUSTERS];
        let mut has_free_reg = [false; MAX_CLUSTERS];
        for c in 0..self.active {
            occupancy[c] = self.clusters[c].iq_used[domain.index()];
            has_free_reg[c] = match dest_domain {
                Some(k) => self.clusters[c].free_regs[k] > 0,
                None => true,
            } && (!load_needs_slice || self.lsq[c].has_space());
        }
        let request = SteerRequest {
            active: self.active,
            occupancy: &occupancy[..self.clusters.len()],
            capacity: self.clusters[0].iq_cap[domain.index()],
            has_free_reg: &has_free_reg[..self.clusters.len()],
            needs_reg,
            critical_producer: critical,
            other_producer: other,
            bank_cluster,
        };
        let Some(cluster) = self.steering.choose(&request) else { return false };

        // All structural checks passed: consume the fetch-queue entry.
        self.fetch_queue.pop_front();
        self.stats.dispatched += 1;
        self.observer.on_dispatch(self.now, d.seq, cluster);
        if decentralized && is_memref {
            // Train the bank predictor in program order and account
            // accuracy, now that this memref definitely dispatches.
            let full_mask = self.cfg.clusters.count - 1;
            let actual_full =
                (d.mem.expect("memref without address").addr >> 3) as usize & full_mask;
            self.bankpred.update(d.pc, actual_full as u8);
            self.stats.bank_predictions += 1;
            if predicted_bank != actual_full & (self.active - 1) {
                self.stats.bank_mispredictions += 1;
            }
        }
        self.clusters[cluster].iq_used[domain.index()] += 1;
        if let Some(k) = dest_domain {
            self.clusters[cluster].free_regs[k] -= 1;
        }
        let alloc_slice = match (self.cfg.cache.model, class) {
            (CacheModel::Centralized, OpClass::Load | OpClass::Store) => {
                self.lsq[0].allocate();
                if class == OpClass::Store {
                    self.lsq[0].add_unresolved_store(d.seq);
                }
                0
            }
            (CacheModel::Decentralized, OpClass::Load) => {
                self.lsq[cluster].allocate();
                cluster
            }
            (CacheModel::Decentralized, OpClass::Store) => {
                for k in 0..self.active {
                    self.lsq[k].allocate();
                    self.lsq[k].add_unresolved_store(d.seq);
                }
                cluster
            }
            _ => 0,
        };

        // Rename: record what this destination frees at commit.
        let frees = dest.map(|r| {
            let ri = r.unified_index();
            let k = usize::from(!r.is_int());
            match self.rename[ri] {
                Some(pseq) => (self.rob[self.rob_index(pseq)].cluster, k),
                None => (self.arch_home[ri], k),
            }
        });

        let mut entry = RobEntry {
            d,
            class,
            cluster,
            dest,
            frees,
            srcs_outstanding: 0,
            src_arrival: [0; 2],
            src_present: [false; 2],
            ready_at: self.now + 1 + self.net.latency(0, cluster),
            done: false,
            done_at: 0,
            distant: false,
            mispredicted,
            copies: [ABSENT; MAX_CLUSTERS],
            waiters: self.waiter_pool.pop().unwrap_or_default(),
            agu_done: ABSENT,
            store_value_at: ABSENT,
            bank: 0,
            bank_cluster: 0,
            alloc_slice,
            active_at_dispatch: self.active,
        };

        // Resolve sources: architectural and completed values get (or
        // schedule) a local copy; in-flight producers get a waiter.
        let seq = d.seq;
        let mut pending_waits = std::mem::take(&mut self.pending_waits);
        let mut store_value_waited = false;
        for (i, src) in sources.iter().enumerate() {
            let Some(src) = src else { continue };
            // A store's second source is its data: it gates completion
            // but not address generation.
            let store_value = class == OpClass::Store && i == 1;
            if !store_value {
                entry.src_present[i] = true;
            }
            let r = src.unified_index();
            match self.rename[r] {
                Some(pseq) => {
                    let pidx = self.rob_index(pseq);
                    if self.rob[pidx].done {
                        let arrival = self.value_arrival(pidx, cluster);
                        if store_value {
                            entry.store_value_at = arrival;
                        } else {
                            entry.src_arrival[i] = arrival;
                            entry.ready_at = entry.ready_at.max(arrival);
                        }
                    } else if store_value {
                        store_value_waited = true;
                        pending_waits.push((pseq, STORE_VALUE_SLOT));
                    } else {
                        entry.srcs_outstanding += 1;
                        pending_waits.push((pseq, i as u8));
                    }
                }
                None => {
                    let arrival = self.arch_value_arrival(r, cluster);
                    if store_value {
                        entry.store_value_at = arrival;
                    } else {
                        entry.src_arrival[i] = arrival;
                        entry.ready_at = entry.ready_at.max(arrival);
                    }
                }
            }
        }
        if class == OpClass::Store && entry.store_value_at == ABSENT && !store_value_waited {
            // Stores of the zero register have no data dependence.
            entry.store_value_at = 0;
        }
        if let Some(r) = dest.map(ArchReg::unified_index) {
            self.rename[r] = Some(seq);
        }
        if entry.srcs_outstanding == 0 {
            let (group, ready_at) = (FuGroup::of(class), entry.ready_at);
            self.clusters[cluster].enqueue(group, ready_at, seq);
        }
        self.rob.push_back(entry);
        for &(pseq, slot) in &pending_waits {
            let pidx = self.rob_index(pseq);
            self.rob[pidx].waiters.push((seq, cluster, slot));
        }
        pending_waits.clear();
        self.pending_waits = pending_waits;
        true
    }

    fn arch_value_arrival(&mut self, r: usize, to: usize) -> u64 {
        if self.arch_avail[r][to] != ABSENT {
            return self.arch_avail[r][to];
        }
        let home = self.arch_home[r];
        let base = self.arch_avail[r][home];
        let arrival = self.net.transfer(home, to, base.max(self.now));
        let hops = self.net.distance(home, to);
        self.stats.reg_transfers += 1;
        self.stats.reg_transfer_hops += hops;
        self.observer.on_transfer(self.now, TransferKind::Register, home, to, hops);
        self.arch_avail[r][to] = arrival;
        arrival
    }

    // ------------------------------------------------------ fetch

    fn fetch(&mut self) {
        if self.trace_done || self.awaiting_redirect || self.now < self.fetch_stall_until {
            return;
        }
        let mut fetched = 0;
        let mut blocks = 0;
        while fetched < self.cfg.frontend.fetch_width
            && self.fetch_queue.len() < self.cfg.frontend.fetch_queue
        {
            let Some(d) = self.trace.next() else {
                self.trace_done = true;
                break;
            };
            let mut mispredicted = false;
            let mut block_ended = false;
            if let Some(outcome) = d.branch {
                let prediction = self.bpred.predict_and_update(d.pc, &outcome);
                mispredicted = !prediction.correct;
                block_ended = true;
            }
            self.fetch_queue.push_back(Fetched { d, fetched_at: self.now, mispredicted });
            fetched += 1;
            if mispredicted {
                // Wrong path: fetch stalls until the branch resolves.
                self.awaiting_redirect = true;
                break;
            }
            if block_ended {
                blocks += 1;
                if blocks >= self.cfg.frontend.max_basic_blocks {
                    break;
                }
            }
        }
    }
}

impl<T, O> fmt::Debug for Processor<T, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Processor")
            .field("cycle", &self.now)
            .field("active", &self.active)
            .field("committed", &self.stats.committed)
            .field("rob_occupancy", &self.rob.len())
            .field("policy", &self.policy.name())
            .finish_non_exhaustive()
    }
}
