//! Cycle-accurate slot reservation for single-issue resources
//! (interconnect links, cache-bank ports).
//!
//! Each resource can serve one request per cycle. Requests arrive in
//! arbitrary *simulation* order but may target future cycles (a fill
//! returning in 30 cycles reserves its return trip now), so a simple
//! monotonic "next free" watermark would serialise unrelated requests
//! behind far-future reservations. Instead every resource remembers
//! which cycles within a sliding window are taken and grants the first
//! free cycle at or after the requested time.
//!
//! The window is a cycle-stamped ring: slot `t % WINDOW` of a resource
//! holds the exact cycle it was last reserved for, so "is cycle `t`
//! taken" is one array compare (`ring[t % WINDOW] == t`) and stale
//! entries from a window ago can never false-positive. Reservations
//! are probed only near the current simulation time (the farthest
//! lookahead is a memory round trip, far below [`WINDOW`]), the same
//! assumption the previous tree-based implementation made when pruning
//! old entries.

/// Sliding-window length in cycles; must be a power of two and larger
/// than any scheduling lookahead. Sized just past the real lookahead
/// (a memory round trip plus contention queueing, a few hundred
/// cycles): every resource's ring is hot-loop working set, and an
/// oversized window turns each reservation into a cache miss. Two
/// *concurrently live* reservations a full window apart would alias to
/// the same slot; the debug assertion in [`SlotReservations::reserve`]
/// pins that they never are.
const WINDOW: usize = 1024;

/// Per-resource one-slot-per-cycle reservation tracking.
#[derive(Debug, Clone, Default)]
pub struct SlotReservations {
    /// `ring[r * WINDOW + (t & (WINDOW-1))] == t` ⇔ cycle `t` of
    /// resource `r` is reserved; `u64::MAX` means never reserved.
    ring: Vec<u64>,
    resources: usize,
}

impl SlotReservations {
    /// Creates `n` empty resources.
    pub fn new(n: usize) -> SlotReservations {
        SlotReservations { ring: vec![u64::MAX; n * WINDOW], resources: n }
    }

    /// Number of resources tracked.
    pub fn len(&self) -> usize {
        self.resources
    }

    /// Whether no resources are tracked.
    pub fn is_empty(&self) -> bool {
        self.resources == 0
    }

    /// Reserves the first free cycle of resource `idx` at or after
    /// `earliest`, and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn reserve(&mut self, idx: usize, earliest: u64) -> u64 {
        assert!(idx < self.resources, "resource index out of range");
        let base = idx * WINDOW;
        let ring = &mut self.ring[base..base + WINDOW];
        let mut t = earliest;
        while ring[t as usize & (WINDOW - 1)] == t {
            t += 1;
        }
        // A slot only ever holds one exact cycle, so an aliased entry
        // (same residue, different cycle) is overwritten. That is safe
        // for *older* entries — no request can target a cycle that far
        // behind the one being granted — but overwriting a *later*
        // cycle would silently drop a live future reservation: the
        // lookahead-fits-the-window premise the module relies on.
        debug_assert!(
            ring[t as usize & (WINDOW - 1)] == u64::MAX || ring[t as usize & (WINDOW - 1)] < t,
            "granting cycle {t} would drop a live reservation for cycle {} (window {WINDOW})",
            ring[t as usize & (WINDOW - 1)],
        );
        ring[t as usize & (WINDOW - 1)] = t;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_requested_cycle_when_free() {
        let mut s = SlotReservations::new(2);
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(1, 10), 10, "resources are independent");
    }

    #[test]
    fn conflicting_requests_get_next_cycle() {
        let mut s = SlotReservations::new(1);
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(0, 10), 11);
        assert_eq!(s.reserve(0, 10), 12);
    }

    #[test]
    fn future_reservation_does_not_block_earlier_slot() {
        let mut s = SlotReservations::new(1);
        assert_eq!(s.reserve(0, 100), 100);
        // The regression this module exists to prevent:
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(0, 99), 99);
        assert_eq!(s.reserve(0, 99), 101, "100 already taken");
    }

    #[test]
    fn old_reservations_age_out_of_the_window() {
        let mut s = SlotReservations::new(1);
        assert_eq!(s.reserve(0, 5), 5);
        // A full window later the same ring slot is reusable.
        let later = 5 + WINDOW as u64;
        assert_eq!(s.reserve(0, later), later);
        assert_eq!(s.reserve(0, later), later + 1);
    }

    #[test]
    fn long_runs_stay_correct() {
        let mut s = SlotReservations::new(1);
        for t in 0..100_000u64 {
            assert_eq!(s.reserve(0, t), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut s = SlotReservations::new(1);
        let _ = s.reserve(1, 0);
    }
}
