//! Cycle-accurate slot reservation for single-issue resources
//! (interconnect links, cache-bank ports).
//!
//! Each resource can serve one request per cycle. Requests arrive in
//! arbitrary *simulation* order but may target future cycles (a fill
//! returning in 30 cycles reserves its return trip now), so a simple
//! monotonic "next free" watermark would serialise unrelated requests
//! behind far-future reservations. Instead every resource keeps the
//! set of reserved cycles within a sliding horizon and grants the
//! first free cycle at or after the requested time.

use std::collections::BTreeSet;

/// How far behind the most recent grant old reservations are kept
/// before being pruned.
const PRUNE_HORIZON: u64 = 8192;

/// Per-resource one-slot-per-cycle reservation tracking.
#[derive(Debug, Clone, Default)]
pub struct SlotReservations {
    resources: Vec<BTreeSet<u64>>,
}

impl SlotReservations {
    /// Creates `n` empty resources.
    pub fn new(n: usize) -> SlotReservations {
        SlotReservations { resources: vec![BTreeSet::new(); n] }
    }

    /// Number of resources tracked.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether no resources are tracked.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Reserves the first free cycle of resource `idx` at or after
    /// `earliest`, and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn reserve(&mut self, idx: usize, earliest: u64) -> u64 {
        let set = &mut self.resources[idx];
        let mut t = earliest;
        while set.contains(&t) {
            t += 1;
        }
        set.insert(t);
        // Prune reservations far in the past; they can never conflict
        // with future requests (simulation time only moves forward,
        // modulo the small scheduling lookahead).
        while let Some(&oldest) = set.first() {
            if oldest + PRUNE_HORIZON < t {
                set.pop_first();
            } else {
                break;
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_requested_cycle_when_free() {
        let mut s = SlotReservations::new(2);
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(1, 10), 10, "resources are independent");
    }

    #[test]
    fn conflicting_requests_get_next_cycle() {
        let mut s = SlotReservations::new(1);
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(0, 10), 11);
        assert_eq!(s.reserve(0, 10), 12);
    }

    #[test]
    fn future_reservation_does_not_block_earlier_slot() {
        let mut s = SlotReservations::new(1);
        assert_eq!(s.reserve(0, 100), 100);
        // The regression this module exists to prevent:
        assert_eq!(s.reserve(0, 10), 10);
        assert_eq!(s.reserve(0, 99), 99);
        assert_eq!(s.reserve(0, 99), 101, "100 already taken");
    }

    #[test]
    fn pruning_keeps_sets_bounded() {
        let mut s = SlotReservations::new(1);
        for t in 0..100_000u64 {
            s.reserve(0, t);
        }
        assert!(s.resources[0].len() < 2 * PRUNE_HORIZON as usize);
    }
}
