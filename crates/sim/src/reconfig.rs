//! The interface between the processor and a dynamic
//! cluster-allocation policy.
//!
//! The paper's algorithms run as a low-overhead software routine
//! reading hardware event counters (§4.2); here a policy receives one
//! [`CommitEvent`] per committed instruction — the same information
//! those counters expose — and may request a different number of
//! active clusters at any commit boundary.

use crate::decision::{DecisionReason, DecisionRecord, PolicyState};

/// Everything a policy may observe about one committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// Position in the committed instruction stream.
    pub seq: u64,
    /// The instruction's PC (instruction index).
    pub pc: u32,
    /// The cycle the instruction committed.
    pub cycle: u64,
    /// Whether this is any control transfer.
    pub is_branch: bool,
    /// Whether this is a conditional branch.
    pub is_cond_branch: bool,
    /// Whether this is a call.
    pub is_call: bool,
    /// Whether this is a return.
    pub is_return: bool,
    /// Whether this is a load or store.
    pub is_memref: bool,
    /// Whether the instruction issued while ≥ `DISTANT_DEPTH`
    /// instructions younger than the ROB head (paper §4.3).
    pub distant: bool,
    /// Whether this control transfer was mispredicted.
    pub mispredicted: bool,
}

/// The window depth beyond which an issuing instruction counts as
/// *distant* ILP (paper §4.3: 120 instructions, the capacity of four
/// clusters).
pub const DISTANT_DEPTH: u64 = 120;

/// A dynamic cluster-allocation policy.
///
/// Implementations live in the `clustered-core` crate; the simulator
/// invokes [`ReconfigPolicy::on_commit`] for every committed
/// instruction and applies any returned request (clamped to the legal
/// configurations) — immediately for the centralized cache, or after a
/// drain-and-flush for the decentralized cache.
pub trait ReconfigPolicy {
    /// A short display name for experiment tables.
    fn name(&self) -> String;

    /// The number of clusters to enable before the first instruction.
    fn initial_clusters(&self) -> usize;

    /// Observes one committed instruction; returns `Some(n)` to
    /// request `n` active clusters.
    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize>;

    /// Drains the decision-telemetry record produced by the most
    /// recent [`on_commit`](ReconfigPolicy::on_commit), if any.
    ///
    /// The simulator polls this after every commit when its observer
    /// opts in (`SimObserver::WANTS_DECISIONS`); a policy overwrites
    /// any undrained record at its next decision point, so a caller
    /// that never polls cannot leak memory. The default keeps legacy
    /// policies compiling: no telemetry.
    fn take_decision(&mut self) -> Option<DecisionRecord> {
        None
    }
}

/// How many commits a [`FixedPolicy`] covers per telemetry checkpoint.
pub const FIXED_CHECKPOINT_COMMITS: u64 = 10_000;

/// The static baseline: a fixed number of clusters, never reconfigured
/// (the paper's Figure 3 bars).
///
/// Although it makes no decisions, it still emits telemetry: one
/// [`DecisionRecord`] checkpoint every
/// [`FIXED_CHECKPOINT_COMMITS`] commits, so baseline runs produce the
/// same timeline documents as adaptive ones.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPolicy {
    clusters: usize,
    interval: u64,
    committed: u64,
    interval_committed: u64,
    start_cycle: u64,
    branches: u64,
    memrefs: u64,
    prev_branches: u64,
    prev_memrefs: u64,
    have_prev: bool,
    last_decision: Option<DecisionRecord>,
}

impl FixedPolicy {
    /// A policy pinned to `clusters` active clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(clusters: usize) -> FixedPolicy {
        assert!(clusters > 0, "cluster count must be non-zero");
        FixedPolicy {
            clusters,
            interval: 0,
            committed: 0,
            interval_committed: 0,
            start_cycle: 0,
            branches: 0,
            memrefs: 0,
            prev_branches: 0,
            prev_memrefs: 0,
            have_prev: false,
            last_decision: None,
        }
    }
}

impl ReconfigPolicy for FixedPolicy {
    fn name(&self) -> String {
        format!("fixed-{}", self.clusters)
    }

    fn initial_clusters(&self) -> usize {
        self.clusters
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        if self.interval_committed == 0 {
            self.start_cycle = event.cycle;
        }
        self.committed += 1;
        self.interval_committed += 1;
        if event.is_branch {
            self.branches += 1;
        }
        if event.is_memref {
            self.memrefs += 1;
        }
        if self.interval_committed == FIXED_CHECKPOINT_COMMITS {
            self.interval += 1;
            let cycles = (event.cycle - self.start_cycle).max(1);
            let (branch_delta, memref_delta) = if self.have_prev {
                (
                    self.branches as i64 - self.prev_branches as i64,
                    self.memrefs as i64 - self.prev_memrefs as i64,
                )
            } else {
                (0, 0)
            };
            self.last_decision = Some(DecisionRecord {
                interval: self.interval,
                commit: self.committed,
                start_cycle: self.start_cycle,
                cycle: event.cycle,
                state: PolicyState::Stable,
                ipc: self.interval_committed as f64 / cycles as f64,
                branch_delta,
                memref_delta,
                instability: 0.0,
                explored_ipc: Vec::new(),
                interval_length: FIXED_CHECKPOINT_COMMITS,
                clusters: self.clusters,
                reason: DecisionReason::FixedBaseline,
            });
            self.prev_branches = self.branches;
            self.prev_memrefs = self.memrefs;
            self.have_prev = true;
            self.branches = 0;
            self.memrefs = 0;
            self.interval_committed = 0;
        }
        None
    }

    fn take_decision(&mut self) -> Option<DecisionRecord> {
        self.last_decision.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_reconfigures() {
        let mut p = FixedPolicy::new(4);
        assert_eq!(p.initial_clusters(), 4);
        assert_eq!(p.name(), "fixed-4");
        let e = CommitEvent {
            seq: 0,
            pc: 0,
            cycle: 0,
            is_branch: false,
            is_cond_branch: false,
            is_call: false,
            is_return: false,
            is_memref: false,
            distant: false,
            mispredicted: false,
        };
        for _ in 0..100 {
            assert_eq!(p.on_commit(&e), None);
        }
    }

    #[test]
    fn fixed_policy_emits_periodic_checkpoint_decisions() {
        let mut p = FixedPolicy::new(4);
        let mut decisions = Vec::new();
        for seq in 0..(2 * FIXED_CHECKPOINT_COMMITS + 5) {
            let mut e = commit_template();
            e.seq = seq;
            e.cycle = seq * 2;
            e.is_branch = seq % 5 == 0;
            e.is_memref = seq % 3 == 0;
            assert_eq!(p.on_commit(&e), None);
            if let Some(d) = p.take_decision() {
                decisions.push(d);
            }
        }
        assert_eq!(decisions.len(), 2, "one checkpoint per {FIXED_CHECKPOINT_COMMITS} commits");
        let d = &decisions[0];
        assert_eq!(d.interval, 1);
        assert_eq!(d.commit, FIXED_CHECKPOINT_COMMITS);
        assert_eq!(d.clusters, 4);
        assert_eq!(d.state, PolicyState::Stable);
        assert_eq!(d.reason, DecisionReason::FixedBaseline);
        assert_eq!(d.interval_length, FIXED_CHECKPOINT_COMMITS);
        assert!((d.ipc - 0.5).abs() < 0.01, "cpi 2 stream measures ipc 0.5, got {}", d.ipc);
        assert_eq!((d.branch_delta, d.memref_delta), (0, 0), "first interval has no reference");
        // The second checkpoint compares against the first; a uniform
        // stream has (near-)zero deltas.
        assert!(decisions[1].branch_delta.abs() <= 1);
        assert!(decisions[1].memref_delta.abs() <= 1);
    }

    #[test]
    fn fixed_policy_decision_is_drained_once() {
        let mut p = FixedPolicy::new(2);
        for seq in 0..FIXED_CHECKPOINT_COMMITS {
            let mut e = commit_template();
            e.seq = seq;
            e.cycle = seq;
            p.on_commit(&e);
        }
        assert!(p.take_decision().is_some());
        assert!(p.take_decision().is_none(), "take_decision drains");
    }

    fn commit_template() -> CommitEvent {
        CommitEvent {
            seq: 0,
            pc: 0,
            cycle: 0,
            is_branch: false,
            is_cond_branch: false,
            is_call: false,
            is_return: false,
            is_memref: false,
            distant: false,
            mispredicted: false,
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn fixed_policy_rejects_zero() {
        let _ = FixedPolicy::new(0);
    }
}
