//! The interface between the processor and a dynamic
//! cluster-allocation policy.
//!
//! The paper's algorithms run as a low-overhead software routine
//! reading hardware event counters (§4.2); here a policy receives one
//! [`CommitEvent`] per committed instruction — the same information
//! those counters expose — and may request a different number of
//! active clusters at any commit boundary.

/// Everything a policy may observe about one committed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// Position in the committed instruction stream.
    pub seq: u64,
    /// The instruction's PC (instruction index).
    pub pc: u32,
    /// The cycle the instruction committed.
    pub cycle: u64,
    /// Whether this is any control transfer.
    pub is_branch: bool,
    /// Whether this is a conditional branch.
    pub is_cond_branch: bool,
    /// Whether this is a call.
    pub is_call: bool,
    /// Whether this is a return.
    pub is_return: bool,
    /// Whether this is a load or store.
    pub is_memref: bool,
    /// Whether the instruction issued while ≥ `DISTANT_DEPTH`
    /// instructions younger than the ROB head (paper §4.3).
    pub distant: bool,
    /// Whether this control transfer was mispredicted.
    pub mispredicted: bool,
}

/// The window depth beyond which an issuing instruction counts as
/// *distant* ILP (paper §4.3: 120 instructions, the capacity of four
/// clusters).
pub const DISTANT_DEPTH: u64 = 120;

/// A dynamic cluster-allocation policy.
///
/// Implementations live in the `clustered-core` crate; the simulator
/// invokes [`ReconfigPolicy::on_commit`] for every committed
/// instruction and applies any returned request (clamped to the legal
/// configurations) — immediately for the centralized cache, or after a
/// drain-and-flush for the decentralized cache.
pub trait ReconfigPolicy {
    /// A short display name for experiment tables.
    fn name(&self) -> String;

    /// The number of clusters to enable before the first instruction.
    fn initial_clusters(&self) -> usize;

    /// Observes one committed instruction; returns `Some(n)` to
    /// request `n` active clusters.
    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize>;
}

/// The static baseline: a fixed number of clusters, never reconfigured
/// (the paper's Figure 3 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPolicy {
    clusters: usize,
}

impl FixedPolicy {
    /// A policy pinned to `clusters` active clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn new(clusters: usize) -> FixedPolicy {
        assert!(clusters > 0, "cluster count must be non-zero");
        FixedPolicy { clusters }
    }
}

impl ReconfigPolicy for FixedPolicy {
    fn name(&self) -> String {
        format!("fixed-{}", self.clusters)
    }

    fn initial_clusters(&self) -> usize {
        self.clusters
    }

    fn on_commit(&mut self, _event: &CommitEvent) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_never_reconfigures() {
        let mut p = FixedPolicy::new(4);
        assert_eq!(p.initial_clusters(), 4);
        assert_eq!(p.name(), "fixed-4");
        let e = CommitEvent {
            seq: 0,
            pc: 0,
            cycle: 0,
            is_branch: false,
            is_cond_branch: false,
            is_call: false,
            is_return: false,
            is_memref: false,
            distant: false,
            mispredicted: false,
        };
        for _ in 0..100 {
            assert_eq!(p.on_commit(&e), None);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn fixed_policy_rejects_zero() {
        let _ = FixedPolicy::new(0);
    }
}
