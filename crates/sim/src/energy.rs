//! Post-hoc energy accounting.
//!
//! The paper's §1/§8 argue that disabling clusters lets their supply be
//! gated, "greatly saving on leakage energy" (on average 8.3 of 16
//! clusters were disabled). This module turns a run's [`SimStats`] into
//! a leakage + dynamic energy estimate so that claim can be quantified.
//! Units are normalised (one unit = one cluster-cycle of leakage); the
//! per-event weights are configurable and deliberately coarse — the
//! paper makes a first-order argument, not a circuit-level one.

use crate::config::MAX_CLUSTERS;
use crate::stats::SimStats;

/// Energy weights, in units of one cluster-cycle of leakage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Total clusters on the die.
    pub clusters: usize,
    /// Whether disabled clusters are power-gated (supply off). If
    /// false, disabled clusters still leak at `idle_leak_fraction`.
    pub power_gated: bool,
    /// Leakage of a disabled but not gated cluster, relative to an
    /// active one.
    pub idle_leak_fraction: f64,
    /// Dynamic energy per dispatched instruction (rename + queue
    /// insertion).
    pub per_dispatch: f64,
    /// Dynamic energy per committed instruction (regfile write +
    /// retirement).
    pub per_commit: f64,
    /// Dynamic energy per L1 access.
    pub per_l1_access: f64,
    /// Dynamic energy per L2 access (an L1 miss).
    pub per_l2_access: f64,
    /// Dynamic energy per memory access (an L2 miss).
    pub per_mem_access: f64,
    /// Dynamic energy per interconnect hop travelled.
    pub per_hop: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams {
            clusters: MAX_CLUSTERS,
            power_gated: true,
            idle_leak_fraction: 0.3,
            per_dispatch: 0.02,
            per_commit: 0.03,
            per_l1_access: 0.08,
            per_l2_access: 0.4,
            per_mem_access: 2.0,
            per_hop: 0.05,
        }
    }
}

/// An energy estimate for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Leakage of active clusters (cluster-cycle units).
    pub active_leakage: f64,
    /// Leakage of disabled clusters (zero when power-gated).
    pub idle_leakage: f64,
    /// Dynamic (switching) energy.
    pub dynamic: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.active_leakage + self.idle_leakage + self.dynamic
    }

    /// Energy per committed instruction, given the run's stats.
    pub fn per_instruction(&self, stats: &SimStats) -> f64 {
        if stats.committed == 0 {
            0.0
        } else {
            self.total() / stats.committed as f64
        }
    }
}

/// Evaluates the energy of a run from its statistics.
///
/// # Examples
///
/// ```
/// use clustered_sim::{EnergyParams, estimate_energy, SimStats};
///
/// let stats = SimStats {
///     cycles: 1_000,
///     committed: 2_000,
///     dispatched: 2_100,
///     active_cluster_cycles: 4_000, // four clusters on average
///     ..SimStats::default()
/// };
/// let gated = estimate_energy(&stats, &EnergyParams::default());
/// assert_eq!(gated.active_leakage, 4_000.0);
/// assert_eq!(gated.idle_leakage, 0.0); // power-gated
///
/// let ungated = estimate_energy(
///     &stats,
///     &EnergyParams { power_gated: false, ..EnergyParams::default() },
/// );
/// assert!(ungated.idle_leakage > 0.0);
/// ```
pub fn estimate_energy(stats: &SimStats, params: &EnergyParams) -> EnergyBreakdown {
    let active = stats.active_cluster_cycles as f64;
    let total_cluster_cycles = (params.clusters as u64 * stats.cycles) as f64;
    let idle_cycles = (total_cluster_cycles - active).max(0.0);
    let idle_leakage =
        if params.power_gated { 0.0 } else { idle_cycles * params.idle_leak_fraction };
    let l1 = (stats.l1_hits + stats.l1_misses) as f64;
    let hops = (stats.reg_transfer_hops + stats.cache_transfer_hops) as f64;
    let dynamic = stats.dispatched as f64 * params.per_dispatch
        + stats.committed as f64 * params.per_commit
        + l1 * params.per_l1_access
        + stats.l1_misses as f64 * params.per_l2_access
        + stats.l2_misses as f64 * params.per_mem_access
        + hops * params.per_hop;
    EnergyBreakdown { active_leakage: active, idle_leakage, dynamic }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats {
            cycles: 1_000,
            committed: 1_500,
            dispatched: 1_600,
            l1_hits: 400,
            l1_misses: 100,
            l2_misses: 10,
            reg_transfers: 200,
            reg_transfer_hops: 800,
            cache_transfers: 0,
            active_cluster_cycles: 8_000,
            ..SimStats::default()
        }
    }

    #[test]
    fn power_gating_eliminates_idle_leakage() {
        let gated = estimate_energy(&stats(), &EnergyParams::default());
        assert_eq!(gated.idle_leakage, 0.0);
        assert_eq!(gated.active_leakage, 8_000.0);
    }

    #[test]
    fn ungated_idle_clusters_leak_proportionally() {
        let p = EnergyParams { power_gated: false, ..EnergyParams::default() };
        let e = estimate_energy(&stats(), &p);
        // 16 clusters × 1000 cycles − 8000 active = 8000 idle cluster-cycles.
        assert!((e.idle_leakage - 8_000.0 * p.idle_leak_fraction).abs() < 1e-9);
    }

    #[test]
    fn fewer_active_clusters_save_leakage() {
        let mut narrow = stats();
        narrow.active_cluster_cycles = 4_000;
        let wide = estimate_energy(&stats(), &EnergyParams::default());
        let slim = estimate_energy(&narrow, &EnergyParams::default());
        assert!(slim.total() < wide.total());
        assert_eq!(slim.dynamic, wide.dynamic, "dynamic energy is event-driven");
    }

    #[test]
    fn dynamic_energy_counts_all_sources() {
        let p = EnergyParams::default();
        let e = estimate_energy(&stats(), &p);
        let expected = 1_600.0 * p.per_dispatch
            + 1_500.0 * p.per_commit
            + 500.0 * p.per_l1_access
            + 100.0 * p.per_l2_access
            + 10.0 * p.per_mem_access
            + 800.0 * p.per_hop;
        assert!((e.dynamic - expected).abs() < 1e-9);
    }

    #[test]
    fn per_instruction_handles_empty_run() {
        let e = estimate_energy(&SimStats::default(), &EnergyParams::default());
        assert_eq!(e.per_instruction(&SimStats::default()), 0.0);
        assert_eq!(e.total(), 0.0);
    }
}
