//! Inter-cluster interconnect: ring or grid, with per-link bandwidth.
//!
//! The paper's default is two unidirectional rings (2N directed links,
//! so a 16-cluster system can start 32 transfers per cycle); the
//! sensitivity study adds a 2-D grid. Each directed link carries one
//! value per cycle. Transfers reserve the links along their route in
//! order, so contention backpressures later transfers — the mechanism
//! that makes wide configurations *communication bound*.
//!
//! Routing is over the full physical topology: when a subset of
//! clusters is active they are the contiguous prefix, and routes may
//! pass through disabled clusters (the wires still exist).

use crate::config::{InterconnectParams, Topology};
use crate::slots::SlotReservations;

/// A directed link identifier.
type Link = usize;

/// The interconnect fabric between `n` clusters.
///
/// # Examples
///
/// ```
/// use clustered_sim::{Interconnect, InterconnectParams};
///
/// let mut net = Interconnect::new(&InterconnectParams::default(), 16);
/// assert_eq!(net.distance(0, 8), 8);     // farthest ring distance
/// assert_eq!(net.distance(0, 15), 1);    // wraps the other way
/// let arrival = net.transfer(0, 2, 10);
/// assert_eq!(arrival, 12);               // 2 hops at 1 cycle each
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    topology: Topology,
    hop_latency: u64,
    n: usize,
    cols: usize,
    /// Per-cycle reservations of each directed link.
    links: SlotReservations,
}

impl Interconnect {
    /// Builds the fabric for `n` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or — for the grid topology, whose layout
    /// requires it — not a power of two. Rings accept any count.
    pub fn new(params: &InterconnectParams, n: usize) -> Interconnect {
        assert!(n > 0, "need at least one cluster");
        let cols = match params.topology {
            Topology::Ring => n,
            Topology::Grid => {
                assert!(n.is_power_of_two(), "grid layout needs a power-of-two cluster count");
                let log = n.trailing_zeros();
                1usize << log.div_ceil(2)
            }
        };
        let links = match params.topology {
            // Two unidirectional rings.
            Topology::Ring => 2 * n,
            // Each grid edge is two directed links; addressed densely
            // below as 4 possible out-links per node.
            Topology::Grid => 4 * n,
        };
        Interconnect {
            topology: params.topology,
            hop_latency: params.hop_latency,
            n,
            cols,
            links: SlotReservations::new(links),
        }
    }

    /// Number of clusters the fabric connects.
    pub fn clusters(&self) -> usize {
        self.n
    }

    /// Cycles per hop.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Hop count of the route from `a` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> u64 {
        assert!(a < self.n && b < self.n, "cluster index out of range");
        match self.topology {
            Topology::Ring => {
                // `a` and `b` are in range, so the modulo reduces a
                // value below `2n` and a conditional subtract suffices.
                let d = b + self.n - a;
                let fwd = if d >= self.n { d - self.n } else { d };
                fwd.min(self.n - fwd) as u64
            }
            Topology::Grid => {
                let (ax, ay) = (a % self.cols, a / self.cols);
                let (bx, by) = (b % self.cols, b / self.cols);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
            }
        }
    }

    /// Minimum (uncontended) latency from `a` to `b`.
    #[inline]
    pub fn latency(&self, a: usize, b: usize) -> u64 {
        self.distance(a, b) * self.hop_latency
    }

    /// Schedules a one-word transfer from `from` to `to`, ready to
    /// inject at `earliest`. Reserves one cycle on each link of the
    /// route (in order) and returns the arrival cycle.
    ///
    /// A transfer to the same cluster returns `earliest` and consumes
    /// no bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn transfer(&mut self, from: usize, to: usize, earliest: u64) -> u64 {
        assert!(from < self.n && to < self.n, "cluster index out of range");
        if from == to {
            return earliest;
        }
        let mut t = earliest;
        match self.topology {
            Topology::Ring => {
                // The chosen direction is invariant along a shortest
                // ring route: each hop shortens the forward distance by
                // one, so `fwd <= bwd` — once true — stays true (and
                // once false stays false). Deciding it here once lets
                // the hop loop step with conditional subtracts instead
                // of the two modulo reductions [`Interconnect::next_hop`]
                // pays per hop; the link ids and the order of the
                // reservations are identical.
                let d = to + self.n - from;
                let fwd = if d >= self.n { d - self.n } else { d };
                let forward = 2 * fwd <= self.n;
                let hops = if forward { fwd } else { self.n - fwd };
                let mut node = from;
                for _ in 0..hops {
                    let link = if forward { node } else { self.n + node };
                    t = self.links.reserve(link, t);
                    t += self.hop_latency;
                    node = if forward {
                        if node + 1 == self.n {
                            0
                        } else {
                            node + 1
                        }
                    } else if node == 0 {
                        self.n - 1
                    } else {
                        node - 1
                    };
                }
            }
            Topology::Grid => {
                let mut node = from;
                while node != to {
                    let (link, next) = self.next_hop(node, to);
                    t = self.links.reserve(link, t);
                    t += self.hop_latency;
                    node = next;
                }
            }
        }
        t
    }

    /// The out-link to use at `node` en route to `to`, and the
    /// neighbour it leads to.
    fn next_hop(&self, node: usize, to: usize) -> (Link, usize) {
        match self.topology {
            Topology::Ring => {
                let fwd = (to + self.n - node) % self.n;
                let bwd = (node + self.n - to) % self.n;
                if fwd <= bwd {
                    (node, (node + 1) % self.n) // forward ring: links 0..n
                } else {
                    (self.n + node, (node + self.n - 1) % self.n) // backward ring
                }
            }
            Topology::Grid => {
                // Dimension-ordered (X then Y) routing; out-links per
                // node: 0 = +x, 1 = -x, 2 = +y, 3 = -y.
                let (x, y) = (node % self.cols, node / self.cols);
                let (tx, ty) = (to % self.cols, to / self.cols);
                if x < tx {
                    (node * 4, node + 1)
                } else if x > tx {
                    (node * 4 + 1, node - 1)
                } else if y < ty {
                    (node * 4 + 2, node + self.cols)
                } else {
                    (node * 4 + 3, node - self.cols)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Interconnect {
        Interconnect::new(&InterconnectParams { topology: Topology::Ring, hop_latency: 1 }, n)
    }

    fn grid(n: usize) -> Interconnect {
        Interconnect::new(&InterconnectParams { topology: Topology::Grid, hop_latency: 1 }, n)
    }

    #[test]
    fn ring_distances_match_paper() {
        let net = ring(16);
        // "maximum number of hops between any two nodes being 8"
        let max = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| net.distance(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 8);
        assert_eq!(net.distance(3, 3), 0);
        assert_eq!(net.distance(0, 1), 1);
        assert_eq!(net.distance(1, 0), 1);
    }

    #[test]
    fn grid_distances_match_paper() {
        let net = grid(16);
        // "for 16 clusters ... the maximum number of hops being 6"
        let max = (0..16)
            .flat_map(|a| (0..16).map(move |b| (a, b)))
            .map(|(a, b)| net.distance(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 6);
        // 4×4 layout: 0 and 5 are diagonal neighbours.
        assert_eq!(net.distance(0, 5), 2);
    }

    #[test]
    fn grid_shapes_for_small_counts() {
        assert_eq!(grid(2).distance(0, 1), 1);
        assert_eq!(grid(4).distance(0, 3), 2); // 2×2
        assert_eq!(grid(8).distance(0, 7), 4); // 4×2
    }

    #[test]
    fn transfer_pipelines_through_hops() {
        let mut net = ring(16);
        assert_eq!(net.transfer(0, 4, 100), 104);
        assert_eq!(net.transfer(4, 0, 100), 104); // opposite direction, no conflict
    }

    #[test]
    fn same_cluster_transfer_is_free() {
        let mut net = ring(16);
        assert_eq!(net.transfer(5, 5, 42), 42);
        assert_eq!(net.transfer(5, 5, 42), 42); // no bandwidth consumed
    }

    #[test]
    fn link_contention_serialises() {
        let mut net = ring(16);
        let a = net.transfer(0, 1, 10);
        let b = net.transfer(0, 1, 10);
        let c = net.transfer(0, 1, 10);
        assert_eq!(a, 11);
        assert_eq!(b, 12); // second transfer waits for the link
        assert_eq!(c, 13);
    }

    #[test]
    fn contention_applies_along_shared_route_prefix() {
        let mut net = ring(16);
        let far = net.transfer(0, 3, 10); // uses links 0,1,2 at cycles 10,11,12
        let near = net.transfer(0, 1, 10); // link 0 busy at 10
        assert_eq!(far, 13);
        assert_eq!(near, 12);
    }

    #[test]
    fn hop_latency_scales() {
        let mut net = Interconnect::new(
            &InterconnectParams { topology: Topology::Ring, hop_latency: 2 },
            16,
        );
        assert_eq!(net.transfer(0, 3, 0), 6);
        assert_eq!(net.latency(0, 8), 16);
    }

    #[test]
    fn ring_accepts_any_count() {
        let mut net = ring(6);
        assert_eq!(net.distance(0, 3), 3);
        assert_eq!(net.distance(0, 4), 2, "wraps the short way");
        assert_eq!(net.transfer(0, 2, 5), 7);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn grid_rejects_non_power_of_two() {
        let _ = grid(6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let net = ring(4);
        let _ = net.distance(0, 4);
    }
}
