//! A minimal deterministic hasher for the simulator's hot `u64`-keyed
//! maps (MSHRs, LSQ forwarding words).
//!
//! The standard library's default hasher is DoS-resistant SipHash,
//! which is overkill for maps keyed by cache-line and word indices and
//! shows up on the simulator's critical path (one or more lookups per
//! memory access). This is the classic multiply-xor-shift integer
//! hash: two multiplies, deterministic across runs (which the
//! simulator wants anyway — nothing may depend on iteration order, but
//! determinism keeps any accidental dependence reproducible).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`U64Hasher`]; for integer keys only.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<U64Hasher>>;

/// Multiply-xor-shift hasher for integer keys.
///
/// Only the fixed-width integer `write_*` methods are meaningfully
/// supported; hashing variable-length byte slices falls back to a
/// simple (deterministic) fold and should not be used on hot paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Hasher(u64);

impl U64Hasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        // splitmix64 finalizer: full avalanche, two multiplies.
        let mut z = v.wrapping_add(self.0).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::FastMap;

    #[test]
    fn behaves_like_a_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for k in 0..1000u64 {
            m.insert(k * 7919, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(&(k * 7919)), Some(&k));
        }
        assert_eq!(m.remove(&(3 * 7919)), Some(3));
        assert_eq!(m.get(&(3 * 7919)), None);
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b1: BuildHasherDefault<super::U64Hasher> = Default::default();
        let b2: BuildHasherDefault<super::U64Hasher> = Default::default();
        assert_eq!(b1.hash_one(42u64), b2.hash_one(42u64));
        assert_ne!(b1.hash_one(42u64), b1.hash_one(43u64));
    }
}
