//! Data-cache hierarchy timing: banked L1 (centralized or per-cluster),
//! shared L2, and main memory, with real tag arrays, bank-port
//! contention, miss-status merging, and writeback accounting.

use crate::config::{CacheModel, CacheParams};
use crate::interconnect::Interconnect;
use crate::slots::SlotReservations;
use crate::stats::SimStats;

/// A set-associative tag array with true LRU.
#[derive(Debug, Clone)]
pub struct CacheArray {
    /// `sets - 1`; the constructor asserts `sets` is a power of two,
    /// so set selection is a mask instead of a modulo.
    set_mask: usize,
    ways: usize,
    line_shift: u32,
    /// (tag, valid, dirty, lru-stamp) per way.
    entries: Vec<(u64, bool, bool, u64)>,
    stamp: u64,
}

/// Result of a tag-array access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// A dirty line evicted by the fill, if any.
    pub writeback: Option<u64>,
}

impl CacheArray {
    /// Builds an array of `size` bytes, `ways`-associative, with
    /// `line`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `size / (ways * line)` is a non-zero power of two
    /// and `line` is a power of two.
    pub fn new(size: usize, ways: usize, line: usize) -> CacheArray {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let sets = size / (ways * line);
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two");
        CacheArray {
            set_mask: sets - 1,
            ways,
            line_shift: line.trailing_zeros(),
            entries: vec![(0, false, false, 0); sets * ways],
            stamp: 0,
        }
    }

    /// Accesses `addr`, allocating on miss; marks the line dirty on
    /// writes.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> ArrayAccess {
        let line = addr >> self.line_shift;
        let set = (line as usize & self.set_mask) * self.ways;
        self.stamp += 1;
        for i in set..set + self.ways {
            let e = &mut self.entries[i];
            if e.1 && e.0 == line {
                e.3 = self.stamp;
                e.2 |= is_write;
                return ArrayAccess { hit: true, writeback: None };
            }
        }
        // Miss: fill, evicting LRU (prefer invalid ways).
        let victim = (set..set + self.ways)
            .min_by_key(|&i| if self.entries[i].1 { self.entries[i].3 } else { 0 })
            .expect("ways >= 1");
        let evicted = self.entries[victim];
        let writeback = (evicted.1 && evicted.2).then(|| evicted.0 << self.line_shift);
        self.entries[victim] = (line, true, is_write, self.stamp);
        ArrayAccess { hit: false, writeback }
    }

    /// Whether `addr`'s line is present (no LRU update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize & self.set_mask) * self.ways;
        self.entries[set..set + self.ways].iter().any(|e| e.1 && e.0 == line)
    }

    /// Invalidates everything, returning the number of dirty lines.
    pub fn flush(&mut self) -> u64 {
        let mut dirty = 0;
        for e in &mut self.entries {
            if e.1 && e.2 {
                dirty += 1;
            }
            e.1 = false;
            e.2 = false;
        }
        dirty
    }

    /// Number of lines currently valid.
    pub fn valid_lines(&self) -> usize {
        self.entries.iter().filter(|e| e.1).count()
    }
}

/// In-flight line fills, for merging repeated misses: line → ready.
///
/// A flat vector instead of a hash map, because the map sat on the
/// hottest path in the simulator — it was probed on *every* L1 hit
/// (hit-under-fill check) and, growing monotonically between prunes,
/// every probe was a cold hash-table walk. The vector exploits what a
/// general map cannot: a record whose fill completed before the
/// current access began is semantically identical to an absent one
/// (every reader compares `ready` against a time no earlier than the
/// access start, and access starts are non-decreasing), so completed
/// slots are reused in place. The table therefore stays at roughly the
/// peak number of *simultaneously* outstanding fills — a handful of
/// hot cache lines that a linear scan beats a hash probe on.
#[derive(Debug, Clone, Default)]
struct MissTable {
    /// `(line, ready)` records, at most one per line.
    entries: Vec<(u64, u64)>,
}

impl MissTable {
    /// The recorded fill-ready time for `line`, if any (possibly in
    /// the past — callers compare against their own clock, exactly as
    /// with the map this replaces).
    #[inline]
    fn get(&self, line: u64) -> Option<u64> {
        self.entries.iter().find(|e| e.0 == line).map(|e| e.1)
    }

    /// Records `line`'s fill completing at `ready`. `now` is the start
    /// time of the access recording the fill: any slot whose fill
    /// completed before it can never influence a later query (query
    /// clocks are `>= now` because access starts are non-decreasing),
    /// so the first such slot is recycled instead of growing the table.
    fn insert(&mut self, line: u64, ready: u64, now: u64) {
        let mut stale = None;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.0 == line {
                e.1 = ready;
                return;
            }
            if stale.is_none() && e.1 < now {
                stale = Some(i);
            }
        }
        match stale {
            Some(i) => self.entries[i] = (line, ready),
            None => self.entries.push((line, ready)),
        }
    }

    /// Forgets every in-flight fill.
    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The L1/L2/memory hierarchy with per-bank ports.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    params: CacheParams,
    banks: Vec<CacheArray>,
    bank_ports: SlotReservations,
    l2: CacheArray,
    l2_port: SlotReservations,
    /// In-flight line fills, for merging repeated misses.
    l1_mshr: MissTable,
    l2_mshr: MissTable,
}

impl MemHierarchy {
    /// Builds the hierarchy for `total_clusters` (the decentralized
    /// model gets one bank per cluster; the centralized model gets
    /// `l1_banks` banks co-located with cluster 0).
    pub fn new(params: &CacheParams, total_clusters: usize) -> MemHierarchy {
        // Word interleaving splits the *data* array for bandwidth; the
        // centralized cache still has one logical tag store (a 32-byte
        // line spans all four banks). The decentralized banks use
        // 8-byte lines, so each per-cluster array is self-contained.
        let (nbanks, banks) = match params.model {
            CacheModel::Centralized => (
                params.l1_banks,
                vec![CacheArray::new(params.l1_size, params.l1_assoc, params.l1_line)],
            ),
            CacheModel::Decentralized => (
                total_clusters,
                (0..total_clusters)
                    .map(|_| {
                        CacheArray::new(params.l1_bank_size, params.l1_assoc, params.l1_bank_line)
                    })
                    .collect(),
            ),
        };
        MemHierarchy {
            params: *params,
            banks,
            bank_ports: SlotReservations::new(nbanks),
            l2: CacheArray::new(params.l2_size, params.l2_assoc, params.l2_line),
            l2_port: SlotReservations::new(1),
            l1_mshr: MissTable::default(),
            l2_mshr: MissTable::default(),
        }
    }

    /// Which organisation this hierarchy implements.
    pub fn model(&self) -> CacheModel {
        self.params.model
    }

    /// The L1 bank servicing `addr` when `active_banks` are in use
    /// (word-interleaved on 8-byte words).
    #[inline]
    pub fn bank_of(&self, addr: u64, active_banks: usize) -> usize {
        (addr >> 3) as usize & (active_banks - 1)
    }

    fn l1_latency(&self) -> u64 {
        match self.params.model {
            CacheModel::Centralized => self.params.l1_latency,
            CacheModel::Decentralized => self.params.l1_bank_latency,
        }
    }

    fn l1_line_shift(&self) -> u32 {
        match self.params.model {
            CacheModel::Centralized => self.params.l1_line.trailing_zeros(),
            CacheModel::Decentralized => self.params.l1_bank_line.trailing_zeros(),
        }
    }

    /// Performs a data access at `bank` starting no earlier than
    /// `start`, returning when the data is available *at the bank*.
    ///
    /// `bank_cluster` is the cluster the bank lives in: for the
    /// decentralized model an L1 miss pays interconnect hops to and
    /// from the L2 home (cluster 0); the centralized L1 is co-located
    /// with the L2 so misses pay none.
    #[allow(clippy::too_many_arguments)] // one call site per access kind; a params struct would obscure it
    pub fn access(
        &mut self,
        net: &mut Interconnect,
        bank: usize,
        bank_cluster: usize,
        addr: u64,
        is_store: bool,
        start: u64,
        stats: &mut SimStats,
    ) -> u64 {
        // Bank port: one access per cycle.
        let t0 = self.bank_ports.reserve(bank, start);
        let array = match self.params.model {
            CacheModel::Centralized => 0,
            CacheModel::Decentralized => bank,
        };
        let line = addr >> self.l1_line_shift();
        let result = self.banks[array].access(addr, is_store);
        if result.hit {
            stats.l1_hits += 1;
            let t = t0 + self.l1_latency();
            // Hit under fill: the tags were allocated at miss time, but
            // the data arrives only when the fill completes.
            if let Some(ready) = self.l1_mshr.get(line) {
                if ready > t {
                    return ready;
                }
            }
            return t;
        }
        stats.l1_misses += 1;
        let miss_seen = t0 + self.l1_latency();
        // Merge with an in-flight fill of the same line.
        if let Some(ready) = self.l1_mshr.get(line) {
            if ready >= miss_seen {
                return ready;
            }
        }
        // The fill evicted a dirty line: one writeback toward L2.
        if result.writeback.is_some() {
            self.l2_port.reserve(0, miss_seen);
        }
        // Request travels to the L2 home if the bank is remote.
        let at_l2 = if self.params.model == CacheModel::Decentralized && bank_cluster != 0 {
            stats.cache_transfers += 1;
            net.transfer(bank_cluster, 0, miss_seen)
        } else {
            miss_seen
        };
        let t1 = self.l2_port.reserve(0, at_l2);
        let l2_line_probe = addr >> self.params.l2_line.trailing_zeros();
        let l2_result = self.l2.access(addr, is_store);
        let data_at_l2 = if l2_result.hit {
            let t = t1 + self.params.l2_latency;
            // Hit under fill at the L2, same as at the L1.
            match self.l2_mshr.get(l2_line_probe) {
                Some(ready) if ready > t => ready,
                _ => t,
            }
        } else {
            stats.l2_misses += 1;
            let l2_line = addr >> self.params.l2_line.trailing_zeros();
            let l2_seen = t1 + self.params.l2_latency;
            match self.l2_mshr.get(l2_line) {
                Some(ready) if ready >= l2_seen => ready,
                _ => {
                    let ready = l2_seen + self.params.mem_latency;
                    self.l2_mshr.insert(l2_line, ready, start);
                    ready
                }
            }
        };
        // Fill returns to the bank.
        let done = if self.params.model == CacheModel::Decentralized && bank_cluster != 0 {
            stats.cache_transfers += 1;
            net.transfer(0, bank_cluster, data_at_l2)
        } else {
            data_at_l2
        };
        self.l1_mshr.insert(line, done, start);
        done
    }

    /// Flushes all L1 banks (decentralized reconfiguration): returns
    /// `(dirty_writebacks, stall_cycles)`. Dirty lines drain through
    /// the banks in parallel, one line per bank per cycle, plus one L2
    /// latency to complete the last write.
    pub fn flush_l1(&mut self) -> (u64, u64) {
        let mut total = 0;
        let mut worst_bank = 0;
        for bank in &mut self.banks {
            let d = bank.flush();
            total += d;
            worst_bank = worst_bank.max(d);
        }
        self.l1_mshr.clear();
        let stall = if total == 0 { 0 } else { worst_bank + self.params.l2_latency };
        (total, stall)
    }

    /// Total valid lines across L1 banks (for tests).
    pub fn l1_valid_lines(&self) -> usize {
        self.banks.iter().map(CacheArray::valid_lines).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterconnectParams, Topology};

    #[test]
    fn array_hits_after_fill() {
        let mut c = CacheArray::new(1024, 2, 32);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x11f, false).hit, "same line");
        assert!(!c.access(0x120, false).hit, "next line");
    }

    #[test]
    fn array_lru_eviction_and_writeback() {
        // 2 ways, 1 set: 64-byte cache with 32-byte lines.
        let mut c = CacheArray::new(64, 2, 32);
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        c.access(0x000, false); // touch: 0x100 is now LRU
        let r = c.access(0x200, false); // evicts 0x100 (clean)
        assert_eq!(r.writeback, None);
        let r = c.access(0x300, false); // evicts 0x000 (dirty)
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn array_flush_counts_dirty() {
        let mut c = CacheArray::new(1024, 2, 32);
        c.access(0x000, true);
        c.access(0x100, false);
        c.access(0x200, true);
        assert_eq!(c.flush(), 2);
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0x000, false).hit, "flush invalidates");
    }

    fn hierarchy(model: CacheModel) -> (MemHierarchy, Interconnect, SimStats) {
        let params = CacheParams { model, ..CacheParams::default() };
        (
            MemHierarchy::new(&params, 16),
            Interconnect::new(
                &InterconnectParams { topology: Topology::Ring, hop_latency: 1 },
                16,
            ),
            SimStats::default(),
        )
    }

    #[test]
    fn centralized_hit_takes_ram_latency() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Centralized);
        let miss = m.access(&mut net, 0, 0, 0x40, false, 100, &mut s);
        assert!(miss > 100 + 6, "cold access must miss");
        let hit = m.access(&mut net, 0, 0, 0x40, false, miss, &mut s);
        assert_eq!(hit, miss + 6);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l1_misses, 1);
    }

    #[test]
    fn centralized_miss_pays_l2() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Centralized);
        let done = m.access(&mut net, 0, 0, 0x40, false, 0, &mut s);
        // L1 latency + L2 latency + memory (cold L2).
        assert_eq!(done, 6 + 25 + 160);
        assert_eq!(s.l2_misses, 1);
        // Second line in the same L2 line: L2 hit after fill.
        let done2 = m.access(&mut net, 0, 0, 0x60, false, 300, &mut s);
        assert_eq!(done2, 300 + 6 + 25);
    }

    #[test]
    fn mshr_merges_same_line_misses() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Centralized);
        let a = m.access(&mut net, 0, 0, 0x40, false, 0, &mut s);
        let b = m.access(&mut net, 0, 0, 0x48, false, 1, &mut s);
        assert_eq!(b, a, "second miss to the line merges with the fill");
    }

    #[test]
    fn bank_port_contention() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Centralized);
        m.access(&mut net, 2, 0, 0x50, false, 10, &mut s);
        let warm1 = m.access(&mut net, 2, 0, 0x50, false, 400, &mut s);
        let warm2 = m.access(&mut net, 2, 0, 0x50, false, 400, &mut s);
        assert_eq!(warm2, warm1 + 1, "one access per bank per cycle");
    }

    #[test]
    fn decentralized_remote_miss_pays_hops() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Decentralized);
        // Bank at cluster 4; L2 home is cluster 0 → 4 hops each way.
        let done = m.access(&mut net, 4, 4, 0x40, false, 0, &mut s);
        assert_eq!(done, 4 + 4 + (25 + 160) + 4);
        assert_eq!(s.cache_transfers, 2);
        // Local bank at cluster 0 pays no hops.
        let done0 = m.access(&mut net, 0, 0, 0x40, false, 1000, &mut s);
        assert_eq!(done0, 1000 + 4 + 25); // L2 now holds the line
    }

    #[test]
    fn flush_counts_and_stalls() {
        let (mut m, mut net, mut s) = hierarchy(CacheModel::Decentralized);
        m.access(&mut net, 0, 0, 0x00, true, 0, &mut s);
        m.access(&mut net, 0, 0, 0x100, true, 500, &mut s);
        m.access(&mut net, 1, 1, 0x08, true, 500, &mut s);
        let (wb, stall) = m.flush_l1();
        assert_eq!(wb, 3);
        assert_eq!(stall, 2 + 25); // worst bank has 2 dirty lines
        assert_eq!(m.l1_valid_lines(), 0);
        let (wb2, stall2) = m.flush_l1();
        assert_eq!((wb2, stall2), (0, 0));
    }

    #[test]
    fn bank_interleaving_masks_to_active() {
        let (m, _, _) = hierarchy(CacheModel::Decentralized);
        assert_eq!(m.bank_of(0x00, 16), 0);
        assert_eq!(m.bank_of(0x08, 16), 1);
        assert_eq!(m.bank_of(0x78, 16), 15);
        assert_eq!(m.bank_of(0x78, 4), 3);
        assert_eq!(m.bank_of(0x78, 1), 0);
    }
}
