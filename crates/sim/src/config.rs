//! Simulator configuration.
//!
//! Defaults reproduce Tables 1 and 2 of the paper: a 16-cluster,
//! wire-delay-dominated processor at projected 0.035µ latencies, with a
//! ring interconnect and a centralized 4-bank word-interleaved L1.

use std::error::Error;
use std::fmt;

/// Hard upper bound on the number of clusters (sizes several arrays).
pub const MAX_CLUSTERS: usize = 16;

/// Interconnect topology between clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Two unidirectional rings (the paper's default; 2N links).
    Ring,
    /// A two-dimensional grid (higher cost, better connectivity).
    Grid,
}

/// Which L1 data-cache organisation is simulated (paper §2.1 vs §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheModel {
    /// One word-interleaved L1 + LSQ co-located with cluster 0.
    Centralized,
    /// One L1 bank + LSQ slice per cluster, word-interleaved across the
    /// active clusters; reconfiguration requires an L1 flush.
    Decentralized,
}

/// Per-cluster execution resources (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterParams {
    /// Number of clusters on the die.
    pub count: usize,
    /// Physical integer registers per cluster.
    pub int_regs: usize,
    /// Physical floating-point registers per cluster.
    pub fp_regs: usize,
    /// Integer issue-queue entries per cluster.
    pub int_iq: usize,
    /// Floating-point issue-queue entries per cluster.
    pub fp_iq: usize,
    /// Integer ALUs per cluster (also used for address generation and
    /// branch resolution).
    pub int_alu: usize,
    /// Integer multiply/divide units per cluster.
    pub int_muldiv: usize,
    /// Floating-point ALUs per cluster.
    pub fp_alu: usize,
    /// Floating-point multiply/divide units per cluster.
    pub fp_muldiv: usize,
}

impl Default for ClusterParams {
    fn default() -> ClusterParams {
        ClusterParams {
            count: 16,
            int_regs: 30,
            fp_regs: 30,
            int_iq: 15,
            fp_iq: 15,
            int_alu: 1,
            int_muldiv: 1,
            fp_alu: 1,
            fp_muldiv: 1,
        }
    }
}

/// Front-end and window parameters (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendParams {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Fetch-queue capacity.
    pub fetch_queue: usize,
    /// Basic blocks fetch may span per cycle.
    pub max_basic_blocks: usize,
    /// Rename/dispatch width.
    pub dispatch_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Re-order buffer capacity.
    pub rob_size: usize,
    /// Minimum branch-misprediction penalty in cycles (front-end
    /// refill); hop latency from the resolving cluster is added on top.
    pub mispredict_penalty: u64,
}

impl Default for FrontendParams {
    fn default() -> FrontendParams {
        FrontendParams {
            fetch_width: 8,
            fetch_queue: 64,
            max_basic_blocks: 2,
            dispatch_width: 16,
            commit_width: 16,
            rob_size: 480,
            mispredict_penalty: 12,
        }
    }
}

/// Branch-predictor geometry (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredParams {
    /// Bimodal table entries.
    pub bimodal_size: usize,
    /// Level-1 (history) table entries of the two-level predictor.
    pub l1_size: usize,
    /// History bits per level-1 entry.
    pub history_bits: usize,
    /// Level-2 (pattern) table entries.
    pub l2_size: usize,
    /// Chooser (meta) table entries of the combined predictor.
    pub meta_size: usize,
    /// BTB sets.
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for BpredParams {
    fn default() -> BpredParams {
        BpredParams {
            bimodal_size: 2048,
            l1_size: 1024,
            history_bits: 10,
            l2_size: 4096,
            meta_size: 2048,
            btb_sets: 2048,
            btb_ways: 2,
            ras_depth: 32,
        }
    }
}

/// Two-level bank predictor for the decentralized cache (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankPredParams {
    /// Level-1 (history) entries.
    pub l1_size: usize,
    /// History bits.
    pub history_bits: usize,
    /// Level-2 (pattern) entries.
    pub l2_size: usize,
}

impl Default for BankPredParams {
    fn default() -> BankPredParams {
        BankPredParams { l1_size: 1024, history_bits: 12, l2_size: 4096 }
    }
}

/// Criticality-predictor parameters for steering (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritParams {
    /// Use the table-based last-arriving-operand predictor; when
    /// false, steering falls back to the dispatch-time arrival
    /// estimate.
    pub enabled: bool,
    /// Predictor table entries.
    pub table_size: usize,
}

impl Default for CritParams {
    fn default() -> CritParams {
        CritParams { enabled: true, table_size: 2048 }
    }
}

/// Interconnect parameters (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectParams {
    /// Topology between the clusters.
    pub topology: Topology,
    /// Cycles per hop.
    pub hop_latency: u64,
}

impl Default for InterconnectParams {
    fn default() -> InterconnectParams {
        InterconnectParams { topology: Topology::Ring, hop_latency: 1 }
    }
}

/// Cache-hierarchy parameters (paper Table 2).
///
/// The L1 geometry is interpreted per [`CacheModel`]: centralized uses
/// `l1_size`/`l1_banks` as one shared cache; decentralized uses
/// `l1_bank_size` per cluster with as many banks as active clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Which organisation to simulate.
    pub model: CacheModel,
    /// Centralized: total L1 bytes.
    pub l1_size: usize,
    /// Centralized: number of word-interleaved banks.
    pub l1_banks: usize,
    /// Centralized: line size in bytes.
    pub l1_line: usize,
    /// Centralized: L1 RAM lookup cycles.
    pub l1_latency: u64,
    /// L1 associativity (both models).
    pub l1_assoc: usize,
    /// Decentralized: bytes per per-cluster bank.
    pub l1_bank_size: usize,
    /// Decentralized: line size in bytes.
    pub l1_bank_line: usize,
    /// Decentralized: per-bank RAM lookup cycles.
    pub l1_bank_latency: u64,
    /// L2 total bytes.
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L2 line bytes.
    pub l2_line: usize,
    /// L2 lookup cycles.
    pub l2_latency: u64,
    /// Main-memory latency for the first chunk, cycles.
    pub mem_latency: u64,
    /// LSQ entries per cluster (centralized pools `15 × count`).
    pub lsq_per_cluster: usize,
}

impl Default for CacheParams {
    fn default() -> CacheParams {
        CacheParams {
            model: CacheModel::Centralized,
            l1_size: 32 * 1024,
            l1_banks: 4,
            l1_line: 32,
            l1_latency: 6,
            l1_assoc: 2,
            l1_bank_size: 16 * 1024,
            l1_bank_line: 8,
            l1_bank_latency: 4,
            l2_size: 2 * 1024 * 1024,
            l2_assoc: 8,
            l2_line: 64,
            l2_latency: 25,
            mem_latency: 160,
            lsq_per_cluster: 15,
        }
    }
}

/// Functional-unit latencies in cycles (SimpleScalar defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLatencies {
    /// Integer ALU (pipelined).
    pub int_alu: u64,
    /// Integer multiply (pipelined).
    pub int_mul: u64,
    /// Integer divide (unpipelined).
    pub int_div: u64,
    /// FP add/compare/convert (pipelined).
    pub fp_alu: u64,
    /// FP multiply (pipelined).
    pub fp_mul: u64,
    /// FP divide/sqrt (unpipelined).
    pub fp_div: u64,
}

impl Default for ExecLatencies {
    fn default() -> ExecLatencies {
        ExecLatencies { int_alu: 1, int_mul: 3, int_div: 20, fp_alu: 2, fp_mul: 4, fp_div: 12 }
    }
}

/// Full simulator configuration.
///
/// # Examples
///
/// ```
/// use clustered_sim::{SimConfig, Topology};
///
/// let mut cfg = SimConfig::default();
/// cfg.interconnect.topology = Topology::Grid;
/// cfg.validate().unwrap();
/// assert_eq!(cfg.clusters.count, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimConfig {
    /// Cluster resources.
    pub clusters: ClusterParams,
    /// Front-end and window sizes.
    pub frontend: FrontendParams,
    /// Branch predictor geometry.
    pub bpred: BpredParams,
    /// Bank predictor geometry (decentralized cache only).
    pub bankpred: BankPredParams,
    /// Criticality predictor for steering.
    pub crit: CritParams,
    /// Interconnect topology and hop latency.
    pub interconnect: InterconnectParams,
    /// Cache hierarchy.
    pub cache: CacheParams,
    /// Functional-unit latencies.
    pub exec: ExecLatencies,
    /// Host threads for intra-run parallelism (the `--intra-jobs`
    /// flag): `0` — the default — runs the sequential oracle loop;
    /// `n >= 1` runs the batched drain/issue path with `min(n,
    /// clusters)` threads. A *host execution* knob, not a simulated
    /// parameter: every value computes the bit-identical schedule
    /// (pinned by `tests/parallel_equivalence.rs`), so it is excluded
    /// from [`SimConfig::digest`].
    pub intra_jobs: usize,
}

impl SimConfig {
    /// The paper's monolithic baseline for Table 3: one "cluster"
    /// holding all of a 16-cluster machine's resources, with free
    /// bypassing and a co-located cache.
    pub fn monolithic() -> SimConfig {
        let mut cfg = SimConfig::default();
        let n = cfg.clusters.count;
        cfg.clusters = ClusterParams {
            count: 1,
            int_regs: 30 * n,
            fp_regs: 30 * n,
            int_iq: 15 * n,
            fp_iq: 15 * n,
            int_alu: n,
            int_muldiv: n,
            fp_alu: n,
            fp_muldiv: n,
        };
        cfg.cache.lsq_per_cluster = 15 * n;
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the violated constraint:
    /// cluster count must be in `1..=MAX_CLUSTERS` — and a power of two
    /// when the decentralized cache (whose word interleaving masks
    /// addresses) or the grid topology is used — and all widths/sizes
    /// must be non-zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = &self.clusters;
        // The bank predictor packs each trained bank into a 4-bit
        // history field (`bankpred::BANK_BITS`); one bank per cluster
        // means a count past its capacity would silently alias banks
        // in every history register, so reject it here rather than
        // truncate there.
        if c.count > crate::bankpred::MAX_PREDICTED_BANKS {
            return Err(ConfigError(format!(
                "cluster count {} exceeds the bank predictor's {}-bank history capacity",
                c.count,
                crate::bankpred::MAX_PREDICTED_BANKS
            )));
        }
        if c.count == 0 || c.count > MAX_CLUSTERS {
            return Err(ConfigError(format!(
                "cluster count {} outside 1..={MAX_CLUSTERS}",
                c.count
            )));
        }
        let needs_power_of_two = self.cache.model == CacheModel::Decentralized
            || self.interconnect.topology == Topology::Grid;
        if needs_power_of_two && !c.count.is_power_of_two() {
            return Err(ConfigError(format!(
                "cluster count {} must be a power of two for the decentralized \
                 cache's word interleaving and for the grid layout",
                c.count
            )));
        }
        if c.int_regs == 0 || c.fp_regs == 0 || c.int_iq == 0 || c.fp_iq == 0 {
            return Err(ConfigError("per-cluster resources must be non-zero".into()));
        }
        if c.int_alu == 0 || c.fp_alu == 0 || c.int_muldiv == 0 || c.fp_muldiv == 0 {
            return Err(ConfigError("per-cluster FU counts must be non-zero".into()));
        }
        let f = &self.frontend;
        if f.fetch_width == 0 || f.dispatch_width == 0 || f.commit_width == 0 {
            return Err(ConfigError("pipeline widths must be non-zero".into()));
        }
        if f.rob_size == 0 || f.fetch_queue == 0 {
            return Err(ConfigError("window sizes must be non-zero".into()));
        }
        if !self.cache.l1_banks.is_power_of_two() {
            return Err(ConfigError("centralized L1 bank count must be a power of two".into()));
        }
        if self.cache.lsq_per_cluster == 0 {
            return Err(ConfigError("LSQ size must be non-zero".into()));
        }
        if self.crit.table_size == 0 {
            return Err(ConfigError("criticality table must have entries".into()));
        }
        Ok(())
    }

    /// A stable FNV-1a 64 digest over **every** configuration field,
    /// the config side of the provenance record: two runs compare only
    /// if their digests match, and the result cache planned by the
    /// ROADMAP's sweep-service item keys on it.
    ///
    /// Every struct is destructured exhaustively (no `..` patterns),
    /// so adding a field without deciding how it digests is a compile
    /// error — the same add-a-field contract as
    /// [`SimStats::to_json`](crate::SimStats::to_json). Field values
    /// feed the hash in declaration order as fixed-width
    /// little-endian words, so the digest is platform-independent.
    pub fn digest(&self) -> u64 {
        let SimConfig {
            clusters,
            frontend,
            bpred,
            bankpred,
            crit,
            interconnect,
            cache,
            exec,
            intra_jobs,
        } = self;
        // Deliberately not digested: intra-run threading is a host
        // execution strategy and the schedule is thread-count
        // invariant, so runs at different `--intra-jobs` stay
        // comparable under one digest.
        let _ = intra_jobs;
        let ClusterParams {
            count,
            int_regs,
            fp_regs,
            int_iq,
            fp_iq,
            int_alu,
            int_muldiv,
            fp_alu,
            fp_muldiv,
        } = clusters;
        let FrontendParams {
            fetch_width,
            fetch_queue,
            max_basic_blocks,
            dispatch_width,
            commit_width,
            rob_size,
            mispredict_penalty,
        } = frontend;
        let BpredParams {
            bimodal_size,
            l1_size: bp_l1_size,
            history_bits: bp_history_bits,
            l2_size: bp_l2_size,
            meta_size,
            btb_sets,
            btb_ways,
            ras_depth,
        } = bpred;
        let BankPredParams {
            l1_size: bank_l1_size,
            history_bits: bank_history_bits,
            l2_size: bank_l2_size,
        } = bankpred;
        let CritParams { enabled: crit_enabled, table_size: crit_table_size } = crit;
        let InterconnectParams { topology, hop_latency } = interconnect;
        let CacheParams {
            model,
            l1_size,
            l1_banks,
            l1_line,
            l1_latency,
            l1_assoc,
            l1_bank_size,
            l1_bank_line,
            l1_bank_latency,
            l2_size,
            l2_assoc,
            l2_line,
            l2_latency,
            mem_latency,
            lsq_per_cluster,
        } = cache;
        let ExecLatencies { int_alu: l_int_alu, int_mul, int_div, fp_alu: l_fp_alu, fp_mul, fp_div } =
            exec;
        let words: &[u64] = &[
            // A format tag so digest-scheme changes can never collide
            // with digests of an older field order.
            0x636c_6366_6731_0000, // "clcfg1"
            *count as u64,
            *int_regs as u64,
            *fp_regs as u64,
            *int_iq as u64,
            *fp_iq as u64,
            *int_alu as u64,
            *int_muldiv as u64,
            *fp_alu as u64,
            *fp_muldiv as u64,
            *fetch_width as u64,
            *fetch_queue as u64,
            *max_basic_blocks as u64,
            *dispatch_width as u64,
            *commit_width as u64,
            *rob_size as u64,
            *mispredict_penalty,
            *bimodal_size as u64,
            *bp_l1_size as u64,
            *bp_history_bits as u64,
            *bp_l2_size as u64,
            *meta_size as u64,
            *btb_sets as u64,
            *btb_ways as u64,
            *ras_depth as u64,
            *bank_l1_size as u64,
            *bank_history_bits as u64,
            *bank_l2_size as u64,
            u64::from(*crit_enabled),
            *crit_table_size as u64,
            match topology {
                Topology::Ring => 0,
                Topology::Grid => 1,
            },
            *hop_latency,
            match model {
                CacheModel::Centralized => 0,
                CacheModel::Decentralized => 1,
            },
            *l1_size as u64,
            *l1_banks as u64,
            *l1_line as u64,
            *l1_latency,
            *l1_assoc as u64,
            *l1_bank_size as u64,
            *l1_bank_line as u64,
            *l1_bank_latency,
            *l2_size as u64,
            *l2_assoc as u64,
            *l2_line as u64,
            *l2_latency,
            *mem_latency,
            *lsq_per_cluster as u64,
            *l_int_alu,
            *int_mul,
            *int_div,
            *l_fp_alu,
            *fp_mul,
            *fp_div,
        ];
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        clustered_stats::fnv1a_64(&bytes)
    }

    /// The legal "active cluster" settings a reconfiguration policy may
    /// request under this configuration: the powers of two up to the
    /// cluster count (the subset the paper found sufficient, §4.1).
    pub fn allowed_cluster_counts(&self) -> Vec<usize> {
        (0..)
            .map(|i| 1usize << i)
            .take_while(|&n| n <= self.clusters.count)
            .collect()
    }
}

/// An invalid-configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_tables() {
        let cfg = SimConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.clusters.count, 16);
        assert_eq!(cfg.clusters.int_regs, 30);
        assert_eq!(cfg.clusters.int_iq, 15);
        assert_eq!(cfg.frontend.rob_size, 480);
        assert_eq!(cfg.frontend.fetch_width, 8);
        assert_eq!(cfg.frontend.dispatch_width, 16);
        assert_eq!(cfg.cache.l1_size, 32 * 1024);
        assert_eq!(cfg.cache.l1_latency, 6);
        assert_eq!(cfg.cache.l1_bank_latency, 4);
        assert_eq!(cfg.cache.l2_latency, 25);
        assert_eq!(cfg.cache.mem_latency, 160);
        assert_eq!(cfg.interconnect.hop_latency, 1);
    }

    #[test]
    fn monolithic_pools_resources() {
        let cfg = SimConfig::monolithic();
        cfg.validate().unwrap();
        assert_eq!(cfg.clusters.count, 1);
        assert_eq!(cfg.clusters.int_regs, 480);
        assert_eq!(cfg.clusters.int_alu, 16);
        assert_eq!(cfg.cache.lsq_per_cluster, 240);
    }

    #[test]
    fn validation_rejects_bad_counts() {
        let mut cfg = SimConfig::default();
        cfg.clusters.count = 0;
        assert!(cfg.validate().is_err());
        cfg.clusters.count = 3;
        assert!(cfg.validate().is_ok(), "ring + centralized permits any count");
        cfg.cache.model = CacheModel::Decentralized;
        assert!(cfg.validate().is_err(), "decentralized interleaving needs a power of two");
        cfg.cache.model = CacheModel::Centralized;
        cfg.interconnect.topology = Topology::Grid;
        assert!(cfg.validate().is_err(), "grid layout needs a power of two");
        cfg.interconnect.topology = Topology::Ring;
        cfg.clusters.count = 32;
        assert!(cfg.validate().is_err());
        cfg.clusters.count = 8;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_counts_past_predictor_capacity() {
        // The generic range check happens to cover the same range
        // today (MAX_CLUSTERS == 16), but the predictor check owns the
        // rejection so the two limits can move independently.
        const { assert!(MAX_CLUSTERS <= crate::bankpred::MAX_PREDICTED_BANKS) };
        let mut cfg = SimConfig::default();
        cfg.clusters.count = 32;
        let err = cfg.validate().unwrap_err().to_string();
        assert!(
            err.contains("bank predictor"),
            "expected the bank-predictor capacity to be blamed, got: {err}"
        );
    }

    #[test]
    fn validation_rejects_zero_resources() {
        let mut cfg = SimConfig::default();
        cfg.clusters.int_regs = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::default();
        cfg.frontend.dispatch_width = 0;
        assert!(cfg.validate().is_err());
    }

    /// `intra_jobs` is a host-execution knob: the schedule is
    /// thread-count invariant, so runs at different settings must stay
    /// comparable under one provenance digest.
    #[test]
    fn intra_jobs_is_a_host_knob_and_does_not_move_the_digest() {
        let base = SimConfig::default();
        assert_eq!(base.intra_jobs, 0, "the sequential oracle is the default");
        let mut threaded = base;
        threaded.intra_jobs = 4;
        assert_eq!(base.digest(), threaded.digest());
        assert!(threaded.validate().is_ok());
    }

    /// The provenance contract: the digest is a pure function of the
    /// configuration (same config → same digest) and *every* field
    /// change moves it — one mutation per parameter group, including
    /// the enum fields.
    #[test]
    fn digest_is_stable_and_sensitive_to_every_field_group() {
        let base = SimConfig::default();
        assert_eq!(base.digest(), SimConfig::default().digest(), "digest must be deterministic");
        let mutations: Vec<(&str, SimConfig)> = vec![
            ("clusters.count", {
                let mut c = base;
                c.clusters.count = 8;
                c
            }),
            ("clusters.fp_muldiv", {
                let mut c = base;
                c.clusters.fp_muldiv = 2;
                c
            }),
            ("frontend.rob_size", {
                let mut c = base;
                c.frontend.rob_size = 256;
                c
            }),
            ("frontend.mispredict_penalty", {
                let mut c = base;
                c.frontend.mispredict_penalty = 13;
                c
            }),
            ("bpred.history_bits", {
                let mut c = base;
                c.bpred.history_bits = 11;
                c
            }),
            ("bankpred.l2_size", {
                let mut c = base;
                c.bankpred.l2_size = 8192;
                c
            }),
            ("crit.enabled", {
                let mut c = base;
                c.crit.enabled = false;
                c
            }),
            ("interconnect.topology", {
                let mut c = base;
                c.interconnect.topology = Topology::Grid;
                c
            }),
            ("interconnect.hop_latency", {
                let mut c = base;
                c.interconnect.hop_latency = 2;
                c
            }),
            ("cache.model", {
                let mut c = base;
                c.cache.model = CacheModel::Decentralized;
                c
            }),
            ("cache.lsq_per_cluster", {
                let mut c = base;
                c.cache.lsq_per_cluster = 16;
                c
            }),
            ("exec.fp_div", {
                let mut c = base;
                c.exec.fp_div = 13;
                c
            }),
        ];
        let mut seen = vec![("default", base.digest())];
        for (name, cfg) in &mutations {
            let d = cfg.digest();
            for (other, prior) in &seen {
                assert_ne!(
                    d, *prior,
                    "digest of mutation `{name}` collides with `{other}`"
                );
            }
            seen.push((name, d));
        }
        // Fields in different groups must not be interchangeable: two
        // configs whose *values* swap across fields digest differently.
        let mut swap_a = base;
        swap_a.clusters.int_iq = 30;
        swap_a.clusters.int_regs = 15;
        assert_ne!(base.digest(), swap_a.digest());
    }

    #[test]
    fn allowed_counts_are_powers_of_two() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.allowed_cluster_counts(), vec![1, 2, 4, 8, 16]);
        let mut small = cfg;
        small.clusters.count = 4;
        assert_eq!(small.allowed_cluster_counts(), vec![1, 2, 4]);
    }
}
