//! Criticality prediction for steering (paper §2.1, after Fields et
//! al. and Tune et al.).
//!
//! The steering heuristic gives priority to the cluster producing the
//! *critical* source operand. This predictor learns, per consumer PC,
//! which of the two source operands tends to arrive last — the
//! last-arriving operand is the critical one — with a table of
//! saturating counters trained at issue time.

/// Last-arriving-operand predictor.
///
/// # Examples
///
/// ```
/// use clustered_sim::CriticalityPredictor;
///
/// let mut p = CriticalityPredictor::new(1024);
/// for _ in 0..4 {
///     p.update(42, 1); // operand 1 keeps arriving last
/// }
/// assert_eq!(p.predict(42), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CriticalityPredictor {
    /// Saturating counters in `0..=3`; ≥2 votes "operand 1 critical".
    table: Vec<u8>,
}

impl CriticalityPredictor {
    /// Builds a predictor with `entries` table slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> CriticalityPredictor {
        assert!(entries > 0, "table must have entries");
        // Initialise weakly toward operand 0 (the first operand is the
        // producer-steering default).
        CriticalityPredictor { table: vec![1; entries] }
    }

    /// Predicts the critical source-operand slot (0 or 1) for the
    /// instruction at `pc`.
    pub fn predict(&self, pc: u32) -> usize {
        usize::from(self.table[pc as usize % self.table.len()] >= 2)
    }

    /// Trains with the observed last-arriving slot.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `last_slot` is not 0 or 1.
    pub fn update(&mut self, pc: u32, last_slot: usize) {
        debug_assert!(last_slot < 2, "slot must be 0 or 1");
        let idx = pc as usize % self.table.len();
        let e = &mut self.table[idx];
        if last_slot == 1 {
            *e = (*e + 1).min(3);
        } else {
            *e = e.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_first_operand() {
        let p = CriticalityPredictor::new(64);
        assert_eq!(p.predict(0), 0);
        assert_eq!(p.predict(63), 0);
    }

    #[test]
    fn learns_and_unlearns() {
        let mut p = CriticalityPredictor::new(64);
        p.update(5, 1);
        assert_eq!(p.predict(5), 1);
        p.update(5, 0);
        p.update(5, 0);
        assert_eq!(p.predict(5), 0);
    }

    #[test]
    fn counters_saturate() {
        let mut p = CriticalityPredictor::new(64);
        for _ in 0..10 {
            p.update(7, 1);
        }
        // One contrary observation must not flip a saturated counter.
        p.update(7, 0);
        assert_eq!(p.predict(7), 1);
    }

    #[test]
    fn pcs_alias_by_modulo() {
        let mut p = CriticalityPredictor::new(4);
        for _ in 0..3 {
            p.update(1, 1);
        }
        assert_eq!(p.predict(5), 1, "pc 5 aliases with pc 1 in a 4-entry table");
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn rejects_empty_table() {
        let _ = CriticalityPredictor::new(0);
    }
}
