//! Conservation-law auditing: machine-checkable invariants over the
//! pipeline's counters and structures.
//!
//! The simulator's statistics are the ground truth every experiment in
//! this repository reports, so the counters themselves deserve an
//! adversary. The [`AuditObserver`] receives an end-of-cycle
//! [`AuditCheck`] snapshot (only when its `WANTS_AUDIT` flag opts in —
//! the default [`NullObserver`](crate::NullObserver) build compiles the
//! whole snapshot away) and verifies the *conservation laws* the
//! pipeline must obey at every cycle boundary:
//!
//! - **commit-order** — `committed ≤ dispatched ≤ fetched`: an
//!   instruction retires at most once and only after moving through
//!   every earlier stage.
//! - **fetch-conservation** — `fetched == dispatched + fetch-queue
//!   occupancy`, *exactly*: the trace holds only correct-path
//!   instructions, so the fetch queue is never squashed (a mispredict
//!   stalls fetch rather than filling the queue with wrong-path work)
//!   and every fetched instruction either dispatched or is still
//!   queued.
//! - **stall-partition** — the three dispatch-stall attributions
//!   (`fetch`, `rob`, `resources`) sum to at most `cycles`: dispatch
//!   blames at most one bottleneck per cycle.
//! - **quiescence-partition** — `quiescent_cluster_cycles + Σ
//!   cluster_busy_cycles == cycles × configured clusters`: the issue
//!   stage classifies every cluster every cycle as either visited or
//!   skipped, never both, never neither.
//! - **event-conservation** — calendar-queue `pushed == popped +
//!   pending`: scheduled work is delivered or still queued, never
//!   duplicated or lost across the shards and the overflow heap.
//! - **rob-bound / fetch-queue-bound / iq-bound / lsq-bound** —
//!   structure occupancies never exceed their configured capacities.
//!
//! Violations are collected as structured [`AuditViolation`] records
//! (JSON-exportable, capped like the other event logs) rather than
//! panics, so a CI run can report *every* broken law in one pass and
//! `clustered run --audit strict` can turn them into a non-zero exit.

use crate::lsq::LsqSlice;
use crate::observe::SimObserver;
use crate::stats::SimStats;
use clustered_stats::Json;
use std::fmt;

/// Default cap on stored violations; past it they are only counted.
/// A single broken law fires every audited cycle, so an uncapped log
/// would grow with run length while adding no information.
pub const DEFAULT_VIOLATION_CAP: usize = 1024;

/// End-of-cycle machine-state snapshot handed to
/// [`SimObserver::on_audit`]. All references point at live pipeline
/// state — assembling one costs a few field reads and no allocation.
#[derive(Debug)]
pub struct AuditCheck<'a> {
    /// The cycle just completed.
    pub cycle: u64,
    /// Cumulative run statistics at the end of this cycle.
    pub stats: &'a SimStats,
    /// Re-order-buffer entries in flight.
    pub rob_len: usize,
    /// Configured ROB capacity.
    pub rob_capacity: usize,
    /// Fetch-queue entries waiting to dispatch.
    pub fetch_queue_len: usize,
    /// Configured fetch-queue capacity.
    pub fetch_queue_capacity: usize,
    /// Issue-queue occupancy, `[domain][cluster]` (int = 0, fp = 1).
    pub iq_used: &'a [[usize; crate::config::MAX_CLUSTERS]; 2],
    /// Per-cluster issue-queue capacity by domain, `[int, fp]`.
    pub iq_capacity: [usize; 2],
    /// Every LSQ slice (one for centralized, one per cluster for
    /// decentralized).
    pub lsq: &'a [LsqSlice],
    /// Clusters currently enabled.
    pub active_clusters: usize,
    /// Clusters on the die.
    pub configured_clusters: usize,
    /// Calendar-queue events ever scheduled.
    pub events_pushed: u64,
    /// Calendar-queue events ever delivered.
    pub events_popped: u64,
    /// Calendar-queue events currently live (shards + overflow).
    pub events_pending: u64,
}

/// Which conservation law an [`AuditViolation`] broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditInvariant {
    /// `committed ≤ dispatched ≤ fetched` failed.
    CommitOrder,
    /// `fetched != dispatched + fetch-queue occupancy`.
    FetchConservation,
    /// Dispatch-stall attributions sum past `cycles`.
    StallPartition,
    /// Quiescent + busy cluster-cycles fail to tile
    /// `cycles × configured`.
    QuiescencePartition,
    /// Calendar-queue `pushed != popped + pending`.
    EventConservation,
    /// ROB occupancy above its configured capacity.
    RobBound,
    /// Fetch-queue occupancy above its configured capacity.
    FetchQueueBound,
    /// An issue queue above its per-cluster capacity.
    IqBound,
    /// An LSQ slice above its capacity.
    LsqBound,
}

impl AuditInvariant {
    /// Stable machine-readable identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditInvariant::CommitOrder => "commit-order",
            AuditInvariant::FetchConservation => "fetch-conservation",
            AuditInvariant::StallPartition => "stall-partition",
            AuditInvariant::QuiescencePartition => "quiescence-partition",
            AuditInvariant::EventConservation => "event-conservation",
            AuditInvariant::RobBound => "rob-bound",
            AuditInvariant::FetchQueueBound => "fetch-queue-bound",
            AuditInvariant::IqBound => "iq-bound",
            AuditInvariant::LsqBound => "lsq-bound",
        }
    }
}

impl fmt::Display for AuditInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One broken conservation law, with enough detail to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Cycle at which the check failed.
    pub cycle: u64,
    /// The law that failed.
    pub invariant: AuditInvariant,
    /// Human-readable expansion with the offending values.
    pub detail: String,
}

impl AuditViolation {
    /// The violation as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("cycle", self.cycle)
            .set("invariant", self.invariant.as_str())
            .set("detail", self.detail.as_str())
    }
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}: {}", self.cycle, self.invariant, self.detail)
    }
}

/// The conservation-law auditor: an observer running the full check
/// battery every `interval` cycles.
///
/// Opting in via `WANTS_AUDIT` makes the pipeline assemble an
/// [`AuditCheck`] each cycle; the auditor itself gates the (cheap)
/// comparisons on its cadence. Auditing only *reads* machine state, so
/// an audited run's `SimStats` are bit-identical to an unaudited one.
#[derive(Debug, Clone)]
pub struct AuditObserver {
    interval: u64,
    checks_run: u64,
    violations: Vec<AuditViolation>,
    cap: usize,
    dropped: u64,
    /// Test-only fault injection: added to the observed `fetched`
    /// counter so the fault-injection suite can prove a skewed counter
    /// trips exactly the fetch-conservation law (see
    /// [`AuditObserver::inject_fetched_skew`]).
    skew_fetched: u64,
}

impl Default for AuditObserver {
    fn default() -> AuditObserver {
        AuditObserver::new()
    }
}

impl AuditObserver {
    /// An auditor checking every cycle, keeping the first
    /// [`DEFAULT_VIOLATION_CAP`] violations.
    pub fn new() -> AuditObserver {
        AuditObserver::with_interval(1)
    }

    /// An auditor checking every `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(interval: u64) -> AuditObserver {
        assert!(interval > 0, "audit interval must be non-zero");
        AuditObserver {
            interval,
            checks_run: 0,
            violations: Vec::new(),
            cap: DEFAULT_VIOLATION_CAP,
            dropped: 0,
            skew_fetched: 0,
        }
    }

    /// Skews the *observed* `fetched` counter by `skew` instructions —
    /// a deliberate fault for testing that the auditor catches what it
    /// claims to. A non-zero skew must trip `fetch-conservation` (and
    /// only that law) on the next check of a healthy machine.
    pub fn inject_fetched_skew(&mut self, skew: u64) {
        self.skew_fetched = skew;
    }

    /// Whether no violation has been observed (stored or dropped).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Violations observed so far, in cycle order (first `cap` kept).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Check batteries run so far.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Violations dropped after the log reached its cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The audit outcome as one JSON document.
    pub fn to_json(&self) -> Json {
        let violations: Vec<Json> = self.violations.iter().map(AuditViolation::to_json).collect();
        Json::object()
            .set("interval", self.interval)
            .set("checks_run", self.checks_run)
            .set("clean", self.is_clean())
            .set("violations", Json::Arr(violations))
            .set("dropped_violations", self.dropped)
    }

    fn violate(&mut self, cycle: u64, invariant: AuditInvariant, detail: String) {
        if self.violations.len() < self.cap {
            self.violations.push(AuditViolation { cycle, invariant, detail });
        } else {
            self.dropped += 1;
        }
    }

    /// Runs the full battery against one snapshot. Public so tests can
    /// audit synthetic states without building a `Processor`.
    pub fn check(&mut self, c: &AuditCheck<'_>) {
        self.checks_run += 1;
        let s = c.stats;
        let cycle = c.cycle;
        let fetched = s.fetched + self.skew_fetched;
        if !(s.committed <= s.dispatched && s.dispatched <= fetched) {
            self.violate(
                cycle,
                AuditInvariant::CommitOrder,
                format!(
                    "committed {} ≤ dispatched {} ≤ fetched {fetched} does not hold",
                    s.committed, s.dispatched
                ),
            );
        }
        let queued = c.fetch_queue_len as u64;
        if fetched != s.dispatched + queued {
            self.violate(
                cycle,
                AuditInvariant::FetchConservation,
                format!(
                    "fetched {fetched} != dispatched {} + fetch queue {queued}",
                    s.dispatched
                ),
            );
        }
        let stalls = s.dispatch_stall_fetch + s.dispatch_stall_rob + s.dispatch_stall_resources;
        if stalls > s.cycles {
            self.violate(
                cycle,
                AuditInvariant::StallPartition,
                format!(
                    "stall attributions {stalls} (fetch {} + rob {} + resources {}) exceed {} cycles",
                    s.dispatch_stall_fetch,
                    s.dispatch_stall_rob,
                    s.dispatch_stall_resources,
                    s.cycles
                ),
            );
        }
        let busy: u64 = s.cluster_busy_cycles.iter().sum();
        let tiles = s.cycles * c.configured_clusters as u64;
        if s.quiescent_cluster_cycles + busy != tiles {
            self.violate(
                cycle,
                AuditInvariant::QuiescencePartition,
                format!(
                    "quiescent {} + busy {busy} != {} cycles × {} clusters = {tiles}",
                    s.quiescent_cluster_cycles, s.cycles, c.configured_clusters
                ),
            );
        }
        if c.events_pushed != c.events_popped + c.events_pending {
            self.violate(
                cycle,
                AuditInvariant::EventConservation,
                format!(
                    "events pushed {} != popped {} + pending {}",
                    c.events_pushed, c.events_popped, c.events_pending
                ),
            );
        }
        if c.rob_len > c.rob_capacity {
            self.violate(
                cycle,
                AuditInvariant::RobBound,
                format!("ROB occupancy {} exceeds capacity {}", c.rob_len, c.rob_capacity),
            );
        }
        if c.fetch_queue_len > c.fetch_queue_capacity {
            self.violate(
                cycle,
                AuditInvariant::FetchQueueBound,
                format!(
                    "fetch-queue occupancy {} exceeds capacity {}",
                    c.fetch_queue_len, c.fetch_queue_capacity
                ),
            );
        }
        for (domain, name) in [(0usize, "int"), (1, "fp")] {
            for cluster in 0..c.configured_clusters {
                let used = c.iq_used[domain][cluster];
                if used > c.iq_capacity[domain] {
                    self.violate(
                        cycle,
                        AuditInvariant::IqBound,
                        format!(
                            "{name} issue queue of cluster {cluster} holds {used} > capacity {}",
                            c.iq_capacity[domain]
                        ),
                    );
                }
            }
        }
        for (slice, lsq) in c.lsq.iter().enumerate() {
            if lsq.occupancy() > lsq.capacity() {
                self.violate(
                    cycle,
                    AuditInvariant::LsqBound,
                    format!(
                        "LSQ slice {slice} holds {} > capacity {}",
                        lsq.occupancy(),
                        lsq.capacity()
                    ),
                );
            }
        }
    }
}

impl SimObserver for AuditObserver {
    const WANTS_AUDIT: bool = true;

    fn on_audit(&mut self, check: &AuditCheck<'_>) {
        if check.cycle.is_multiple_of(self.interval) {
            self.check(check);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MAX_CLUSTERS;

    /// A self-consistent snapshot of a small healthy machine.
    struct Fixture {
        stats: SimStats,
        iq_used: [[usize; MAX_CLUSTERS]; 2],
        lsq: Vec<LsqSlice>,
    }

    impl Fixture {
        fn healthy() -> Fixture {
            let mut stats = SimStats {
                cycles: 100,
                committed: 180,
                dispatched: 200,
                fetched: 205,
                dispatch_stall_fetch: 10,
                dispatch_stall_rob: 5,
                dispatch_stall_resources: 3,
                quiescent_cluster_cycles: 100 * 4 - 70,
                ..SimStats::default()
            };
            stats.cluster_busy_cycles[0] = 40;
            stats.cluster_busy_cycles[1] = 30;
            let mut lsq = vec![LsqSlice::new(15); 4];
            lsq[0].allocate();
            Fixture { stats, iq_used: [[0; MAX_CLUSTERS]; 2], lsq }
        }

        fn check(&self) -> AuditCheck<'_> {
            AuditCheck {
                cycle: 100,
                stats: &self.stats,
                rob_len: 20,
                rob_capacity: 480,
                // fetched 205 − dispatched 200.
                fetch_queue_len: 5,
                fetch_queue_capacity: 32,
                iq_used: &self.iq_used,
                iq_capacity: [15, 15],
                lsq: &self.lsq,
                active_clusters: 4,
                configured_clusters: 4,
                events_pushed: 900,
                events_popped: 890,
                events_pending: 10,
            }
        }
    }

    fn invariants(a: &AuditObserver) -> Vec<AuditInvariant> {
        a.violations().iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        let f = Fixture::healthy();
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert!(a.is_clean(), "unexpected violations: {:?}", a.violations());
        assert_eq!(a.checks_run(), 1);
    }

    #[test]
    fn each_broken_law_is_flagged_precisely() {
        // Commit order: more committed than dispatched.
        let mut f = Fixture::healthy();
        f.stats.committed = f.stats.dispatched + 1;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::CommitOrder]);

        // Fetch conservation: an instruction vanished between fetch
        // and dispatch.
        let mut f = Fixture::healthy();
        f.stats.fetched += 1;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::FetchConservation]);

        // Stall partition: attributions exceed elapsed cycles.
        let mut f = Fixture::healthy();
        f.stats.dispatch_stall_rob = f.stats.cycles;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::StallPartition]);

        // Quiescence partition: a cluster-cycle went missing.
        let mut f = Fixture::healthy();
        f.stats.quiescent_cluster_cycles -= 1;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::QuiescencePartition]);

        // Bounds.
        let f = Fixture::healthy();
        let mut c = f.check();
        c.rob_len = c.rob_capacity + 1;
        let mut a = AuditObserver::new();
        a.check(&c);
        assert_eq!(invariants(&a), vec![AuditInvariant::RobBound]);

        let f = Fixture::healthy();
        let mut c = f.check();
        c.events_pending += 2;
        let mut a = AuditObserver::new();
        a.check(&c);
        assert_eq!(invariants(&a), vec![AuditInvariant::EventConservation]);
    }

    #[test]
    fn iq_and_lsq_bounds_name_the_offending_structure() {
        let mut f = Fixture::healthy();
        f.iq_used[1][2] = 16;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::IqBound]);
        assert!(a.violations()[0].detail.contains("fp issue queue of cluster 2"));

        // The LSQ bound is `≤`: a slice at exactly its capacity is
        // clean. (Exceeding it through the public API is impossible —
        // `LsqSlice::allocate` asserts — which is itself the first
        // line of defence the auditor backs up.)
        let mut f = Fixture::healthy();
        let mut full = LsqSlice::new(1);
        full.allocate();
        f.lsq[3] = full;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        assert!(a.is_clean());
    }

    #[test]
    fn injected_fetch_skew_trips_exactly_fetch_conservation() {
        let f = Fixture::healthy();
        let mut a = AuditObserver::new();
        a.inject_fetched_skew(7);
        a.check(&f.check());
        assert_eq!(invariants(&a), vec![AuditInvariant::FetchConservation]);
        assert!(a.violations()[0].detail.starts_with("fetched 212"));
    }

    #[test]
    fn violation_log_caps_and_counts() {
        let mut f = Fixture::healthy();
        f.stats.committed = f.stats.dispatched + 1;
        let mut a = AuditObserver::new();
        a.cap = 2;
        for _ in 0..5 {
            a.check(&f.check());
        }
        assert_eq!(a.violations().len(), 2);
        assert_eq!(a.dropped(), 3);
        assert!(!a.is_clean());
    }

    #[test]
    fn interval_gates_the_on_audit_cadence() {
        let f = Fixture::healthy();
        let mut a = AuditObserver::with_interval(10);
        for cycle in 1..=25u64 {
            let mut c = f.check();
            c.cycle = cycle;
            a.on_audit(&c);
        }
        assert_eq!(a.checks_run(), 2, "cycles 10 and 20");
    }

    #[test]
    fn json_reports_the_outcome() {
        let mut f = Fixture::healthy();
        f.stats.fetched += 3;
        let mut a = AuditObserver::new();
        a.check(&f.check());
        let j = a.to_json();
        assert_eq!(j.get("clean").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("checks_run").and_then(Json::as_u64), Some(1));
        let v = j.get("violations").and_then(Json::as_arr).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].get("invariant").and_then(Json::as_str), Some("fetch-conservation"));
        assert!(v[0].get("cycle").is_some() && v[0].get("detail").is_some());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_is_rejected() {
        let _ = AuditObserver::with_interval(0);
    }
}
