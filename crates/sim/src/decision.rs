//! Decision telemetry: what a reconfiguration policy decided and why.
//!
//! The paper's contribution is the *run-time decision algorithm* (§4):
//! interval exploration, instability detection, interval-length
//! adaptation, and fine-grain triggers. A [`DecisionRecord`] is one
//! entry of that algorithm's own log — emitted at each evaluation point
//! through [`ReconfigPolicy::take_decision`](crate::ReconfigPolicy::take_decision)
//! and delivered to observers via
//! [`SimObserver::on_decision`](crate::SimObserver::on_decision).
//!
//! Records are drained by the simulator only when the observer opts in
//! (`SimObserver::WANTS_DECISIONS`), so the default
//! [`NullObserver`](crate::NullObserver) pays nothing and policies stay
//! bounded: they keep at most one undrained record.

use clustered_stats::Json;

/// The coarse state a policy is in when it makes a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyState {
    /// Measuring candidate configurations (paper Figure 4's
    /// exploration phase, or a distant-ILP probe interval).
    Exploring,
    /// Locked onto a chosen configuration.
    Stable,
    /// Reconfiguration permanently disabled after persistent
    /// instability (paper §4.2: pinned to the most popular
    /// configuration).
    Discontinued,
    /// Warm-up intervals whose statistics are discarded.
    Cooldown,
}

impl PolicyState {
    /// The stable lower-case label used in JSONL output and the
    /// `clustered explain` timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyState::Exploring => "exploring",
            PolicyState::Stable => "stable",
            PolicyState::Discontinued => "discontinued",
            PolicyState::Cooldown => "cooldown",
        }
    }
}

impl std::fmt::Display for PolicyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a policy chose the configuration in a [`DecisionRecord`].
///
/// One shared discriminant across all policy families keeps the JSONL
/// schema uniform; each family uses the subset that applies to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionReason {
    /// A fixed baseline policy: the configuration never changes and
    /// records are periodic checkpoints.
    FixedBaseline,
    /// Periodic checkpoint of a policy that made no decision this
    /// interval (fine-grain policies between triggers).
    Checkpoint,
    /// First measured interval: establishes the reference statistics.
    Reference,
    /// Mid-exploration: this interval measured one candidate
    /// configuration and moved on to the next.
    Exploring,
    /// Exploration finished; the best-IPC configuration was selected.
    ExplorationComplete,
    /// Interval statistics matched the reference; the configuration
    /// was kept.
    StableNoChange,
    /// Branch/memref counts deviated from the reference beyond the
    /// noise threshold; exploration restarts (paper Figure 4).
    PhaseChangeMetrics,
    /// Interval IPC deviated from the reference beyond the noise
    /// threshold; exploration restarts.
    PhaseChangeIpc,
    /// Instability crossed the threshold and the interval length was
    /// doubled before re-exploring (paper §4.2).
    IntervalDoubled,
    /// Instability persisted past the maximum interval length:
    /// reconfiguration is discontinued at the most popular
    /// configuration.
    Discontinued,
    /// The macrophase timer expired and the algorithm reset to its
    /// initial interval length.
    MacrophaseReset,
    /// A start-up interval whose statistics were discarded
    /// (distant-ILP policy warm-up).
    StartupSkip,
    /// A distant-ILP probe interval concluded and picked wide or
    /// narrow from the measured distant-issue count (paper §4.3).
    ProbeResult,
    /// A fine-grain trigger hit a table entry with recorded advice
    /// (paper §4.4).
    TriggerAdvice,
    /// A fine-grain trigger missed the table; the policy went wide to
    /// gather a sample.
    TriggerUnsampled,
    /// The fine-grain advice table was flushed for re-learning.
    TableFlush,
}

impl DecisionReason {
    /// The stable kebab-case label used in JSONL output and the
    /// `clustered explain` timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionReason::FixedBaseline => "fixed-baseline",
            DecisionReason::Checkpoint => "checkpoint",
            DecisionReason::Reference => "reference",
            DecisionReason::Exploring => "exploring",
            DecisionReason::ExplorationComplete => "exploration-complete",
            DecisionReason::StableNoChange => "stable-no-change",
            DecisionReason::PhaseChangeMetrics => "phase-change-metrics",
            DecisionReason::PhaseChangeIpc => "phase-change-ipc",
            DecisionReason::IntervalDoubled => "interval-doubled",
            DecisionReason::Discontinued => "discontinued",
            DecisionReason::MacrophaseReset => "macrophase-reset",
            DecisionReason::StartupSkip => "startup-skip",
            DecisionReason::ProbeResult => "probe-result",
            DecisionReason::TriggerAdvice => "trigger-advice",
            DecisionReason::TriggerUnsampled => "trigger-unsampled",
            DecisionReason::TableFlush => "table-flush",
        }
    }
}

impl std::fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One policy decision: the state of the run-time algorithm at one
/// evaluation point, and the configuration it chose.
///
/// Every field is always present (empty/zero where a family has no
/// such concept) so the JSONL schema is uniform across policies.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Decision index, counting from 1 within the run.
    pub interval: u64,
    /// Committed-instruction count (policy-local) at the decision.
    pub commit: u64,
    /// Cycle of the first commit covered by this decision's interval.
    pub start_cycle: u64,
    /// Cycle of the commit that triggered the decision.
    pub cycle: u64,
    /// The algorithm's state after the decision.
    pub state: PolicyState,
    /// IPC measured over the interval ending here.
    pub ipc: f64,
    /// Branch-count delta vs. the interval the policy compares
    /// against (reference interval; zero where not applicable).
    pub branch_delta: i64,
    /// Memory-reference-count delta vs. the comparison interval.
    pub memref_delta: i64,
    /// The instability factor after the decision (paper §4.2; zero
    /// for families without one).
    pub instability: f64,
    /// The per-configuration IPC table accumulated so far, in
    /// exploration order; empty outside exploration.
    pub explored_ipc: Vec<f64>,
    /// The policy's current evaluation-interval length, in committed
    /// instructions.
    pub interval_length: u64,
    /// The active-cluster count chosen by this decision.
    pub clusters: usize,
    /// Why the policy chose it.
    pub reason: DecisionReason,
}

impl DecisionRecord {
    /// The record as one JSON object — one line of the decision-trace
    /// JSONL schema documented in EXPERIMENTS.md.
    pub fn to_json(&self) -> Json {
        let explored: Vec<Json> = self.explored_ipc.iter().map(|&v| Json::from(v)).collect();
        Json::object()
            .set("interval", self.interval)
            .set("commit", self.commit)
            .set("start_cycle", self.start_cycle)
            .set("cycle", self.cycle)
            .set("state", self.state.as_str())
            .set("ipc", self.ipc)
            .set("branch_delta", self.branch_delta as f64)
            .set("memref_delta", self.memref_delta as f64)
            .set("instability", self.instability)
            .set("explored_ipc", Json::Arr(explored))
            .set("interval_length", self.interval_length)
            .set("clusters", self.clusters)
            .set("reason", self.reason.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DecisionRecord {
        DecisionRecord {
            interval: 3,
            commit: 30_000,
            start_cycle: 41_000,
            cycle: 62_000,
            state: PolicyState::Exploring,
            ipc: 1.25,
            branch_delta: -12,
            memref_delta: 4,
            instability: 2.0,
            explored_ipc: vec![1.1, 1.25],
            interval_length: 10_000,
            clusters: 8,
            reason: DecisionReason::Exploring,
        }
    }

    #[test]
    fn record_json_has_the_documented_keys_in_order() {
        let j = sample().to_json();
        assert_eq!(
            j.keys().unwrap(),
            vec![
                "interval",
                "commit",
                "start_cycle",
                "cycle",
                "state",
                "ipc",
                "branch_delta",
                "memref_delta",
                "instability",
                "explored_ipc",
                "interval_length",
                "clusters",
                "reason"
            ]
        );
        assert_eq!(j.get("state").unwrap().as_str(), Some("exploring"));
        assert_eq!(j.get("reason").unwrap().as_str(), Some("exploring"));
        assert_eq!(j.get("clusters").unwrap().as_u64(), Some(8));
        assert_eq!(j.get("explored_ipc").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn labels_are_stable_kebab_case() {
        assert_eq!(PolicyState::Cooldown.as_str(), "cooldown");
        assert_eq!(DecisionReason::ExplorationComplete.to_string(), "exploration-complete");
        assert_eq!(DecisionReason::PhaseChangeMetrics.to_string(), "phase-change-metrics");
        for reason in [
            DecisionReason::FixedBaseline,
            DecisionReason::Checkpoint,
            DecisionReason::Reference,
            DecisionReason::Exploring,
            DecisionReason::ExplorationComplete,
            DecisionReason::StableNoChange,
            DecisionReason::PhaseChangeMetrics,
            DecisionReason::PhaseChangeIpc,
            DecisionReason::IntervalDoubled,
            DecisionReason::Discontinued,
            DecisionReason::MacrophaseReset,
            DecisionReason::StartupSkip,
            DecisionReason::ProbeResult,
            DecisionReason::TriggerAdvice,
            DecisionReason::TriggerUnsampled,
            DecisionReason::TableFlush,
        ] {
            let label = reason.as_str();
            assert!(!label.is_empty());
            assert!(label.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{label}");
        }
    }

    #[test]
    fn negative_deltas_survive_the_json_round_trip() {
        let text = sample().to_json().to_string_compact();
        let parsed = clustered_stats::json::parse(&text).unwrap();
        assert_eq!(parsed.get("branch_delta").unwrap().as_f64(), Some(-12.0));
        assert_eq!(parsed.get("interval_length").unwrap().as_u64(), Some(10_000));
    }
}
