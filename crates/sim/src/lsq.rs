//! Load/store-queue slices: occupancy, memory disambiguation, and
//! store-to-load forwarding bookkeeping.
//!
//! The centralized model has one slice (co-located with cluster 0,
//! `15 × N` entries); the decentralized model has one 15-entry slice
//! per cluster, where a store additionally occupies a *dummy* slot in
//! every other active slice until its address broadcast arrives
//! (paper §5, after Zyuban & Kogge).

use crate::fxhash::FastMap;

/// One load/store queue slice.
///
/// The disambiguation sets are sorted vectors, not `BTreeSet`s: a
/// slice holds at most its capacity (15 by default) entries, stores
/// arrive in program order (append), and the hot queries — "any
/// unresolved store older than this load?" — read only the front.
#[derive(Debug, Clone, Default)]
pub struct LsqSlice {
    capacity: usize,
    used: usize,
    /// Stores whose address is not yet known *at this slice*,
    /// ascending by seq.
    unresolved_stores: Vec<u64>,
    /// Loads that arrived but found an earlier unresolved store,
    /// ascending by seq.
    parked_loads: Vec<u64>,
    /// Resolved stores by 8-byte word: word → (store seq, time the
    /// data is available here), for forwarding.
    store_words: FastMap<u64, Vec<(u64, u64)>>,
}

impl LsqSlice {
    /// An empty slice holding up to `capacity` entries.
    pub fn new(capacity: usize) -> LsqSlice {
        LsqSlice { capacity, ..LsqSlice::default() }
    }

    /// Whether a new entry can be allocated.
    #[inline]
    pub fn has_space(&self) -> bool {
        self.used < self.capacity
    }

    /// Current occupancy.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.used
    }

    /// Configured capacity (the auditor checks `occupancy ≤ capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates one slot (real entry or dummy).
    ///
    /// # Panics
    ///
    /// Panics if the slice is full; callers must check
    /// [`LsqSlice::has_space`] first.
    #[inline]
    pub fn allocate(&mut self) {
        assert!(self.used < self.capacity, "LSQ overflow");
        self.used += 1;
    }

    /// Releases one slot.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[inline]
    pub fn release(&mut self) {
        assert!(self.used > 0, "LSQ underflow");
        self.used -= 1;
    }

    /// Records that store `seq`'s address is not yet known here.
    /// Dispatch calls this in program order, so the common case is a
    /// plain append; the sorted insert is kept for arbitrary callers.
    pub fn add_unresolved_store(&mut self, seq: u64) {
        match self.unresolved_stores.last() {
            Some(&last) if last > seq => {
                let pos = self.unresolved_stores.partition_point(|&s| s < seq);
                self.unresolved_stores.insert(pos, seq);
            }
            _ => self.unresolved_stores.push(seq),
        }
    }

    /// Whether a load at `seq` must wait for an earlier store's
    /// address.
    #[inline]
    pub fn blocked(&self, seq: u64) -> bool {
        self.unresolved_stores.first().is_some_and(|&s| s < seq)
    }

    /// Parks a blocked load.
    pub fn park(&mut self, seq: u64) {
        let pos = self.parked_loads.partition_point(|&s| s < seq);
        self.parked_loads.insert(pos, seq);
    }

    /// Marks store `seq` resolved here; returns the parked loads that
    /// may now proceed, oldest first.
    pub fn resolve_store(&mut self, seq: u64) -> Vec<u64> {
        if let Ok(i) = self.unresolved_stores.binary_search(&seq) {
            self.unresolved_stores.remove(i);
        }
        let horizon = self.unresolved_stores.first().copied().unwrap_or(u64::MAX);
        let n = self.parked_loads.partition_point(|&s| s < horizon);
        self.parked_loads.drain(..n).collect()
    }

    /// Records a resolved store's word for forwarding, with the time
    /// its data is available at this slice.
    pub fn record_store_data(&mut self, word: u64, seq: u64, avail: u64) {
        self.store_words.entry(word).or_default().push((seq, avail));
    }

    /// The latest store older than `load_seq` to the same word, if
    /// any: `(store_seq, data_available_at)`.
    #[inline]
    pub fn forward_source(&self, word: u64, load_seq: u64) -> Option<(u64, u64)> {
        self.store_words
            .get(&word)?
            .iter()
            .filter(|&&(s, _)| s < load_seq)
            .max_by_key(|&&(s, _)| s)
            .copied()
    }

    /// Updates a store's forwarding record once its data is known
    /// (records are created with `u64::MAX` when the address resolves
    /// before the value is computed). A missing record is fine — the
    /// broadcast may still be in flight and will record the final time.
    pub fn update_store_data(&mut self, word: u64, seq: u64, avail: u64) {
        if let Some(v) = self.store_words.get_mut(&word) {
            for entry in v.iter_mut() {
                if entry.0 == seq {
                    entry.1 = avail;
                }
            }
        }
    }

    /// Removes a committed store's forwarding record.
    pub fn remove_store_data(&mut self, word: u64, seq: u64) {
        if let Some(v) = self.store_words.get_mut(&word) {
            v.retain(|&(s, _)| s != seq);
            if v.is_empty() {
                self.store_words.remove(&word);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() {
        let mut s = LsqSlice::new(2);
        assert!(s.has_space());
        s.allocate();
        s.allocate();
        assert!(!s.has_space());
        s.release();
        assert!(s.has_space());
        assert_eq!(s.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut s = LsqSlice::new(1);
        s.allocate();
        s.allocate();
    }

    #[test]
    fn blocking_respects_program_order() {
        let mut s = LsqSlice::new(8);
        s.add_unresolved_store(10);
        assert!(!s.blocked(5), "load older than the store is not blocked");
        assert!(s.blocked(11), "load younger than an unresolved store is blocked");
        s.resolve_store(10);
        assert!(!s.blocked(11));
    }

    #[test]
    fn resolve_frees_parked_loads_up_to_next_unresolved() {
        let mut s = LsqSlice::new(8);
        s.add_unresolved_store(10);
        s.add_unresolved_store(20);
        s.park(12);
        s.park(25);
        let freed = s.resolve_store(10);
        assert_eq!(freed, vec![12], "25 still blocked by store 20");
        let freed = s.resolve_store(20);
        assert_eq!(freed, vec![25]);
    }

    #[test]
    fn forwarding_picks_latest_older_store() {
        let mut s = LsqSlice::new(8);
        s.record_store_data(100, 5, 50);
        s.record_store_data(100, 8, 80);
        s.record_store_data(100, 12, 120);
        assert_eq!(s.forward_source(100, 10), Some((8, 80)));
        assert_eq!(s.forward_source(100, 6), Some((5, 50)));
        assert_eq!(s.forward_source(100, 5), None, "same-age store is not older");
        assert_eq!(s.forward_source(101, 10), None, "different word");
        s.remove_store_data(100, 8);
        assert_eq!(s.forward_source(100, 10), Some((5, 50)));
    }
}
