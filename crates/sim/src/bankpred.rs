//! Two-level bank predictor for the decentralized cache (paper §5,
//! after Yoaz et al.).
//!
//! At rename, the bank a load/store will access is unknown; the
//! predictor guesses it from the instruction's bank history so the
//! instruction can be steered to the cluster owning that bank. The
//! predictor always produces a full 4-bit bank number; when fewer
//! clusters are active the caller masks to the low-order bits, which is
//! why (as the paper notes) the predictor need not be flushed on
//! reconfiguration.

use crate::config::BankPredParams;

/// Width of one bank id in the packed history register.
pub const BANK_BITS: u32 = 4;

/// The largest bank count the predictor can track without aliasing:
/// each trained bank is packed into a [`BANK_BITS`]-wide field of the
/// history register, so banks `>= 1 << BANK_BITS` would fold onto
/// lower ones and corrupt every history that observes them.
/// `SimConfig::validate` rejects configurations past this capacity.
pub const MAX_PREDICTED_BANKS: usize = 1 << BANK_BITS;

/// Two-level bank predictor: a per-PC history of recent banks indexing
/// a pattern table of last-seen banks.
#[derive(Debug, Clone)]
pub struct BankPredictor {
    history: Vec<u32>,
    history_mask: u32,
    pattern: Vec<u8>,
}

impl BankPredictor {
    /// Builds a predictor with the given geometry.
    pub fn new(params: &BankPredParams) -> BankPredictor {
        BankPredictor {
            history: vec![0; params.l1_size],
            history_mask: (1u32 << params.history_bits) - 1,
            pattern: vec![0; params.l2_size],
        }
    }

    fn pattern_index(&self, pc: u32) -> usize {
        let hist = self.history[pc as usize % self.history.len()] as usize;
        // XOR-fold the PC into the index (gshare-style): shifting it
        // past the history bits would put it entirely above the table
        // modulus with the default 12-bit history.
        (hist ^ (pc as usize).wrapping_mul(0x9e37)) % self.pattern.len()
    }

    /// Predicts the (full-width) bank for the memory instruction at
    /// `pc`.
    pub fn predict(&self, pc: u32) -> u8 {
        self.pattern[self.pattern_index(pc)]
    }

    /// Trains the predictor with the resolved bank.
    ///
    /// `bank` must be below [`MAX_PREDICTED_BANKS`]; the history packs
    /// it into a [`BANK_BITS`]-wide field, and a wider bank would
    /// silently alias a lower one.
    pub fn update(&mut self, pc: u32, bank: u8) {
        debug_assert!(
            (bank as usize) < MAX_PREDICTED_BANKS,
            "bank {bank} does not fit the predictor's {BANK_BITS}-bit history field"
        );
        let pi = self.pattern_index(pc);
        self.pattern[pi] = bank;
        let hi = pc as usize % self.history.len();
        self.history[hi] = ((self.history[hi] << BANK_BITS)
            | (bank as u32 & (MAX_PREDICTED_BANKS as u32 - 1)))
            & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BankPredictor {
        BankPredictor::new(&BankPredParams::default())
    }

    #[test]
    fn learns_constant_bank() {
        let mut p = predictor();
        for _ in 0..4 {
            p.update(100, 7);
        }
        assert_eq!(p.predict(100), 7);
    }

    #[test]
    fn learns_strided_pattern() {
        let mut p = predictor();
        // A load sweeping banks 0,1,2,3,0,1,2,3...
        let mut wrong = 0;
        let mut bank = 0u8;
        for _ in 0..400 {
            if p.predict(100) != bank {
                wrong += 1;
            }
            p.update(100, bank);
            bank = (bank + 1) % 4;
        }
        assert!(wrong < 40, "strided bank pattern not learned: {wrong}/400 wrong");
    }

    #[test]
    fn masking_to_fewer_banks_remains_valid() {
        let mut p = predictor();
        for _ in 0..4 {
            p.update(100, 0b1110);
        }
        // With 4 active clusters only the low 2 bits matter.
        assert_eq!(p.predict(100) & 0b11, 0b10);
    }

    #[test]
    fn full_width_banks_train_without_truncation() {
        let mut p = predictor();
        for _ in 0..4 {
            p.update(100, (MAX_PREDICTED_BANKS - 1) as u8);
        }
        assert_eq!(p.predict(100), (MAX_PREDICTED_BANKS - 1) as u8);
    }

    #[test]
    #[should_panic(expected = "4-bit history field")]
    fn oversized_banks_are_rejected_in_debug() {
        let mut p = predictor();
        p.update(100, MAX_PREDICTED_BANKS as u8);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = predictor();
        for _ in 0..8 {
            p.update(100, 3);
            p.update(101, 5);
        }
        assert_eq!(p.predict(100), 3);
        assert_eq!(p.predict(101), 5);
    }
}
