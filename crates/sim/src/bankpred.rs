//! Two-level bank predictor for the decentralized cache (paper §5,
//! after Yoaz et al.).
//!
//! At rename, the bank a load/store will access is unknown; the
//! predictor guesses it from the instruction's bank history so the
//! instruction can be steered to the cluster owning that bank. The
//! predictor always produces a full 4-bit bank number; when fewer
//! clusters are active the caller masks to the low-order bits, which is
//! why (as the paper notes) the predictor need not be flushed on
//! reconfiguration.

use crate::config::BankPredParams;

/// Two-level bank predictor: a per-PC history of recent banks indexing
/// a pattern table of last-seen banks.
#[derive(Debug, Clone)]
pub struct BankPredictor {
    history: Vec<u32>,
    history_mask: u32,
    pattern: Vec<u8>,
}

impl BankPredictor {
    /// Builds a predictor with the given geometry.
    pub fn new(params: &BankPredParams) -> BankPredictor {
        BankPredictor {
            history: vec![0; params.l1_size],
            history_mask: (1u32 << params.history_bits) - 1,
            pattern: vec![0; params.l2_size],
        }
    }

    fn pattern_index(&self, pc: u32) -> usize {
        let hist = self.history[pc as usize % self.history.len()] as usize;
        // XOR-fold the PC into the index (gshare-style): shifting it
        // past the history bits would put it entirely above the table
        // modulus with the default 12-bit history.
        (hist ^ (pc as usize).wrapping_mul(0x9e37)) % self.pattern.len()
    }

    /// Predicts the (full-width) bank for the memory instruction at
    /// `pc`.
    pub fn predict(&self, pc: u32) -> u8 {
        self.pattern[self.pattern_index(pc)]
    }

    /// Trains the predictor with the resolved bank.
    pub fn update(&mut self, pc: u32, bank: u8) {
        let pi = self.pattern_index(pc);
        self.pattern[pi] = bank;
        let hi = pc as usize % self.history.len();
        self.history[hi] = ((self.history[hi] << 4) | (bank as u32 & 15)) & self.history_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor() -> BankPredictor {
        BankPredictor::new(&BankPredParams::default())
    }

    #[test]
    fn learns_constant_bank() {
        let mut p = predictor();
        for _ in 0..4 {
            p.update(100, 7);
        }
        assert_eq!(p.predict(100), 7);
    }

    #[test]
    fn learns_strided_pattern() {
        let mut p = predictor();
        // A load sweeping banks 0,1,2,3,0,1,2,3...
        let mut wrong = 0;
        let mut bank = 0u8;
        for _ in 0..400 {
            if p.predict(100) != bank {
                wrong += 1;
            }
            p.update(100, bank);
            bank = (bank + 1) % 4;
        }
        assert!(wrong < 40, "strided bank pattern not learned: {wrong}/400 wrong");
    }

    #[test]
    fn masking_to_fewer_banks_remains_valid() {
        let mut p = predictor();
        for _ in 0..4 {
            p.update(100, 0b1110);
        }
        // With 4 active clusters only the low 2 bits matter.
        assert_eq!(p.predict(100) & 0b11, 0b10);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = predictor();
        for _ in 0..8 {
            p.update(100, 3);
            p.update(101, 5);
        }
        assert_eq!(p.predict(100), 3);
        assert_eq!(p.predict(101), 5);
    }
}
