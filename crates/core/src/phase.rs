//! Offline phase-consistency analysis (paper §4.1, Table 4).
//!
//! The paper characterises each benchmark by its *instability factor*:
//! the fraction of intervals that differ significantly from the first
//! interval of their phase, evaluated for a range of interval lengths.
//! This module provides a recording policy that collects per-interval
//! metrics during a simulation, and the analysis that derives
//! instability factors from them.

use clustered_sim::{CommitEvent, ReconfigPolicy};
use std::cell::RefCell;
use std::rc::Rc;

/// Metrics of one base interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalRecord {
    /// Committed instructions (the base interval length).
    pub instructions: u64,
    /// Cycles the interval took.
    pub cycles: u64,
    /// Committed control transfers.
    pub branches: u64,
    /// Committed loads + stores.
    pub memrefs: u64,
}

impl IntervalRecord {
    /// The interval's IPC.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles.max(1) as f64
    }

    fn merge(&mut self, other: &IntervalRecord) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.branches += other.branches;
        self.memrefs += other.memrefs;
    }
}

/// A pseudo-policy that never reconfigures but records per-interval
/// metrics into a shared buffer, for offline analysis.
///
/// # Examples
///
/// ```
/// use clustered_core::phase::MetricsRecorder;
/// use clustered_sim::ReconfigPolicy;
///
/// let (recorder, records) = MetricsRecorder::new(16, 1_000);
/// assert_eq!(recorder.initial_clusters(), 16);
/// assert!(records.borrow().is_empty());
/// ```
#[derive(Debug)]
pub struct MetricsRecorder {
    clusters: usize,
    base_interval: u64,
    current: IntervalRecord,
    start_cycle: u64,
    out: Rc<RefCell<Vec<IntervalRecord>>>,
}

impl MetricsRecorder {
    /// Creates a recorder pinned to `clusters`, sampling every
    /// `base_interval` committed instructions. Returns the policy and
    /// the shared buffer the records appear in.
    ///
    /// # Panics
    ///
    /// Panics if `base_interval` is zero.
    pub fn new(
        clusters: usize,
        base_interval: u64,
    ) -> (MetricsRecorder, Rc<RefCell<Vec<IntervalRecord>>>) {
        assert!(base_interval > 0, "base interval must be non-zero");
        let out = Rc::new(RefCell::new(Vec::new()));
        (
            MetricsRecorder {
                clusters,
                base_interval,
                current: IntervalRecord::default(),
                start_cycle: 0,
                out: Rc::clone(&out),
            },
            out,
        )
    }
}

impl ReconfigPolicy for MetricsRecorder {
    fn name(&self) -> String {
        format!("metrics-recorder/{}", self.base_interval)
    }

    fn initial_clusters(&self) -> usize {
        self.clusters
    }

    fn on_commit(&mut self, event: &CommitEvent) -> Option<usize> {
        if self.current.instructions == 0 && self.start_cycle == 0 {
            self.start_cycle = event.cycle;
        }
        self.current.instructions += 1;
        if event.is_branch {
            self.current.branches += 1;
        }
        if event.is_memref {
            self.current.memrefs += 1;
        }
        if self.current.instructions >= self.base_interval {
            self.current.cycles = event.cycle.saturating_sub(self.start_cycle).max(1);
            self.out.borrow_mut().push(self.current);
            self.current = IntervalRecord::default();
            self.start_cycle = event.cycle;
        }
        None
    }
}

/// Thresholds used to call an interval "unstable" relative to its
/// phase's reference interval, mirroring the Figure 4 tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityThresholds {
    /// Relative IPC deviation treated as significant.
    pub ipc_noise: f64,
    /// A branch/memref count change larger than
    /// `interval_length / metric_divisor` is significant.
    pub metric_divisor: u64,
}

impl Default for StabilityThresholds {
    fn default() -> StabilityThresholds {
        StabilityThresholds { ipc_noise: 0.10, metric_divisor: 100 }
    }
}

/// Groups base records into intervals of `group` records each and
/// computes the instability factor (percent of intervals flagged
/// unstable), replaying the paper's phase-detection rule: the first
/// interval of each phase is the reference; an interval whose IPC,
/// branch count, or memref count deviates significantly starts a new
/// phase and counts as unstable.
///
/// Returns `None` if fewer than two grouped intervals exist.
///
/// # Panics
///
/// Panics if `group` is zero.
pub fn instability_factor(
    records: &[IntervalRecord],
    group: usize,
    thresholds: &StabilityThresholds,
) -> Option<f64> {
    assert!(group > 0, "group must be non-zero");
    let grouped: Vec<IntervalRecord> = records
        .chunks_exact(group)
        .map(|chunk| {
            let mut merged = IntervalRecord::default();
            for r in chunk {
                merged.merge(r);
            }
            merged
        })
        .collect();
    if grouped.len() < 2 {
        return None;
    }
    let interval_length = grouped[0].instructions;
    let metric_threshold = (interval_length / thresholds.metric_divisor).max(1);
    let mut reference = grouped[0];
    let mut unstable = 0usize;
    for interval in &grouped[1..] {
        let ipc_change = {
            let ref_ipc = reference.ipc();
            ref_ipc > 0.0 && (interval.ipc() - ref_ipc).abs() / ref_ipc > thresholds.ipc_noise
        };
        let branch_change = interval.branches.abs_diff(reference.branches) > metric_threshold;
        let memref_change = interval.memrefs.abs_diff(reference.memrefs) > metric_threshold;
        if ipc_change || branch_change || memref_change {
            unstable += 1;
            reference = *interval; // new phase begins here
        }
    }
    Some(100.0 * unstable as f64 / (grouped.len() - 1) as f64)
}

/// Finds the smallest interval length (as a multiple of the base
/// records, in instructions) whose instability factor is acceptable
/// (paper: < 5%). Returns `(interval_instructions, factor)`; falls
/// back to the largest tested length if none qualifies.
pub fn minimum_stable_interval(
    records: &[IntervalRecord],
    thresholds: &StabilityThresholds,
    acceptable: f64,
) -> Option<(u64, f64)> {
    let base = records.first()?.instructions;
    let mut fallback = None;
    let mut group = 1usize;
    while records.len() / group >= 2 {
        if let Some(factor) = instability_factor(records, group, thresholds) {
            let length = base * group as u64;
            if factor < acceptable {
                return Some((length, factor));
            }
            fallback = Some((length, factor));
        }
        group *= 2;
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycles: u64, branches: u64, memrefs: u64) -> IntervalRecord {
        IntervalRecord { instructions: 1_000, cycles, branches, memrefs }
    }

    #[test]
    fn stable_stream_has_zero_instability() {
        let records: Vec<_> = (0..64).map(|_| record(500, 100, 300)).collect();
        let f = instability_factor(&records, 1, &StabilityThresholds::default()).unwrap();
        assert_eq!(f, 0.0);
    }

    #[test]
    fn alternating_stream_is_fully_unstable() {
        let records: Vec<_> =
            (0..64).map(|i| if i % 2 == 0 { record(500, 100, 300) } else { record(500, 200, 300) }).collect();
        let f = instability_factor(&records, 1, &StabilityThresholds::default()).unwrap();
        assert!(f > 90.0, "every interval differs from its predecessor: {f}");
    }

    #[test]
    fn grouping_smooths_alternation() {
        // Alternating at the base granularity, but every group of two
        // looks identical → stable at the doubled interval.
        let records: Vec<_> =
            (0..64).map(|i| if i % 2 == 0 { record(400, 100, 300) } else { record(600, 200, 300) }).collect();
        let fine = instability_factor(&records, 1, &StabilityThresholds::default()).unwrap();
        let coarse = instability_factor(&records, 2, &StabilityThresholds::default()).unwrap();
        assert!(fine > 50.0);
        assert_eq!(coarse, 0.0);
    }

    #[test]
    fn minimum_stable_interval_picks_first_acceptable() {
        let records: Vec<_> =
            (0..64).map(|i| if i % 2 == 0 { record(400, 100, 300) } else { record(600, 200, 300) }).collect();
        let (len, factor) =
            minimum_stable_interval(&records, &StabilityThresholds::default(), 5.0).unwrap();
        assert_eq!(len, 2_000);
        assert!(factor < 5.0);
    }

    #[test]
    fn ipc_only_change_detected() {
        let mut records: Vec<_> = (0..32).map(|_| record(500, 100, 300)).collect();
        records.extend((0..32).map(|_| record(900, 100, 300)));
        let f = instability_factor(&records, 1, &StabilityThresholds::default()).unwrap();
        assert!(f > 0.0 && f < 10.0, "one phase change out of 63: {f}");
    }

    #[test]
    fn too_few_records_yield_none() {
        let records = vec![record(500, 100, 300)];
        assert_eq!(instability_factor(&records, 1, &StabilityThresholds::default()), None);
        assert_eq!(instability_factor(&records, 2, &StabilityThresholds::default()), None);
    }

    #[test]
    fn recorder_collects_intervals() {
        let (mut rec, out) = MetricsRecorder::new(16, 100);
        for seq in 1..=250u64 {
            let e = CommitEvent {
                seq,
                pc: 0,
                cycle: seq * 3,
                is_branch: seq % 10 == 0,
                is_cond_branch: false,
                is_call: false,
                is_return: false,
                is_memref: seq % 4 == 0,
                distant: false,
                mispredicted: false,
            };
            assert_eq!(rec.on_commit(&e), None);
        }
        let records = out.borrow();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].instructions, 100);
        assert_eq!(records[0].branches, 10);
        assert!(records[0].cycles >= 297);
    }
}
